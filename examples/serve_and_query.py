#!/usr/bin/env python3
"""``corra serve`` end to end: a catalog, an HTTP server, and JSON queries.

This walks through the query service (the ``repro.server`` package):

1. compress a relation and register it in a :class:`Catalog` on disk;
2. stand up the service in-process with :class:`BackgroundServer` — the
   same asyncio front end ``python -m repro.cli serve`` runs, bound to an
   ephemeral port;
3. POST JSON query plans to ``/query`` — a filtered aggregate, a group-by,
   and a projection with a limit — and decode the columnar responses;
4. repeat a query to hit the result cache, then read ``/metrics`` to see
   the latency percentiles, admission-queue depths, result-cache hit rate
   and the shared engine's block-cache and I/O counters.

Everything speaks stdlib ``http.client`` — the service has no
dependencies beyond the library itself.

Run with::

    python examples/serve_and_query.py [n_rows]
"""

from __future__ import annotations

import http.client
import json
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import TableCompressor
from repro.dtypes import INT64, STRING
from repro.server import BackgroundServer, QueryService, ServiceConfig
from repro.storage import Catalog, Table


def post_query(host: str, port: int, payload: dict) -> dict:
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request(
            "POST",
            "/query",
            body=json.dumps(payload),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        body = json.loads(response.read())
        if response.status != 200:
            raise RuntimeError(f"{response.status}: {body}")
        return body
    finally:
        conn.close()


def get(host: str, port: int, path: str) -> dict:
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", path)
        return json.loads(conn.getresponse().read())
    finally:
        conn.close()


def main(n_rows: int = 200_000) -> None:
    # 1. Compress a relation and save it into a catalog directory.
    rng = np.random.default_rng(11)
    tags = [f"tag_{i:02d}" for i in range(16)]
    table = Table.from_columns([
        ("ship", INT64, np.arange(n_rows, dtype=np.int64) + 8_000),
        ("fare", INT64, rng.integers(100, 10_000, n_rows)),
        ("tag", STRING, [tags[i] for i in rng.integers(0, len(tags), n_rows)]),
    ])
    relation = TableCompressor(block_size=max(1, n_rows // 16)).compress(table)
    root = Path(tempfile.mkdtemp(prefix="corra-serve-")) / "catalog"
    Catalog(root).save("trips", relation)
    print(f"catalog at {root}: tables = {Catalog(root).tables()}")

    # 2. The service owns one shared Engine (planner memos, block cache,
    #    worker pool, result cache) across every request.
    config = ServiceConfig(max_concurrency=4, queue_depth=16, timeout_seconds=30.0)
    with QueryService(root, config=config) as service:
        with BackgroundServer(service, port=0) as (host, port):
            print(f"serving on http://{host}:{port}\n")

            # 3a. A filtered aggregate.
            body = post_query(host, port, {
                "table": "trips",
                "where": {"op": "between", "column": "ship", "lo": 8_000, "hi": 27_999},
                "aggregates": {
                    "n": {"fn": "count"},
                    "total": {"fn": "sum", "column": "fare"},
                },
            })
            print(f"filtered aggregate: {body['columns']}")

            # 3b. A group-by over the dictionary-encoded tag column.
            body = post_query(host, port, {
                "table": "trips",
                "where": {"op": "in", "column": "tag", "values": ["tag_00", "tag_01"]},
                "group_by": ["tag"],
                "aggregates": {"n": {"fn": "count"}, "avg_fare": {"fn": "avg", "column": "fare"}},
            })
            print(f"group-by: { {k: v for k, v in body['columns'].items()} }")

            # 3c. A projection with a limit.
            body = post_query(host, port, {
                "table": "trips",
                "where": {"op": "eq", "column": "tag", "value": "tag_05"},
                "select": ["ship", "tag"],
                "limit": 3,
            })
            print(f"projection (3 rows): {body['columns']}\n")

            # 4. Re-run 3a: same table, same plan fingerprint -> served from
            #    the result cache without touching the engine.
            post_query(host, port, {
                "table": "trips",
                "where": {"op": "between", "column": "ship", "lo": 8_000, "hi": 27_999},
                "aggregates": {
                    "n": {"fn": "count"},
                    "total": {"fn": "sum", "column": "fare"},
                },
            })
            metrics = get(host, port, "/metrics")
            print(
                f"metrics: {metrics['queries_total']} queries "
                f"({metrics['queries_cached']} cached), "
                f"p50 {metrics['latency']['p50_seconds'] * 1e3:.2f} ms, "
                f"result-cache hit rate {metrics['result_cache']['hit_rate']:.2f}"
            )
            print(
                f"block cache: {metrics['block_cache']['hits']} hits / "
                f"{metrics['block_cache']['misses']} misses, "
                f"{metrics['block_cache']['current_bytes']:,} bytes resident"
            )
            io = metrics["tables"]["trips"].get("io", {})
            print(f"table io: {io.get('bytes_read', 0):,} bytes read from disk")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200_000)
