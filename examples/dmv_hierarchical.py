#!/usr/bin/env python3
"""Hierarchical encoding on the DMV dataset (paper §2.2, Fig. 3).

The pair (``city``, ``zip_code``) is the paper's running example: zip codes
span the whole US range, but a single city only uses a handful, so storing a
per-city local index shrinks the column by half.  This example also shows the
(state, city) pair where the hierarchy barely helps — matching the paper's
observation that the string dictionary dominates that column.

Run with::

    python examples/dmv_hierarchical.py [n_rows]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import (
    CompressionPlan,
    DmvGenerator,
    HierarchicalEncoding,
    QueryExecutor,
    SingleColumnBaseline,
    TableCompressor,
)
from repro.query import Predicate


def main(n_rows: int = 200_000) -> None:
    table = DmvGenerator().generate_pair_only(n_rows)
    baseline = SingleColumnBaseline().report(table)

    print(f"DMV sample: {table.n_rows:,} registrations")
    print(f"  distinct cities: {len(set(table.column('city'))):,}")
    print(f"  distinct zip codes: {len(np.unique(table.column('zip_code'))):,}")

    # Stand-alone encoding of the two hierarchical pairs, as in Table 2.
    hierarchical = HierarchicalEncoding()
    for target, reference, paper_rate in (
        ("zip_code", "city", 0.537),
        ("city", "state", 0.018),
    ):
        encoded = hierarchical.encode(
            table.column(target), table.column(reference), reference
        )
        stats = encoded.stats()
        saving = 1 - encoded.size_bytes / baseline.size_of(target)
        print(
            f"\n({reference} -> {target}): {baseline.size_of(target):,} bytes baseline, "
            f"{encoded.size_bytes:,} bytes hierarchical "
            f"({saving:.1%} saving; paper: {paper_rate:.1%})"
        )
        print(
            f"  {stats.n_groups:,} groups, max fan-out {stats.max_group_fanout}, "
            f"{stats.code_bit_width} bits per row for the local code"
        )

    # Full pipeline: compress the table with the zip_code hierarchy and query it.
    plan = (
        CompressionPlan.builder(table.schema)
        .hierarchical_encode("zip_code", reference="city")
        .build()
    )
    relation = TableCompressor(plan).compress(table)
    executor = QueryExecutor(relation)

    big_city = table.column("city")[0]
    result = executor.select(["zip_code"], Predicate.equals("city", big_city))
    zips = np.unique(np.asarray(result.column("zip_code")))
    print(
        f"\nSELECT zip_code WHERE city = {big_city!r}: {result.n_rows:,} rows, "
        f"{zips.size} distinct zip codes"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200_000)
