#!/usr/bin/env python3
"""The lazy query API: builder -> explain -> execute.

This walks through the logical-plan front door added in PR 3:

1. build a sorted three-column table (a date-like key, a fare, a
   categorical tag the auto-selector will dictionary-encode) and compress
   it into blocks;
2. compose a query lazily with ``relation.query()`` — nothing is decoded
   while the chain is being built;
3. ``explain()`` the plan: the logical tree plus the planner's per-block
   prune/full/scan decisions, before anything runs;
4. execute aggregates that are answered from block statistics alone
   (``ScanMetrics.rows_decoded == 0``);
5. group by the dictionary-encoded tag in code space (one string-heap
   decode per distinct group);
6. project qualifying rows with a limit that is pushed below the
   materialisation.

Run with::

    python examples/lazy_query.py [n_rows]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import TableCompressor
from repro.dtypes import INT64, STRING
from repro.query import Between, Count, Eq, Max, Min, Sum
from repro.storage import Table


def main(n_rows: int = 200_000) -> None:
    # 1. A sorted relation: ship dates ascending (so zone maps prune), an
    #    unsorted fare column, and a low-cardinality tag.
    rng = np.random.default_rng(7)
    tags = [f"tag_{i:02d}" for i in range(16)]
    table = Table.from_columns([
        ("ship", INT64, np.arange(n_rows, dtype=np.int64) + 8_000),
        ("fare", INT64, rng.integers(100, 10_000, n_rows)),
        ("tag", STRING, [tags[i] for i in rng.integers(0, len(tags), n_rows)]),
    ])
    relation = TableCompressor(block_size=max(1, n_rows // 16)).compress(table)
    print(
        f"compressed {relation.n_rows:,} rows into {relation.n_blocks} blocks "
        f"(tag encoded as {relation.block(0).encoding_of('tag')})"
    )

    # 2. + 3. Compose lazily, then explain without executing.
    one_block = relation.block_size
    query = (
        relation.query()
        .where(Between("ship", 8_000, 8_000 + one_block - 1))
        .agg(n=Count(), total=Sum("fare"), lo=Min("fare"), hi=Max("fare"))
    )
    print("\n" + query.explain())

    # 4. Execute: every touched block is fully covered, so all four
    #    aggregates come from per-block statistics — zero rows decoded.
    result = query.execute()
    print(
        f"\nn={result.scalar('n'):,} total={result.scalar('total'):,} "
        f"lo={result.scalar('lo')} hi={result.scalar('hi')}"
    )
    metrics = result.metrics
    print(
        f"rows decoded: {metrics.rows_decoded}, gathered: {metrics.rows_gathered} "
        f"(blocks: {metrics.blocks_pruned} pruned, {metrics.blocks_full} full, "
        f"{metrics.blocks_scanned} scanned)"
    )

    # 5. Group-by on the dictionary column aggregates in code space: the
    #    string heap is touched once per distinct group, not per row.
    grouped = relation.query().group_by("tag").agg(n=Count(), avg_base=Sum("fare")).execute()
    print(
        f"\ngroup-by tag: {grouped.n_rows} groups, "
        f"{grouped.metrics.string_heap_decodes} heap decodes "
        f"for {relation.n_rows:,} rows"
    )
    for i in range(min(3, grouped.n_rows)):
        print(
            f"  {grouped.column('tag')[i]}: n={grouped.column('n')[i]:,} "
            f"sum={grouped.column('avg_base')[i]:,}"
        )

    # 6. Projection + limit: the row-id stream is truncated before any value
    #    is materialised, and only the selected columns are ever decoded.
    top = (
        relation.query()
        .where(Eq("tag", "tag_03") & Between("ship", 8_500, None))
        .select("ship", "fare")
        .limit(5)
        .execute()
    )
    print(f"\nfirst {top.n_rows} qualifying rows (ship, fare):")
    for ship, fare in zip(top.column("ship"), top.column("fare")):
        print(f"  {ship}  {fare}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200_000)
