#!/usr/bin/env python3
"""Parallel morsel-driven scans and dictionary-domain predicates.

This walks through the parallel execution subsystem added in PR 2:

1. build an *unsorted* two-column table (zone maps cannot prune it, so every
   block must actually be evaluated — the worst case for a serial scan);
2. compress it on all cores with ``TableCompressor(workers=0)``;
3. run the same predicate serially and through the morsel-driven
   :class:`~repro.query.parallel.ParallelEngine` at increasing worker counts,
   verifying the results are identical and timing each run;
4. run an ``Eq`` predicate over a dictionary-encoded string column with
   code-space evaluation on and off, showing the ``string_heap_decodes``
   counter drop to zero while the answer stays the same.

Run with::

    python examples/parallel_scan.py [n_rows]
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

from repro import TableCompressor
from repro.dtypes import INT64, STRING
from repro.query import Between, Eq, QueryExecutor
from repro.storage import Table


def main(n_rows: int = 400_000) -> None:
    # 1. An unsorted table: a wide integer column plus a categorical string
    #    column that the auto-selector will dictionary-encode.
    rng = np.random.default_rng(42)
    categories = [f"cat_{i:03d}" for i in range(128)]
    table = Table.from_columns([
        ("v", INT64, rng.integers(0, 1_000_000, n_rows)),
        ("tag", STRING, [categories[i] for i in rng.integers(0, 128, n_rows)]),
    ])
    print(f"generated {table.n_rows:,} unsorted rows over {len(categories)} tags")

    # 2. Parallel block compression (workers=0 means one thread per core).
    block_size = max(1, table.n_rows // 16)
    start = time.perf_counter()
    relation = TableCompressor(block_size=block_size, workers=0).compress(table)
    print(
        f"compressed into {relation.n_blocks} blocks in "
        f"{(time.perf_counter() - start) * 1e3:.0f} ms "
        f"({relation.size_bytes:,} bytes; tag encoded as "
        f"{relation.block(0).encoding_of('tag')})"
    )

    # 3. The same scan, serial vs morsel-driven parallel.
    predicate = Between("v", 0, 100_000)  # ~10% selectivity, zero pruning
    reference = QueryExecutor(relation, workers=1)
    expected = reference.count(predicate)
    print(f"\nscan {predicate.describe()} -> {expected:,} rows")
    for workers in (1, 2, os.cpu_count() or 1):
        executor = QueryExecutor(relation, workers=workers)
        assert executor.count(predicate) == expected  # identical to serial
        start = time.perf_counter()
        executor.count(predicate)
        seconds = time.perf_counter() - start
        print(
            f"  workers={workers}: {seconds * 1e3:6.2f} ms "
            f"({relation.n_rows / seconds / 1e6:.1f}M rows/s)"
        )

    # 4. Dictionary-domain evaluation: Eq over the dict-encoded string column.
    predicate = Eq("tag", "cat_042")
    print(f"\nscan {predicate.describe()}")
    for use_dictionary, label in ((False, "decode-then-compare"), (True, "code-space")):
        executor = QueryExecutor(relation, use_dictionary=use_dictionary)
        start = time.perf_counter()
        count = executor.count(predicate)
        seconds = time.perf_counter() - start
        metrics = executor.last_scan_metrics
        print(
            f"  {label:>19}: {count:,} rows in {seconds * 1e3:6.2f} ms, "
            f"{metrics.string_heap_decodes:,} heap decodes, "
            f"{metrics.rows_dict_evaluated:,} rows dict-evaluated"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400_000)
