#!/usr/bin/env python3
"""Quickstart: compress TPC-H date columns with correlation-aware encodings.

This walks through the core workflow of the library in a few steps:

1. generate a synthetic TPC-H ``lineitem`` sample (the paper's first dataset);
2. measure the best *single-column* baseline per column (FOR/Dict + bit-packing);
3. build a Corra compression plan that diff-encodes ``l_commitdate`` and
   ``l_receiptdate`` w.r.t. ``l_shipdate`` (the paper's Fig. 1 example);
4. compress into self-contained 1 M-tuple data blocks;
5. run a positional query against the compressed relation and verify it.

Run with::

    python examples/quickstart.py [n_rows]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import (
    CompressionPlan,
    SingleColumnBaseline,
    TableCompressor,
    TpchLineitemGenerator,
)
from repro.query import generate_selection_vectors, materialize_columns


def main(n_rows: int = 200_000) -> None:
    # 1. Synthetic lineitem sample (dates follow the TPC-H specification).
    generator = TpchLineitemGenerator()
    table = generator.generate_dates_only(n_rows)
    print(f"generated {table.n_rows:,} lineitem rows: {', '.join(table.column_names)}")

    # 2. The paper's baseline: best single-column scheme per column.
    baseline = SingleColumnBaseline().report(table)
    for name in table.column_names:
        print(
            f"  baseline {name}: {baseline.size_of(name):,} bytes "
            f"({baseline.scheme_of(name)})"
        )

    # 3. Corra plan: diff-encode the two dependent date columns.
    plan = (
        CompressionPlan.builder(table.schema)
        .diff_encode("l_commitdate", reference="l_shipdate")
        .diff_encode("l_receiptdate", reference="l_shipdate")
        .build()
    )
    print("\ncompression plan:")
    print("  " + plan.describe().replace("\n", "\n  "))

    # 4. Compress into self-contained blocks.
    relation = TableCompressor(plan).compress(table)
    print(f"\ncompressed into {relation.n_blocks} block(s), {relation.size_bytes:,} bytes total")
    for name in ("l_commitdate", "l_receiptdate"):
        corra = relation.column_size(name)
        saving = 1 - corra / baseline.size_of(name)
        print(f"  {name}: {corra:,} bytes with Corra ({saving:.1%} saving)")

    # 5. Query: materialise a 1 % uniform random selection of both columns.
    vector = generate_selection_vectors(table.n_rows, 0.01, count=1)[0]
    output = materialize_columns(relation, ["l_shipdate", "l_receiptdate"], vector)
    expected = np.asarray(table.column("l_receiptdate"))[vector.row_ids]
    assert np.array_equal(output["l_receiptdate"], expected)
    print(
        f"\nqueried {vector.n_selected:,} rows; decompressed values verified against the original"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200_000)
