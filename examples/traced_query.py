#!/usr/bin/env python3
"""Query tracing: timed spans, EXPLAIN ANALYZE and Prometheus exposition.

This walks through the observability subsystem (:mod:`repro.query.tracing`):

1. compress a relation whose predicate column is RLE-encoded, persist it
   and open it through a shared :class:`Engine` — the traced query below
   runs out-of-core, so the trace covers the storage layer too;
2. run the same aggregate twice: untraced (the default — every
   instrumented site costs one no-op ``with`` on a shared null span) and
   traced with ``engine.tracer()``, asserting the results are identical;
3. print ``explain(analyze=True)``: the logical plan, the zone-map block
   classification, per-stage wall-time/row/byte totals reconciled against
   ``ScanMetrics``, and the span tree itself;
4. serialize the trace as one JSON line — the shape ``corra query
   --trace out.jsonl`` appends and the query service attaches to
   responses that ask for ``"trace": true``;
5. render the engine's per-stage latency histograms the way
   ``/metrics?format=prometheus`` exposes them (fixed powers-of-two
   buckets, so scrapes from any process merge without realignment).

Run with::

    python examples/traced_query.py [n_rows]
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.core import CompressionPlan, TableCompressor
from repro.dtypes import INT64
from repro.query import Between, Count, EngineConfig, Sum
from repro.query.engine import Engine
from repro.query.tracing import QueryTrace
from repro.server.metrics import prometheus_exposition
from repro.storage import Catalog, Table


def main(n_rows: int = 200_000) -> None:
    # 1. An RLE-friendly relation on disk: the predicate below evaluates
    #    in the compressed domain, and the trace records which kernel ran.
    rng = np.random.default_rng(11)
    run_length = 64
    n_runs = -(-n_rows // run_length)
    table = Table.from_columns([
        ("grade", INT64, np.repeat(np.arange(n_runs, dtype=np.int64) % 50, run_length)[:n_rows]),
        ("word", INT64, rng.integers(0, 65_536, n_rows)),
    ])
    plan = (
        CompressionPlan.builder(table.schema)
        .vertical("grade", "rle")
        .vertical("word", "for_bitpack")
        .build()
    )
    relation = TableCompressor(plan, block_size=max(1, n_rows // 16)).compress(table)
    root = Path(tempfile.mkdtemp(prefix="corra-example-")) / "catalog"
    Catalog(root).save("grades", relation)

    with Engine(EngineConfig(workers=4), catalog=root) as engine:
        lazy = (
            engine.query(engine.table("grades"))
            .where(Between("grade", 10, 30))
            .agg(n=Count(), s=Sum("word"))
        )

        # 2. Tracing is observation only: same query, same answer.
        untraced = lazy.execute()
        tracer = engine.tracer()
        traced = lazy.execute(tracer=tracer)
        assert traced.scalar("n") == untraced.scalar("n")
        assert traced.scalar("s") == untraced.scalar("s")
        print(
            f"traced and untraced agree: n={traced.scalar('n'):,} "
            f"s={traced.scalar('s'):,}"
        )

        # 3. EXPLAIN ANALYZE: plan, block classification, per-stage totals
        #    and the span tree, all from one traced execution.
        print()
        print(lazy.explain(analyze=True))

        # 4. The same trace as one JSON line (what `corra query --trace`
        #    appends and the service attaches under "trace").
        trace = QueryTrace.from_tracer(tracer, query="grades")
        line = trace.to_json_line()
        decoded = json.loads(line)
        print(
            f"trace JSON line: {len(line):,} bytes, {decoded['n_spans']} spans, "
            f"stages {sorted({span['name'] for span in decoded['spans']})}"
        )

        # 5. Per-stage latency histograms, Prometheus-style.  `engine.tracer()`
        #    wires every trace into `engine.stage_latency`; the server's
        #    /metrics?format=prometheus serves exactly this exposition.
        print()
        snapshot = {"stages": engine.stage_latency.snapshot()}
        text = prometheus_exposition(snapshot, stages=snapshot["stages"])
        histogram_lines = [
            ln for ln in text.splitlines() if "stage_duration" in ln and "#" not in ln
        ]
        print(f"prometheus exposition: {len(histogram_lines)} histogram samples, e.g.")
        for ln in histogram_lines[:4]:
            print(f"  {ln}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200_000)
