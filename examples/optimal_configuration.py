#!/usr/bin/env python3
"""Reproduce Fig. 2: find the optimal diff-encoding configuration.

The optimizer measures, for every ordered pair of date columns, how large the
first column would be if diff-encoded w.r.t. the second (the edge weights of
Fig. 2), then greedily picks reference assignments.  On TPC-H's lineitem the
result is the paper's configuration: ``l_shipdate`` stays vertical and serves
as the reference for both ``l_commitdate`` (60 MB at SF 10) and
``l_receiptdate`` (37.5 MB), saving 82.5 MB over bit-packing each column
individually.

Run with::

    python examples/optimal_configuration.py [n_rows]
"""

from __future__ import annotations

import sys

from repro import DiffEncodingOptimizer, TpchLineitemGenerator
from repro.core.optimizer import optimal_configuration_exhaustive


def main(n_rows: int = 200_000) -> None:
    generator = TpchLineitemGenerator()
    dates = generator.generate_dates_only(n_rows)
    scale = generator.paper_rows / n_rows  # report sizes scaled to SF 10

    optimizer = DiffEncodingOptimizer()
    graph, config = optimizer.optimize(dates)

    print("candidate graph (sizes scaled to SF 10, as in Fig. 2):")
    for column in graph.columns:
        print(f"  vertex {column:<15} {graph.vertical_sizes[column] * scale / 1e6:6.1f} MB")
    for diff_column, reference, size, saving in graph.as_rows():
        print(
            f"  edge   {diff_column:>13} -> {reference:<13} "
            f"{size * scale / 1e6:6.1f} MB (saves {saving * scale / 1e6:5.1f} MB)"
        )

    print("\ngreedy configuration:")
    print("  " + config.describe().replace("\n", "\n  "))
    print(
        f"\ntotal saving scaled to SF 10: {config.total_saving * scale / 1e6:.1f} MB "
        "(paper: 82.5 MB)"
    )

    exhaustive = optimal_configuration_exhaustive(graph)
    assert exhaustive.total_size == config.total_size
    print("greedy result verified optimal by exhaustive enumeration")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200_000)
