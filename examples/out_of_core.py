#!/usr/bin/env python3
"""Out-of-core querying: write a ``.corra`` table, query it lazily from disk.

This walks through the storage subsystem (PR 4) and its column-granular
format v3 (PR 5):

1. compress a sorted relation and persist it as a single ``.corra`` file
   (header + self-contained block segments + a footer with per-block
   offsets, row counts, zone maps and per-column sub-segment indexes);
2. open it as a :class:`DiskRelation` with a cache budget *smaller than
   the table*, so the whole file can never be resident at once;
3. run a selective query: planning happens from footer metadata alone,
   only the surviving blocks' *referenced columns* are fetched, and
   ``IOMetrics`` proves the pruned blocks contributed zero bytes read;
4. re-run the query warm: the block cache serves every fetch, no new I/O;
5. register the table in a :class:`Catalog` and reopen it by name;
6. project 2 columns of a *wide* 20-column table: the v3 footer's column
   index means only a fraction of each surviving block's bytes move.

Run with::

    python examples/out_of_core.py [n_rows]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import TableCompressor
from repro.dtypes import INT64, STRING
from repro.query import Avg, Between, Count, Sum
from repro.storage import Catalog, DiskRelation, Table, write_table


def main(n_rows: int = 500_000) -> None:
    # 1. A sorted relation (zone maps prune) with a string column (so block
    #    segments carry a dictionary heap — realistic deserialisation cost).
    rng = np.random.default_rng(7)
    tags = [f"tag_{i:02d}" for i in range(16)]
    table = Table.from_columns([
        ("ship", INT64, np.arange(n_rows, dtype=np.int64) + 8_000),
        ("fare", INT64, rng.integers(100, 10_000, n_rows)),
        ("tag", STRING, [tags[i] for i in rng.integers(0, len(tags), n_rows)]),
    ])
    relation = TableCompressor(block_size=max(1, n_rows // 16)).compress(table)

    workdir = Path(tempfile.mkdtemp(prefix="corra-example-"))
    path = workdir / "fares.corra"
    footer = write_table(path, relation)
    print(
        f"wrote {footer.n_blocks} blocks / {footer.data_bytes:,} data bytes "
        f"to {path} (format v{footer.version})"
    )

    # 2. A cache budget of ~3 blocks: the table cannot be fully resident.
    budget = 3 * max(entry.length for entry in footer.blocks)
    disk = DiskRelation(path, cache_bytes=budget)
    print(f"cache budget: {budget:,} bytes (< {disk.size_bytes:,} on disk)")

    # 3. Selective query over the sorted key: the planner prunes from the
    #    footer, only boundary blocks are fetched.
    span = relation.block_size
    predicate = Between("ship", 8_000 + span // 2, 8_000 + span + span // 2)
    result = (
        disk.query()
        .where(predicate)
        .agg(n=Count(), total=Sum("fare"), mean=Avg("fare"))
        .execute()
    )
    print(
        f"\ncold: n={result.scalar('n'):,} total={result.scalar('total'):,} "
        f"mean={result.scalar('mean'):,.2f}"
    )
    print(f"  io:    {disk.io.describe()}")
    print(f"  cache: {disk.cache_stats.describe()}")
    print(
        f"  ({disk.io.bytes_read / max(disk.size_bytes, 1):.0%} of the table's "
        "block bytes were read — the pruned blocks cost nothing)"
    )

    # 4. Warm re-run: every segment fetch is a cache hit, no new I/O.
    before = disk.io.bytes_read
    disk.query().where(predicate).agg(n=Count()).execute()
    print(f"\nwarm: bytes read before={before:,}, after={disk.io.bytes_read:,} (no new I/O)")

    # 5. Catalogs map names to files, sharing one cache across tables.
    catalog = Catalog(workdir / "catalog")
    catalog.save("fares", relation)
    by_name = catalog.open("fares")
    assert by_name.query().where(predicate).count() == result.scalar("n")
    print(f"\ncatalog: {catalog.tables()} under {catalog.root}")

    disk.close()
    by_name.close()

    # 6. Column pruning on a wide table: project 2 of 20 columns and read a
    #    fraction of the bytes — the v3 footer indexes every column's
    #    sub-segment, so only the referenced columns (plus any reference
    #    columns horizontal encodings depend on) are fetched.
    wide_rows = max(n_rows // 5, 20_000)
    wide = Table.from_columns(
        [("key", INT64, np.sort(rng.integers(0, wide_rows // 8, wide_rows)))]
        + [
            (f"c{i:02d}", INT64, rng.integers(0, 1 << 16, wide_rows))
            for i in range(1, 20)
        ]
    )
    wide_path = workdir / "wide.corra"
    write_table(wide_path, TableCompressor(block_size=max(1, wide_rows // 8)).compress(wide))
    with DiskRelation(wide_path) as wide_disk:
        key = np.asarray(wide.column("key"))
        wide_result = (
            wide_disk.query()
            .where(Between("key", int(key[0]), int(key[wide_rows // 10])))
            .select("key", "c07")
            .execute()
        )
        io = wide_disk.io
        print(
            f"\nwide table: projected 2/20 columns over {wide_result.n_rows:,} "
            f"qualifying rows\n  io:    {io.describe()}\n"
            f"  ({io.column_bytes_read:,} column bytes read of "
            f"{io.column_block_bytes:,} block bytes available — "
            f"{io.column_bytes_read / max(io.column_block_bytes, 1):.0%}; "
            f"prefetch hits: {io.prefetch_hits})"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 500_000)
