#!/usr/bin/env python3
"""Out-of-core querying: write a ``.corra`` table, query it lazily from disk.

This walks through the storage subsystem added in PR 4:

1. compress a sorted relation and persist it as a single ``.corra`` file
   (header + self-contained block segments + a footer with per-block
   offsets, row counts and zone maps);
2. open it as a :class:`DiskRelation` with a cache budget *smaller than
   the table*, so the whole file can never be resident at once;
3. run a selective query: planning happens from footer metadata alone,
   only the surviving blocks are fetched, and ``IOMetrics`` proves the
   pruned blocks contributed zero bytes read;
4. re-run the query warm: the block cache serves every fetch, no new I/O;
5. register the table in a :class:`Catalog` and reopen it by name.

Run with::

    python examples/out_of_core.py [n_rows]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import TableCompressor
from repro.dtypes import INT64, STRING
from repro.query import Avg, Between, Count, Sum
from repro.storage import Catalog, DiskRelation, Table, write_table


def main(n_rows: int = 500_000) -> None:
    # 1. A sorted relation (zone maps prune) with a string column (so block
    #    segments carry a dictionary heap — realistic deserialisation cost).
    rng = np.random.default_rng(7)
    tags = [f"tag_{i:02d}" for i in range(16)]
    table = Table.from_columns([
        ("ship", INT64, np.arange(n_rows, dtype=np.int64) + 8_000),
        ("fare", INT64, rng.integers(100, 10_000, n_rows)),
        ("tag", STRING, [tags[i] for i in rng.integers(0, len(tags), n_rows)]),
    ])
    relation = TableCompressor(block_size=max(1, n_rows // 16)).compress(table)

    workdir = Path(tempfile.mkdtemp(prefix="corra-example-"))
    path = workdir / "fares.corra"
    footer = write_table(path, relation)
    print(
        f"wrote {footer.n_blocks} blocks / {footer.data_bytes:,} data bytes "
        f"to {path} (format v{footer.version})"
    )

    # 2. A cache budget of ~3 blocks: the table cannot be fully resident.
    budget = 3 * max(entry.length for entry in footer.blocks)
    disk = DiskRelation(path, cache_bytes=budget)
    print(f"cache budget: {budget:,} bytes (< {disk.size_bytes:,} on disk)")

    # 3. Selective query over the sorted key: the planner prunes from the
    #    footer, only boundary blocks are fetched.
    span = relation.block_size
    predicate = Between("ship", 8_000 + span // 2, 8_000 + span + span // 2)
    result = (
        disk.query()
        .where(predicate)
        .agg(n=Count(), total=Sum("fare"), mean=Avg("fare"))
        .execute()
    )
    print(
        f"\ncold: n={result.scalar('n'):,} total={result.scalar('total'):,} "
        f"mean={result.scalar('mean'):,.2f}"
    )
    print(f"  io:    {disk.io.describe()}")
    print(f"  cache: {disk.cache_stats.describe()}")
    print(
        f"  ({disk.io.bytes_read / max(disk.size_bytes, 1):.0%} of the table's "
        "block bytes were read — the pruned blocks cost nothing)"
    )

    # 4. Warm re-run: every block fetch is a cache hit, no new I/O.
    before = disk.io.blocks_read
    disk.query().where(predicate).agg(n=Count()).execute()
    print(f"\nwarm: blocks read before={before}, after={disk.io.blocks_read} (no new I/O)")

    # 5. Catalogs map names to files, sharing one cache across tables.
    catalog = Catalog(workdir / "catalog")
    catalog.save("fares", relation)
    by_name = catalog.open("fares")
    assert by_name.query().where(predicate).count() == result.scalar("n")
    print(f"\ncatalog: {catalog.tables()} under {catalog.root}")

    disk.close()
    by_name.close()


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 500_000)
