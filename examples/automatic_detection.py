#!/usr/bin/env python3
"""Automatic correlation detection (the paper's future-work extension).

The paper's conclusion calls for "automatic correlation detection".  This
example runs the :class:`repro.core.CorrelationDetector` over a mixed-schema
Taxi sample, prints the ranked suggestions, turns them into a compression
plan, and compares the resulting size against the all-vertical baseline — no
column pair is ever named by hand.

Run with::

    python examples/automatic_detection.py [n_rows]
"""

from __future__ import annotations

import sys

from repro import (
    CompressionPlan,
    CorrelationDetector,
    SingleColumnBaseline,
    TableCompressor,
    TaxiGenerator,
)


def main(n_rows: int = 100_000) -> None:
    table = TaxiGenerator().generate(n_rows).select(
        [
            "pickup",
            "dropoff",
            "fare_amount",
            "tip_amount",
            "total_amount",
            "congestion_surcharge",
            "passenger_count",
        ]
    )
    print(
        f"scanning {table.n_rows:,} rows x {len(table.column_names)} columns "
        "for exploitable correlations...\n"
    )

    detector = CorrelationDetector(min_saving_rate=0.05)
    suggestions = detector.suggest(table)
    print(f"{len(suggestions)} candidate horizontal encodings found:")
    for suggestion in suggestions[:10]:
        print(f"  {suggestion}")

    plan = CompressionPlan.from_suggestions(table.schema, suggestions)
    print("\nplan derived from the suggestions:")
    print("  " + plan.describe().replace("\n", "\n  "))

    compressor = TableCompressor(plan)
    corra_sizes = compressor.column_sizes(table)
    baseline = SingleColumnBaseline().report(table)

    print("\nper-column sizes (bytes):")
    print(f"  {'column':<22} {'baseline':>12} {'auto-Corra':>12} {'saving':>8}")
    for name in table.column_names:
        saving = 1 - corra_sizes[name] / baseline.size_of(name)
        print(f"  {name:<22} {baseline.size_of(name):>12,} {corra_sizes[name]:>12,} {saving:>7.1%}")

    total_corra = sum(corra_sizes.values())
    total_saving = 1 - total_corra / baseline.total_size
    print(
        f"\ntotal: {baseline.total_size:,} -> {total_corra:,} bytes ({total_saving:.1%} saving) "
        "without naming a single column pair by hand"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 100_000)
