#!/usr/bin/env python3
"""Query-latency experiment on compressed relations (paper Figs. 5-7 style).

Builds three relations over the TPC-H date pair — uncompressed, best
single-column baseline, and Corra's non-hierarchical encoding — and measures
the materialisation latency across selectivities for (i) the diff-encoded
column alone and (ii) both columns.  The printed ratios mirror the y-axis of
the paper's Fig. 5: a modest slowdown when only the diff-encoded column is
fetched, and roughly parity when the reference column is needed anyway.

The second half demonstrates the structured scan pipeline: predicates are IR
nodes (``Eq``/``Between``/``In`` composable with ``&``/``|``) that the scan
planner tests against each block's zone map, so selective scans over the
sorted date column decode only the overlapping blocks and ``ScanMetrics``
reports exactly how much decoding was skipped.

Run with::

    python examples/query_latency.py [n_rows]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import (
    Between,
    CompressionPlan,
    Eq,
    QueryExecutor,
    SingleColumnBaseline,
    Table,
    TableCompressor,
    TpchLineitemGenerator,
    UncompressedBaseline,
)
from repro.query import latency_ratio, sweep_query_latency

SELECTIVITIES = (0.005, 0.01, 0.05, 0.1, 0.5, 1.0)


def demo_scan_pruning(n_rows: int) -> None:
    """Predicate IR + zone maps: selective scans skip non-overlapping blocks."""
    table = TpchLineitemGenerator().generate(n_rows).select(
        ["l_shipdate", "l_receiptdate"]
    )
    ship = np.asarray(table.column("l_shipdate"))
    order = np.argsort(ship, kind="stable")
    sorted_table = Table(
        table.schema,
        {name: np.asarray(table.column(name))[order] for name in table.column_names},
    )
    plan = (
        CompressionPlan.builder(sorted_table.schema)
        .diff_encode("l_receiptdate", reference="l_shipdate")
        .build()
    )
    relation = TableCompressor(plan, block_size=max(n_rows // 16, 1)).compress(
        sorted_table
    )
    executor = QueryExecutor(relation)

    lo = int(np.quantile(ship, 0.40))
    hi = int(np.quantile(ship, 0.45))
    predicate = Between("l_shipdate", lo, hi) & Eq(
        "l_receiptdate", int(np.quantile(ship, 0.42)) + 7
    )
    count = executor.count(predicate)
    metrics = executor.last_scan_metrics
    print(f"\nscan pruning on the sorted relation ({relation.n_blocks} blocks):")
    print(f"  predicate: {predicate.describe()}")
    print(f"  count:     {count:,} rows")
    print(f"  metrics:   {metrics.describe()}")


def main(n_rows: int = 200_000) -> None:
    table = TpchLineitemGenerator().generate(n_rows).select(
        ["l_shipdate", "l_receiptdate"]
    )
    baseline_relation = SingleColumnBaseline().compress(table)
    uncompressed_relation = UncompressedBaseline().compress(table)
    plan = (
        CompressionPlan.builder(table.schema)
        .diff_encode("l_receiptdate", reference="l_shipdate")
        .build()
    )
    corra_relation = TableCompressor(plan).compress(table)

    sizes = {
        "uncompressed": uncompressed_relation.size_bytes,
        "single-column baseline": baseline_relation.size_bytes,
        "Corra (non-hierarchical)": corra_relation.size_bytes,
    }
    print("relation sizes:")
    for label, size in sizes.items():
        print(f"  {label:<26} {size:>12,} bytes")

    for query_label, columns in (
        ("diff-encoded column only", ["l_receiptdate"]),
        ("both columns", ["l_shipdate", "l_receiptdate"]),
    ):
        corra_sweep = sweep_query_latency(corra_relation, columns, SELECTIVITIES, n_vectors=5)
        baseline_sweep = sweep_query_latency(baseline_relation, columns, SELECTIVITIES, n_vectors=5)
        ratios = latency_ratio(corra_sweep, baseline_sweep)
        print(f"\nquery on {query_label}:")
        print(f"  {'selectivity':>12} {'baseline ms':>12} {'Corra ms':>10} {'ratio':>7}")
        for selectivity in SELECTIVITIES:
            base_ms = baseline_sweep.measurement(selectivity).mean_milliseconds()
            corra_ms = corra_sweep.measurement(selectivity).mean_milliseconds()
            ratio = ratios[selectivity]
            print(f"  {selectivity:>12} {base_ms:>12.2f} {corra_ms:>10.2f} {ratio:>6.2f}x")

    demo_scan_pruning(n_rows)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200_000)
