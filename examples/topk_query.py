#!/usr/bin/env python3
"""Ordered queries and zone-map-driven top-k over an out-of-core table.

``order_by()`` sorts a query's output; chained with ``limit(k)`` the pair
is fused into a *bounded top-k* that never runs the full sort.  On a
clustered column the per-block zone maps are disjoint, so the engine can:

1. visit blocks in sort-column bound order (best bound first),
2. keep at most ``k`` candidates per visited block,
3. stop as soon as no remaining block's bound can beat the current k-th
   candidate — on a :class:`DiskRelation`, blocks past that point are
   never even fetched.

This example persists a 500k-row relation whose ``ts`` column is sorted,
then asks for the 10 smallest and 10 largest timestamps, printing the scan
and I/O metrics that prove almost nothing was read.  It ends with a HAVING
query (a filter over aggregated rows) and the exact ``Var``/``Std``
population moments, both new alongside top-k.

Run with::

    python examples/topk_query.py [n_rows]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import TableCompressor
from repro.dtypes import INT64, STRING
from repro.query import Between, Count, EngineConfig, Std, Var
from repro.storage import DiskRelation, Table, write_table


def main(n_rows: int = 500_000) -> None:
    # A clustered relation: ``ts`` is sorted, so every block's zone map
    # covers a disjoint range — the ideal case for top-k early exit.
    rng = np.random.default_rng(7)
    tags = [f"sensor_{i:02d}" for i in range(8)]
    table = Table.from_columns([
        ("ts", INT64, np.sort(rng.integers(0, 10 * n_rows, n_rows))),
        ("reading", INT64, rng.integers(-50, 150, n_rows)),
        ("tag", STRING, [tags[i] for i in rng.integers(0, len(tags), n_rows)]),
    ])
    relation = TableCompressor(block_size=8_192).compress(table)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "readings.corra"
        write_table(str(path), relation)
        disk = DiskRelation(str(path), prefetch_workers=0)

        for desc, label in ((False, "oldest"), (True, "newest")):
            result = (
                disk.query(config=EngineConfig(workers=1))
                .select("ts", "tag")
                .order_by("ts", desc=desc)
                .limit(10)
                .execute()
            )
            metrics = result.metrics
            visited = metrics.blocks_scanned + metrics.blocks_full
            print(f"10 {label} readings: {[int(v) for v in result.columns['ts'][:5]]} ...")
            print(
                f"  visited {visited}/{metrics.n_blocks} blocks "
                f"({metrics.blocks_pruned} skipped before any fetch); "
                f"{disk.io.column_bytes_read:,} column bytes read so far"
            )

        # The skipped blocks never reached the I/O layer at all.
        print(
            f"\ntotal I/O after both top-k queries: "
            f"{disk.io.columns_read} column segment(s), "
            f"{disk.io.column_bytes_read:,} of {disk.size_bytes:,} table bytes"
        )

    # HAVING filters *aggregated* rows by output name, and Var/Std are
    # exact population moments (integer partials, one pass).
    busy = (
        relation.query()
        .where(Between("reading", 0, 149))
        .group_by("tag")
        .agg(n=Count(), spread=Std("reading"), var=Var("reading"))
        .having(Between("n", n_rows // 16, n_rows))
        .execute()
    )
    print(f"\nsensors with at least {n_rows // 16:,} in-range readings:")
    for tag, n, spread in zip(busy.columns["tag"], busy.columns["n"], busy.columns["spread"]):
        print(f"  {tag}: {n:,} readings, std {spread:.2f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 500_000)
