#!/usr/bin/env python3
"""Multi-reference encoding of Taxi ``total_amount`` (paper §2.3, Table 1).

The total fare usually equals the sum of its parts — but not always, and not
always the *same* parts.  The paper partitions the eight other monetary
columns into groups A/B/C and encodes, per row, *which* combination of groups
reproduces the total (a 2-bit code), storing the few rows that follow no rule
in an explicit outlier region.

This example prints the reproduced Table 1 (rule mixture and binary codes),
the compressed sizes, and verifies lossless reconstruction through the block
layer.

Run with::

    python examples/taxi_multi_reference.py [n_rows]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import (
    CompressionPlan,
    MultiReferenceEncoding,
    SingleColumnBaseline,
    TableCompressor,
    TaxiGenerator,
    taxi_multi_reference_config,
)
from repro.query import generate_selection_vectors, materialize_columns


def main(n_rows: int = 200_000) -> None:
    table = TaxiGenerator().generate_monetary_only(n_rows)
    config = taxi_multi_reference_config()
    references = {name: table.column(name) for name in config.reference_columns}

    encoded = MultiReferenceEncoding(config).encode(
        table.column("total_amount"), references
    )

    # Table 1: rule mixture and binary codes.
    print("rule mixture for total_amount (paper Table 1):")
    print(f"  {'Group':<12} {'Probability':>12} {'Binary encoding':>16}")
    for label, code, probability in encoded.rule_statistics().as_rows():
        print(f"  {label:<12} {probability:>11.2%} {code:>16}")

    # Compressed size vs the single-column baseline (Table 2, last row).
    baseline = SingleColumnBaseline().select_column(table, "total_amount").size_bytes
    saving = 1 - encoded.size_bytes / baseline
    print(
        f"\ntotal_amount: {baseline:,} bytes baseline -> {encoded.size_bytes:,} bytes "
        f"with multi-reference encoding ({saving:.1%} saving; paper: 85.16%)"
    )
    print(
        f"outliers stored explicitly: {encoded.outliers.n_outliers:,} rows "
        f"({encoded.outliers.fraction_of(table.n_rows):.2%})"
    )

    # Full pipeline: plan -> blocks -> positional query -> verification.
    plan = (
        CompressionPlan.builder(table.schema)
        .multi_reference_encode("total_amount", config)
        .build()
    )
    relation = TableCompressor(plan).compress(table)
    vector = generate_selection_vectors(table.n_rows, 0.05, count=1)[0]
    output = materialize_columns(relation, ["total_amount"], vector)
    expected = np.asarray(table.column("total_amount"))[vector.row_ids]
    assert np.array_equal(output["total_amount"], expected)
    print(
        f"\nqueried {vector.n_selected:,} rows through the block layer; "
        "reconstruction verified (including outliers)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200_000)
