"""Exception hierarchy for the Corra reproduction library.

All library-specific errors derive from :class:`CorraError` so that callers
can catch a single base class.  More specific subclasses signal configuration
problems (:class:`EncodingError`, :class:`SchemaError`), data problems
(:class:`ValidationError`), and lookup failures (:class:`UnknownColumnError`,
:class:`UnknownEncodingError`).
"""

from __future__ import annotations


class CorraError(Exception):
    """Base class for all errors raised by the library."""


class EncodingError(CorraError):
    """An encoding could not be applied or decoded.

    Raised, for example, when a diff-encoding is asked to encode columns of
    unequal length, when a bit width is out of the supported range, or when
    a compressed payload is corrupted.
    """


class DecodingError(EncodingError):
    """A compressed payload could not be decoded back into values."""


class SchemaError(CorraError):
    """A table or block violates its declared schema."""


class UnknownColumnError(SchemaError, KeyError):
    """A referenced column name does not exist in the schema or table."""

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        self.name = name
        self.available = tuple(available)
        message = f"unknown column {name!r}"
        if self.available:
            message += f"; available columns: {', '.join(self.available)}"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError would otherwise repr() the args
        return self.args[0]


class UnknownEncodingError(EncodingError, KeyError):
    """A referenced encoding name is not registered."""

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        self.name = name
        self.available = tuple(available)
        message = f"unknown encoding {name!r}"
        if self.available:
            message += f"; available encodings: {', '.join(self.available)}"
        super().__init__(message)

    def __str__(self) -> str:
        return self.args[0]


class ValidationError(CorraError, ValueError):
    """Input data failed validation (wrong dtype, negative sizes, ...)."""


class ConfigurationError(CorraError, ValueError):
    """A component was configured with inconsistent or unsupported options."""


class SerializationError(CorraError):
    """A block or column could not be serialised or deserialised."""
