"""Command-line interface for the Corra reproduction.

Four subcommands cover the workflows a downstream user needs without writing
Python:

``datasets``
    List the synthetic datasets or export one as CSV.
``compress``
    Generate a dataset, apply a compression plan (vertical baseline,
    hand-picked horizontal encodings, or fully automatic detection), and print
    per-column sizes and saving rates.  ``--output table.corra`` additionally
    persists the compressed relation as a single-file table
    (:mod:`repro.storage.format`); ``--catalog DIR`` registers it in a
    catalog directory under the dataset name.
``detect``
    Print the ranked correlation suggestions for a dataset.
``query``
    Run a query through the lazy plan API — over a freshly compressed
    dataset, or *out of core* over a ``.corra`` file (pass its path, or a
    table name with ``--catalog``): segments are then fetched lazily through
    a byte-budgeted cache (``--cache-bytes``) — column-granular on format-v3
    tables, with the next surviving block's columns prefetched by a
    read-ahead pool (``--no-prefetch`` disables it for A/B runs) — and the
    I/O metrics printed alongside the scan metrics report column bytes read
    vs. the block bytes they avoided, the cache hit rate, and prefetch hits.
    A structured predicate prints the matching row count with the
    scan-pruning metrics — including the compressed-domain kernel counters
    (``--no-kernels`` restores the decode baseline for A/B runs);
    ``--agg``/``--group-by`` compute (grouped)
    aggregates (``count``/``sum``/``min``/``max``/``avg``/``var``/``std``),
    ``--select``/``--limit`` materialise qualifying rows,
    ``--order-by COL[:desc]`` sorts them (with ``--limit`` the pair runs
    as a fused zone-map-driven top-k), and
    ``--explain`` renders the logical plan plus per-block decisions.
    ``--analyze`` executes under a tracer and prints per-stage wall time
    plus the span tree; ``--trace out.jsonl`` appends the executed
    query's :class:`~repro.query.tracing.QueryTrace` as one JSON line.
``serve``
    Start the HTTP query service (:mod:`repro.server`) over a catalog
    directory: every request runs through one shared
    :class:`~repro.query.engine.Engine` (one block cache, one worker pool,
    warm planner memos), behind bounded admission, per-query cost limits
    and a fingerprint-keyed result cache.  ``POST /query`` takes the JSON
    query shape of :func:`repro.server.protocol.parse_request`;
    ``GET /metrics`` reports latency percentiles and cache/scan counters
    (``?format=prometheus`` serves the text exposition format with
    per-stage latency histograms).
``experiments``
    Regenerate the paper's tables and figures (delegates to
    :mod:`repro.bench.report`).

Invoke as ``python -m repro.cli <subcommand> ...``.
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import Sequence

from .baselines import SingleColumnBaseline
from .bench.harness import format_table
from .bench.report import main as experiments_main
from .core import CompressionPlan, CorrelationDetector, TableCompressor
from .core.rule_mining import mine_multi_reference_config
from .datasets import available_datasets, dataset_by_name
from .errors import CorraError
from .query import (
    And,
    Avg,
    Between,
    Count,
    EngineConfig,
    Eq,
    In,
    Max,
    Min,
    Predicate,
    Std,
    Sum,
    Var,
    resolve_workers,
)
from .query.tracing import QueryTrace, Tracer
from .storage import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_CACHE_BYTES,
    DEFAULT_PREFETCH_WORKERS,
    Catalog,
    DiskRelation,
    write_table,
)
from .storage.catalog import TABLE_SUFFIX

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="corra",
        description="Corra: correlation-aware column compression (reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    datasets = subparsers.add_parser(
        "datasets", help="list the synthetic datasets or export one as CSV"
    )
    datasets.add_argument("name", nargs="?", help="dataset to export (omit to list)")
    datasets.add_argument("--rows", type=int, default=None, help="rows to generate")
    datasets.add_argument("--seed", type=int, default=42)
    datasets.add_argument("--output", default="-", help="CSV output path (default stdout)")
    datasets.add_argument(
        "--limit", type=int, default=20, help="rows to write when exporting to stdout"
    )

    compress = subparsers.add_parser(
        "compress", help="compress a dataset and report per-column sizes"
    )
    compress.add_argument("name", help="dataset name (see `datasets`)")
    compress.add_argument("--rows", type=int, default=None)
    compress.add_argument("--seed", type=int, default=42)
    compress.add_argument("--block-size", type=int, default=DEFAULT_BLOCK_SIZE)
    compress.add_argument(
        "--plan",
        choices=("baseline", "auto"),
        default="auto",
        help="'baseline' = best single-column scheme per column; "
        "'auto' = correlation detection + mined horizontal encodings",
    )
    compress.add_argument(
        "--diff-encode",
        action="append",
        default=[],
        metavar="TARGET:REFERENCE",
        help="add an explicit non-hierarchical encoding (may be repeated)",
    )
    compress.add_argument(
        "--hierarchical",
        action="append",
        default=[],
        metavar="TARGET:REFERENCE",
        help="add an explicit hierarchical encoding (may be repeated)",
    )
    compress.add_argument(
        "--mine-rules-for",
        default=None,
        metavar="TARGET",
        help="mine a multi-reference configuration for TARGET and use it",
    )
    compress.add_argument(
        "--workers",
        type=int,
        default=1,
        help="threads for block compression (0 = one per core; default 1)",
    )
    compress.add_argument(
        "--output",
        default=None,
        metavar="TABLE.corra",
        help="also persist the compressed relation as a single-file table",
    )
    compress.add_argument(
        "--catalog",
        default=None,
        metavar="DIR",
        help="also register the table in a catalog directory under the "
        "dataset name (combine with `query --catalog`)",
    )

    detect = subparsers.add_parser(
        "detect", help="print ranked correlation suggestions for a dataset"
    )
    detect.add_argument("name", help="dataset name (see `datasets`)")
    detect.add_argument("--rows", type=int, default=None)
    detect.add_argument("--seed", type=int, default=42)
    detect.add_argument("--min-saving-rate", type=float, default=0.05)
    detect.add_argument("--top", type=int, default=15, help="suggestions to print")

    query = subparsers.add_parser(
        "query",
        help="run a structured predicate over a compressed dataset or a .corra table file",
    )
    query.add_argument(
        "name",
        help="dataset name (see `datasets`), a path to a .corra table file, "
        "or a catalogued table name when --catalog is given",
    )
    query.add_argument("--rows", type=int, default=None)
    query.add_argument("--seed", type=int, default=42)
    query.add_argument("--block-size", type=int, default=DEFAULT_BLOCK_SIZE)
    query.add_argument(
        "--plan",
        choices=("baseline", "auto"),
        default="auto",
        help="compression plan used before querying (see `compress`)",
    )
    query.add_argument(
        "--equals",
        action="append",
        default=[],
        metavar="COLUMN:VALUE",
        help="add an equality predicate (may be repeated; ANDed together)",
    )
    query.add_argument(
        "--between",
        action="append",
        default=[],
        metavar="COLUMN:LOW:HIGH",
        help="add an inclusive range predicate; leave LOW or HIGH empty for "
        "an open-ended range (may be repeated; ANDed together)",
    )
    query.add_argument(
        "--in",
        dest="is_in",
        action="append",
        default=[],
        metavar="COLUMN:V1,V2,...",
        help="add a membership predicate (may be repeated; ANDed together)",
    )
    query.add_argument(
        "--no-pruning",
        action="store_true",
        help="disable zone-map pruning (decode every block; for comparison)",
    )
    query.add_argument(
        "--workers",
        type=int,
        default=1,
        help="threads for the morsel-driven scan and for block compression "
        "(0 = one per core; default 1 = serial)",
    )
    query.add_argument(
        "--no-dictionary",
        action="store_true",
        help="disable dictionary-domain predicate evaluation (decode and "
        "compare instead; for comparison)",
    )
    query.add_argument(
        "--no-kernels",
        action="store_true",
        help="disable compressed-domain kernels for RLE/FOR/delta/frequency "
        "columns (decode and compare instead; for comparison)",
    )
    query.add_argument(
        "--select",
        default=None,
        metavar="COL1,COL2,...",
        help="materialise and print the named columns of the qualifying rows "
        "(combine with --limit to bound the output)",
    )
    query.add_argument(
        "--agg",
        action="append",
        default=[],
        metavar="NAME:FUNC[:COLUMN]",
        help="add a named aggregate output, e.g. n:count, total:sum:fare, "
        "v:var:tip (may be repeated; FUNC is count/sum/min/max/avg/var/std)",
    )
    query.add_argument(
        "--group-by",
        default=None,
        metavar="COL1,COL2,...",
        help="group the aggregates by the named columns",
    )
    query.add_argument(
        "--order-by",
        default=None,
        metavar="COLUMN[:desc]",
        help="sort the --select output by COLUMN (append ':desc' for "
        "descending); with --limit the pair runs as a fused top-k that "
        "skips blocks whose zone-map bounds cannot reach the result",
    )
    query.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="keep at most N output rows (applied before materialisation for --select)",
    )
    query.add_argument(
        "--explain",
        action="store_true",
        help="print the logical plan and the per-block prune/full/scan "
        "decisions before executing",
    )
    query.add_argument(
        "--analyze",
        action="store_true",
        help="run the query under a tracer first and print the per-stage "
        "wall time, rows and bytes plus the span tree (implies --explain)",
    )
    query.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="execute under a tracer and append the span tree as one JSON "
        "line to PATH ('-' prints the line to stdout)",
    )
    query.add_argument(
        "--catalog",
        default=None,
        metavar="DIR",
        help="resolve the table name through a catalog directory of .corra "
        "files (see `compress --catalog`)",
    )
    query.add_argument(
        "--cache-bytes",
        type=int,
        default=DEFAULT_CACHE_BYTES,
        metavar="N",
        help=f"block-cache budget in bytes for out-of-core tables (default {DEFAULT_CACHE_BYTES})",
    )
    query.add_argument(
        "--no-prefetch",
        action="store_true",
        help="disable the read-ahead pool for out-of-core tables (every "
        "segment fetch becomes demand-driven; for A/B comparison)",
    )

    serve = subparsers.add_parser(
        "serve", help="start the HTTP query service over a catalog directory"
    )
    serve.add_argument(
        "catalog", help="catalog directory of .corra tables (see `compress --catalog`)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8265)
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="threads per query for the morsel-driven scan (0 = one per core)",
    )
    serve.add_argument("--cache-bytes", type=int, default=DEFAULT_CACHE_BYTES, metavar="N")
    serve.add_argument(
        "--max-concurrency",
        type=int,
        default=4,
        help="queries executing at once (more wait in the admission queue)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        help="admitted-but-waiting queries before requests are rejected with 429",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="wall-clock budget per query, queue wait included (504 when exceeded)",
    )
    serve.add_argument(
        "--max-rows",
        type=int,
        default=None,
        metavar="N",
        help="reject plans whose scan-classified blocks hold more than N rows (413)",
    )
    serve.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="reject plans whose scan-classified blocks span more than N bytes (413)",
    )
    serve.add_argument(
        "--result-cache-entries",
        type=int,
        default=256,
        metavar="N",
        help="result-cache capacity in entries (0 disables the cache)",
    )
    serve.add_argument(
        "--no-kernels", action="store_true", help="disable compressed-domain kernels"
    )
    serve.add_argument(
        "--no-dictionary", action="store_true", help="disable dictionary code-space evaluation"
    )

    check = subparsers.add_parser(
        "check",
        help="run the project-invariant static analyzer (see repro.analysis)",
    )
    check.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    check.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    check.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule names to skip",
    )
    check.add_argument(
        "--list-rules", action="store_true", help="print the registered rules and exit"
    )

    experiments = subparsers.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments.add_argument(
        "ids", nargs="*", default=None, help="experiment ids (e.g. table2 figure5); default all"
    )
    experiments.add_argument("--rows", type=int, default=None)

    return parser


# ---------------------------------------------------------------------------
# subcommand implementations
# ---------------------------------------------------------------------------

def _cmd_datasets(args: argparse.Namespace) -> int:
    if args.name is None:
        rows = [
            (name, f"{generator.paper_rows:,}", generator.default_rows)
            for name, generator in sorted(available_datasets().items())
        ]
        print(format_table(("dataset", "paper rows", "default rows"), rows))
        return 0

    generator = dataset_by_name(args.name)
    table = generator.generate(args.rows, seed=args.seed)
    if args.output == "-":
        writer = csv.writer(sys.stdout)
        limit = min(args.limit, table.n_rows)
    else:
        handle = open(args.output, "w", newline="")
        writer = csv.writer(handle)
        limit = table.n_rows
    writer.writerow(table.column_names)
    columns = [table.column(name) for name in table.column_names]
    for i in range(limit):
        writer.writerow([column[i] for column in columns])
    if args.output != "-":
        handle.close()
        print(f"wrote {limit:,} rows to {args.output}")
    return 0


def _parse_pair(spec: str) -> tuple[str, str]:
    if ":" not in spec:
        raise CorraError(
            f"expected TARGET:REFERENCE, got {spec!r}"
        )
    target, reference = spec.split(":", 1)
    return target, reference


def _build_plan(args: argparse.Namespace, table) -> CompressionPlan:
    explicit = args.diff_encode or args.hierarchical or args.mine_rules_for
    if args.plan == "baseline" and not explicit:
        return CompressionPlan.vertical_only(table.schema)

    if explicit:
        builder = CompressionPlan.builder(table.schema)
        for spec in args.diff_encode:
            target, reference = _parse_pair(spec)
            builder.diff_encode(target, reference)
        for spec in args.hierarchical:
            target, reference = _parse_pair(spec)
            builder.hierarchical_encode(target, reference)
        if args.mine_rules_for:
            config, result = mine_multi_reference_config(table, args.mine_rules_for)
            print("mined multi-reference configuration:")
            print("  " + result.describe().replace("\n", "\n  "))
            builder.multi_reference_encode(args.mine_rules_for, config)
        return builder.build()

    suggestions = CorrelationDetector().suggest(table)
    return CompressionPlan.from_suggestions(table.schema, suggestions)


def _cmd_compress(args: argparse.Namespace) -> int:
    generator = dataset_by_name(args.name)
    table = generator.generate(args.rows, seed=args.seed)
    baseline = SingleColumnBaseline().report(table)
    plan = _build_plan(args, table)

    compressor = TableCompressor(
        plan, block_size=args.block_size, workers=args.workers
    )
    relation = compressor.compress(table)

    rows = []
    for name in table.column_names:
        corra = relation.column_size(name)
        base = baseline.size_of(name)
        saving = 1 - corra / base
        column_plan = plan.column_plan(name)
        encoding = column_plan.encoding
        if column_plan.is_horizontal:
            encoding += f" ({', '.join(column_plan.references)})"
        rows.append((name, f"{base:,}", f"{corra:,}", f"{saving:.1%}", encoding))
    print(format_table(("column", "baseline bytes", "corra bytes", "saving", "encoding"), rows))
    total_saving = 1 - relation.size_bytes / max(baseline.total_size, 1)
    print(
        f"\ntotal: {baseline.total_size:,} -> {relation.size_bytes:,} bytes "
        f"({total_saving:.1%} saving), {relation.n_blocks} block(s) of "
        f"{args.block_size:,} tuples"
    )
    if args.output:
        footer = write_table(args.output, relation)
        print(
            f"wrote {footer.n_blocks} block(s) / {footer.data_bytes:,} data "
            f"bytes to {args.output} (format v{footer.version})"
        )
    if args.catalog:
        footer = Catalog(args.catalog).save(args.name, relation, overwrite=True)
        print(
            f"catalogued {args.name!r} in {args.catalog} "
            f"({footer.n_blocks} block(s), format v{footer.version})"
        )
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    generator = dataset_by_name(args.name)
    table = generator.generate(args.rows, seed=args.seed)
    detector = CorrelationDetector(min_saving_rate=args.min_saving_rate)
    suggestions = detector.suggest(table)
    if not suggestions:
        print("no exploitable correlations found")
        return 0
    rows = [
        (
            s.target,
            s.kind,
            ", ".join(s.references),
            f"{s.estimated_saving_rate:.1%}",
            f"{s.estimated_saving_bytes:,}",
            s.detail,
        )
        for s in suggestions[: args.top]
    ]
    print(
        format_table(("target", "encoding", "references", "saving", "bytes saved", "detail"), rows)
    )
    return 0


def _parse_scalar(text: str):
    """A CLI predicate operand: int when it parses as one, else string."""
    try:
        return int(text)
    except ValueError:
        return text


def _build_predicate(args: argparse.Namespace) -> Predicate | None:
    terms: list[Predicate] = []
    for spec in args.equals:
        column, _, value = spec.partition(":")
        if not value:
            raise CorraError(f"expected COLUMN:VALUE, got {spec!r}")
        terms.append(Eq(column, _parse_scalar(value)))
    for spec in args.between:
        parts = spec.split(":")
        if len(parts) != 3:
            raise CorraError(f"expected COLUMN:LOW:HIGH, got {spec!r}")
        column, low, high = parts
        terms.append(Between(
            column,
            _parse_scalar(low) if low else None,
            _parse_scalar(high) if high else None,
        ))
    for spec in args.is_in:
        column, _, values = spec.partition(":")
        if not values:
            raise CorraError(f"expected COLUMN:V1,V2,..., got {spec!r}")
        terms.append(In(column, [_parse_scalar(v) for v in values.split(",")]))
    if not terms:
        return None
    return terms[0] if len(terms) == 1 else And(*terms)


#: CLI aggregate function names -> constructors (count takes no column).
_AGG_FUNCTIONS = {
    "count": Count,
    "sum": Sum,
    "min": Min,
    "max": Max,
    "avg": Avg,
    "var": Var,
    "std": Std,
}


def _parse_aggregate(spec: str) -> tuple[str, "Count | Sum | Min | Max | Avg | Var | Std"]:
    parts = spec.split(":")
    if len(parts) not in (2, 3) or not all(parts):
        raise CorraError(f"expected NAME:FUNC[:COLUMN], got {spec!r}")
    name, func = parts[0], parts[1].lower()
    if func not in _AGG_FUNCTIONS:
        raise CorraError(
            f"unknown aggregate function {parts[1]!r}; "
            f"choose from {', '.join(sorted(_AGG_FUNCTIONS))}"
        )
    if func == "count":
        if len(parts) == 3:
            raise CorraError(f"count takes no input column, got {spec!r}")
        return name, Count()
    if len(parts) != 3:
        raise CorraError(f"{func} needs an input column: NAME:{func}:COLUMN")
    return name, _AGG_FUNCTIONS[func](parts[2])


def _print_metrics(metrics, workers: int) -> None:
    rows = [
        ("blocks", f"{metrics.n_blocks:,}"),
        ("blocks scanned", f"{metrics.blocks_scanned:,}"),
        ("blocks pruned", f"{metrics.blocks_pruned:,}"),
        ("blocks fully covered", f"{metrics.blocks_full:,}"),
        ("rows total", f"{metrics.rows_total:,}"),
        ("rows matched", f"{metrics.rows_matched:,}"),
        ("rows decoded", f"{metrics.rows_decoded:,}"),
        ("decoded fraction", f"{metrics.decoded_fraction:.2%}"),
        ("rows gathered", f"{metrics.rows_gathered:,}"),
        ("rows dict-evaluated", f"{metrics.rows_dict_evaluated:,}"),
        ("rows rle-evaluated", f"{metrics.rows_rle_evaluated:,}"),
        ("runs evaluated", f"{metrics.runs_evaluated:,}"),
        ("rows for-evaluated", f"{metrics.rows_for_evaluated:,}"),
        ("rows kernel-aggregated", f"{metrics.rows_kernel_aggregated:,}"),
        ("kernel declines", f"{metrics.kernel_declines:,}"),
        ("morsels stolen", f"{metrics.morsels_stolen:,}"),
        ("steal attempts", f"{metrics.steal_attempts:,}"),
        ("string heap decodes", f"{metrics.string_heap_decodes:,}"),
        ("scan workers", f"{workers:,}"),
    ]
    print(format_table(("scan metric", "value"), rows))


def _print_io_metrics(relation: DiskRelation) -> None:
    io, cache = relation.io, relation.cache_stats
    rows = [
        ("blocks read (full)", f"{io.blocks_read:,}"),
        ("column segments read", f"{io.columns_read:,}"),
        ("column segments skipped", f"{io.columns_skipped:,}"),
        ("reads coalesced", f"{io.reads_coalesced:,}"),
        ("column bytes read", f"{io.column_bytes_read:,}"),
        ("block bytes available", f"{io.column_block_bytes:,}"),
        ("total bytes read", f"{io.bytes_read:,}"),
        ("footer bytes read", f"{io.footer_bytes_read:,}"),
        ("table data bytes", f"{relation.size_bytes:,}"),
        ("cache hits", f"{cache.hits:,}"),
        ("cache misses", f"{cache.misses:,}"),
        ("cache hit rate", f"{cache.hit_rate:.1%}"),
        ("cache evictions", f"{cache.evictions:,}"),
        ("cache resident bytes", f"{cache.current_bytes:,}"),
        ("prefetch issued", f"{io.prefetch_issued:,}"),
        ("prefetch hits", f"{io.prefetch_hits:,}"),
    ]
    print(format_table(("io metric", "value"), rows))


def _reject_generation_flags(args: argparse.Namespace, target: str) -> None:
    """Disk tables are opened as-is; generation flags would silently lie."""
    conflicting = []
    if args.rows is not None:
        conflicting.append("--rows")
    if args.seed != 42:
        conflicting.append("--seed")
    if args.block_size != DEFAULT_BLOCK_SIZE:
        conflicting.append("--block-size")
    if args.plan != "auto":
        conflicting.append("--plan")
    if conflicting:
        raise CorraError(
            f"{', '.join(conflicting)} only apply when querying a generated "
            f"dataset; {target} is opened as-is"
        )


def _load_query_relation(args: argparse.Namespace):
    """The relation `corra query` runs over: compressed dataset or disk table."""
    prefetch_workers = 0 if args.no_prefetch else DEFAULT_PREFETCH_WORKERS
    if args.catalog is not None:
        _reject_generation_flags(args, f"catalogued table {args.name!r}")
        return Catalog(args.catalog, cache_bytes=args.cache_bytes).open(
            args.name, prefetch_workers=prefetch_workers
        )
    if args.name.endswith(TABLE_SUFFIX):
        _reject_generation_flags(args, f"table file {args.name!r}")
        return DiskRelation(
            args.name, cache_bytes=args.cache_bytes, prefetch_workers=prefetch_workers
        )
    generator = dataset_by_name(args.name)
    table = generator.generate(args.rows, seed=args.seed)
    if args.plan == "baseline":
        plan = CompressionPlan.vertical_only(table.schema)
    else:
        suggestions = CorrelationDetector().suggest(table)
        plan = CompressionPlan.from_suggestions(table.schema, suggestions)
    return TableCompressor(
        plan, block_size=args.block_size, workers=args.workers
    ).compress(table)


def _print_result_rows(columns: dict) -> None:
    names = tuple(columns)
    n_rows = len(next(iter(columns.values()))) if columns else 0
    cells = [
        tuple(str(columns[name][i]) for name in names) for i in range(n_rows)
    ]
    print(format_table(names, cells))


def _dump_trace(tracer: Tracer, destination: str, query_name: str) -> None:
    """Append one JSON line with the executed query's span tree."""
    trace = QueryTrace.from_tracer(tracer, query=query_name)
    line = trace.to_json_line()
    if destination == "-":
        print(line)
        return
    with open(destination, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
    print(f"trace: {len(trace.spans)} spans appended to {destination}")


def _cmd_query(args: argparse.Namespace) -> int:
    try:
        relation = _load_query_relation(args)
    except OSError as error:
        raise CorraError(f"cannot open table {args.name!r}: {error}") from error
    predicate = _build_predicate(args)
    aggregates = {}
    for spec in args.agg:
        name, fn = _parse_aggregate(spec)
        if name in aggregates:
            raise CorraError(f"duplicate aggregate output name {name!r}")
        aggregates[name] = fn
    group_columns = args.group_by.split(",") if args.group_by else []
    if group_columns and not aggregates:
        raise CorraError("--group-by needs at least one --agg")
    if aggregates and args.select:
        raise CorraError(
            "--select cannot be combined with --agg/--group-by; "
            "aggregate outputs are named by --agg"
        )
    order_column, order_desc = None, False
    if args.order_by is not None:
        order_column, _, suffix = args.order_by.partition(":")
        if not order_column or suffix not in ("", "desc"):
            raise CorraError(f"expected COLUMN or COLUMN:desc, got {args.order_by!r}")
        order_desc = suffix == "desc"
        if aggregates:
            raise CorraError("--order-by cannot be combined with --agg/--group-by")
        if not args.select:
            raise CorraError("--order-by needs --select (ordering a bare count is a no-op)")
    if not predicate and not aggregates and not args.select:
        raise CorraError(
            "no predicate given; use --equals, --between and/or --in "
            "(or aggregate the whole relation with --agg/--group-by)"
        )

    lazy = relation.query(
        config=EngineConfig(
            workers=args.workers,
            use_statistics=not args.no_pruning,
            use_dictionary=not args.no_dictionary,
            use_kernels=not args.no_kernels,
        )
    )
    if predicate is not None:
        lazy = lazy.where(predicate)
        print(f"query: {predicate.describe()}")
    if aggregates:
        if group_columns:
            lazy = lazy.group_by(*group_columns)
        lazy = lazy.agg(**aggregates)
    elif args.select:
        lazy = lazy.select(*args.select.split(","))
    if order_column is not None:
        lazy = lazy.order_by(order_column, desc=order_desc)
    if args.limit is not None:
        lazy = lazy.limit(args.limit)

    if args.explain or args.analyze:
        print(lazy.explain(analyze=args.analyze))
        print()

    tracer = Tracer() if args.trace is not None else None
    query_name = predicate.describe() if predicate is not None else args.name
    workers = resolve_workers(args.workers)
    if aggregates or args.select:
        result = lazy.execute(tracer=tracer)
        _print_result_rows(result.columns)
        if tracer is not None:
            _dump_trace(tracer, args.trace, query_name)
        if result.metrics is not None:
            print()
            _print_metrics(result.metrics, workers)
        if isinstance(relation, DiskRelation):
            print()
            _print_io_metrics(relation)
        return 0

    count = lazy.count(tracer=tracer)
    if tracer is not None:
        _dump_trace(tracer, args.trace, query_name)
    metrics = lazy.last_metrics
    # Selectivity reflects the predicate itself; --limit may clamp the
    # reported count but not the fraction of rows that actually matched.
    matched = metrics.rows_matched
    limited = " (limited)" if count < matched else ""
    print(
        f"count: {count:,}{limited} of {relation.n_rows:,} rows "
        f"({matched / max(relation.n_rows, 1):.2%} selectivity)"
    )
    _print_metrics(metrics, workers)
    if isinstance(relation, DiskRelation):
        print()
        _print_io_metrics(relation)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported here: the server package (asyncio front end) is only needed
    # by this subcommand.
    import asyncio

    from .server import CorraHttpServer, QueryService, ServiceConfig

    engine_config = EngineConfig(
        workers=args.workers,
        use_dictionary=not args.no_dictionary,
        use_kernels=not args.no_kernels,
        cache_bytes=args.cache_bytes,
    )
    service_config = ServiceConfig(
        max_concurrency=args.max_concurrency,
        queue_depth=args.queue_depth,
        timeout_seconds=args.timeout,
        max_rows_scanned=args.max_rows,
        max_bytes_scanned=args.max_bytes,
        result_cache_entries=args.result_cache_entries,
    )
    service = QueryService(args.catalog, engine_config=engine_config, config=service_config)
    tables = ", ".join(service.tables()) or "(none)"
    server = CorraHttpServer(service, host=args.host, port=args.port)

    def ready(host: str, port: int) -> None:
        print(f"serving catalog {args.catalog} on http://{host}:{port}", flush=True)
        print(f"tables: {tables}", flush=True)
        print("routes: GET /health /tables /metrics, POST /query", flush=True)

    try:
        with service:
            asyncio.run(server.serve(ready=ready))
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    """`corra check`: delegate to the analyzer's own argv contract."""
    from .analysis import main as analysis_main

    argv = list(args.paths)
    if args.select:
        argv += ["--select", args.select]
    if args.ignore:
        argv += ["--ignore", args.ignore]
    if args.list_rules:
        argv.append("--list-rules")
    return analysis_main(argv)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "datasets":
            return _cmd_datasets(args)
        if args.command == "compress":
            return _cmd_compress(args)
        if args.command == "detect":
            return _cmd_detect(args)
        if args.command == "query":
            return _cmd_query(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "check":
            return _cmd_check(args)
        if args.command == "experiments":
            return experiments_main(
                (args.ids or []) + (["--rows", str(args.rows)] if args.rows else [])
            )
    except CorraError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
