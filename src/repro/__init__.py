"""Corra: correlation-aware column compression (reproduction).

A Python reproduction of *"Corra: Correlation-Aware Column Compression"*
(Liu, Stoian, van Renen, Kipf; VLDB 2024 / arXiv:2403.17229).  The library
provides:

* the three horizontal encoding schemes of the paper — non-hierarchical
  diff-encoding, hierarchical encoding, and multi-reference encoding with an
  outlier region (:mod:`repro.core`);
* the single-column encoding substrate they are compared against
  (:mod:`repro.encodings`);
* a block-based columnar storage layer with per-block zone maps, a
  single-file ``.corra`` table format served out-of-core through a
  byte-budgeted block cache, and a query engine with a structured predicate
  IR, statistics-driven scan pruning, lazy logical plans and morsel-driven
  parallelism (:mod:`repro.storage`, :mod:`repro.query`);
* synthetic stand-ins for the paper's four datasets (:mod:`repro.datasets`);
* baselines, including the independent C3 system (:mod:`repro.baselines`);
* an experiment harness regenerating every table and figure
  (:mod:`repro.bench`).

Quickstart::

    from repro import CompressionPlan, TableCompressor, TpchLineitemGenerator

    table = TpchLineitemGenerator().generate_dates_only(100_000)
    plan = (CompressionPlan.builder(table.schema)
            .diff_encode("l_receiptdate", reference="l_shipdate")
            .diff_encode("l_commitdate", reference="l_shipdate")
            .build())
    relation = TableCompressor(plan).compress(table)
    print(relation.column_size("l_receiptdate"))

Querying uses the predicate IR; blocks whose zone maps rule out a match are
skipped without decoding, and :class:`~repro.query.ScanMetrics` reports how
much work that saved::

    from repro import Between, QueryExecutor

    executor = QueryExecutor(relation)
    n = executor.count(Between("l_shipdate", 9_000, 9_030))
    print(n, executor.last_scan_metrics.describe())
"""

from .baselines import C3Selector, SingleColumnBaseline, UncompressedBaseline
from .bitpack import BitPackedArray, pack, required_bits, unpack
from .core import (
    ArithmeticRule,
    ColumnPlan,
    CompressionPlan,
    CorrelationDetector,
    DiffEncodedColumn,
    DiffEncodingConfiguration,
    DiffEncodingOptimizer,
    HierarchicalEncodedColumn,
    HierarchicalEncoding,
    MultiReferenceConfig,
    MultiReferenceEncodedColumn,
    MultiReferenceEncoding,
    NonHierarchicalEncoding,
    OutlierStore,
    PlanBuilder,
    ReferenceGroup,
    TableCompressor,
)
from .datasets import (
    DmvGenerator,
    LdbcMessageGenerator,
    TaxiGenerator,
    TpchLineitemGenerator,
    available_datasets,
    dataset_by_name,
    taxi_multi_reference_config,
)
from .dtypes import BOOLEAN, DATE, DECIMAL, INT32, INT64, STRING, TIMESTAMP, DataType
from .encodings import (
    BestOfSelector,
    DictionaryEncoding,
    ForBitPackEncoding,
    PlainEncoding,
)
from .errors import (
    ConfigurationError,
    CorraError,
    DecodingError,
    EncodingError,
    SchemaError,
    SerializationError,
    UnknownColumnError,
    UnknownEncodingError,
    ValidationError,
)
from .query import (
    And,
    Between,
    ColumnPredicate,
    Eq,
    In,
    Or,
    Predicate,
    QueryExecutor,
    QueryResult,
    ScanMetrics,
    ScanPlanner,
    SelectionVector,
    generate_selection_vectors,
    materialize_columns,
    sweep_query_latency,
)
from .storage import (
    BlockCache,
    BlockStatistics,
    Catalog,
    ColumnSpec,
    ColumnStatistics,
    CompressedBlock,
    DiskRelation,
    IOMetrics,
    Relation,
    Schema,
    Table,
    TableReader,
    TableWriter,
    deserialize_block,
    open_table,
    serialize_block,
    write_table,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # bitpack
    "BitPackedArray", "pack", "unpack", "required_bits",
    # types
    "DataType", "INT32", "INT64", "DATE", "TIMESTAMP", "DECIMAL", "STRING", "BOOLEAN",
    # errors
    "CorraError", "EncodingError", "DecodingError", "SchemaError",
    "UnknownColumnError", "UnknownEncodingError", "ValidationError",
    "ConfigurationError", "SerializationError",
    # encodings
    "PlainEncoding", "ForBitPackEncoding", "DictionaryEncoding", "BestOfSelector",
    # storage
    "Schema", "ColumnSpec", "Table", "CompressedBlock", "Relation",
    "BlockStatistics", "ColumnStatistics",
    "serialize_block", "deserialize_block",
    "DiskRelation", "BlockCache", "IOMetrics", "Catalog",
    "TableWriter", "TableReader", "write_table", "open_table",
    # core
    "NonHierarchicalEncoding", "DiffEncodedColumn", "HierarchicalEncoding",
    "HierarchicalEncodedColumn", "MultiReferenceEncoding",
    "MultiReferenceEncodedColumn", "MultiReferenceConfig", "ReferenceGroup",
    "ArithmeticRule", "OutlierStore", "DiffEncodingOptimizer",
    "DiffEncodingConfiguration", "CorrelationDetector", "CompressionPlan",
    "PlanBuilder", "ColumnPlan", "TableCompressor",
    # query
    "SelectionVector", "generate_selection_vectors", "materialize_columns",
    "QueryExecutor", "QueryResult", "Predicate",
    "Eq", "Between", "In", "And", "Or", "ColumnPredicate",
    "ScanMetrics", "ScanPlanner", "sweep_query_latency",
    # datasets
    "TpchLineitemGenerator", "LdbcMessageGenerator", "DmvGenerator",
    "TaxiGenerator", "taxi_multi_reference_config", "available_datasets",
    "dataset_by_name",
    # baselines
    "SingleColumnBaseline", "UncompressedBaseline", "C3Selector",
]
