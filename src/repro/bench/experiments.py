"""Experiment definitions: one function per table/figure of the paper.

Every public function here regenerates the rows or series of one of the
paper's results on the synthetic datasets (DESIGN.md's per-experiment index
maps them to the corresponding ``benchmarks/`` targets):

========  ==============================================================
Table 1   :func:`rule_mixture_table1`
Figure 2  :func:`optimizer_figure2`
Table 2   :func:`compression_table2`
Table 3   :func:`c3_comparison_table3`
Figure 5  :func:`latency_figure5`
Figure 6  :func:`latency_zoom_figure6`
Figure 7  :func:`latency_zoom_figure7`
Figure 8  :func:`latency_figure8`
========  ==============================================================

:func:`scan_pruning_experiment` goes beyond the paper: it measures what the
block zone maps buy a selective predicate scan over a sorted date column
(blocks pruned, rows decoded, and the latency ratio against the
decode-every-block path).

Row counts default to a laptop-friendly size; the pytest-benchmark targets
pass larger counts.  Saving rates are row-count independent by construction
(payloads scale linearly), latency results are reported as ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..baselines.c3 import C3Selector
from ..baselines.single_column import SingleColumnBaseline
from ..baselines.uncompressed import UncompressedBaseline
from ..core.diff_encoding import NonHierarchicalEncoding
from ..core.hierarchical import HierarchicalEncoding
from ..core.multi_reference import MultiReferenceEncoding
from ..core.optimizer import DiffEncodingOptimizer
from ..core.plan import CompressionPlan, TableCompressor
from ..datasets.dmv import DmvGenerator
from ..datasets.ldbc import LdbcMessageGenerator
from ..datasets.taxi import TaxiGenerator, taxi_multi_reference_config
from ..datasets.tpch import TpchLineitemGenerator
from ..query.latency import latency_ratio, sweep_query_latency
from ..query.selection import PAPER_SELECTIVITIES, PAPER_ZOOM_SELECTIVITIES
from ..storage.relation import Relation
from ..storage.table import Table
from .harness import ExperimentResult, format_saving_rate

__all__ = [
    "Table2Row",
    "compression_table2",
    "rule_mixture_table1",
    "c3_comparison_table3",
    "optimizer_figure2",
    "latency_figure5",
    "latency_zoom_figure6",
    "latency_zoom_figure7",
    "latency_figure8",
    "scan_pruning_experiment",
    "DEFAULT_COMPRESSION_ROWS",
    "DEFAULT_LATENCY_ROWS",
]

#: Default row count for the compression-size experiments.
DEFAULT_COMPRESSION_ROWS = 200_000

#: Default row count for the latency experiments.
DEFAULT_LATENCY_ROWS = 200_000

#: Paper saving rates (Table 2), used for side-by-side reporting.
PAPER_TABLE2_SAVING_RATES = {
    ("lineitem", "l_receiptdate"): 0.583,
    ("lineitem", "l_commitdate"): 0.333,
    ("taxi", "dropoff"): 0.306,
    ("dmv", "zip_code"): 0.537,
    ("dmv", "city"): 0.018,
    ("message", "ip"): 0.171,
    ("taxi", "total_amount"): 0.8516,
}

#: Paper saving rates for the C3 comparison (Table 3): (Corra, C3).
PAPER_TABLE3_SAVING_RATES = {
    ("l_shipdate", "l_commitdate"): (0.333, 0.315),
    ("l_shipdate", "l_receiptdate"): (0.583, 0.561),
    ("pickup", "dropoff"): (0.306, 0.529),
    ("city", "zip_code"): (0.537, 0.591),
}


@dataclass(frozen=True)
class Table2Row:
    """One row of the reproduced Table 2."""

    dataset: str
    column: str
    encoding: str
    reference: str
    baseline_bytes: int
    corra_bytes: int
    paper_saving_rate: float

    @property
    def saving_rate(self) -> float:
        return 1.0 - self.corra_bytes / self.baseline_bytes


# ---------------------------------------------------------------------------
# Table 2: compression sizes
# ---------------------------------------------------------------------------

def _baseline_size(baseline: SingleColumnBaseline, table: Table, column: str) -> int:
    return baseline.select_column(table, column).size_bytes


def compression_table2(n_rows: int = DEFAULT_COMPRESSION_ROWS, seed: int = 42) -> ExperimentResult:
    """Reproduce Table 2: per-column sizes with and without diff-encoding."""
    baseline = SingleColumnBaseline()
    non_hierarchical = NonHierarchicalEncoding()
    hierarchical = HierarchicalEncoding()
    rows: list[Table2Row] = []

    # TPC-H lineitem dates.
    lineitem = TpchLineitemGenerator().generate_dates_only(n_rows, seed)
    for target, paper_rate in (("l_receiptdate", 0.583), ("l_commitdate", 0.333)):
        rows.append(
            Table2Row(
                dataset="lineitem",
                column=target,
                encoding="Non-hierarchical",
                reference="l_shipdate",
                baseline_bytes=_baseline_size(baseline, lineitem, target),
                corra_bytes=non_hierarchical.encode(
                    lineitem.column(target), lineitem.column("l_shipdate"), "l_shipdate"
                ).size_bytes,
                paper_saving_rate=paper_rate,
            )
        )

    # Taxi timestamps (dropoff w.r.t. pickup).
    taxi = TaxiGenerator().generate(n_rows, seed)
    rows.append(
        Table2Row(
            dataset="taxi",
            column="dropoff",
            encoding="Non-hierarchical",
            reference="pickup",
            baseline_bytes=_baseline_size(baseline, taxi, "dropoff"),
            corra_bytes=non_hierarchical.encode(
                taxi.column("dropoff"), taxi.column("pickup"), "pickup"
            ).size_bytes,
            paper_saving_rate=0.306,
        )
    )

    # DMV hierarchies.
    dmv = DmvGenerator().generate_pair_only(n_rows, seed)
    rows.append(
        Table2Row(
            dataset="dmv",
            column="zip_code",
            encoding="Hierarchical",
            reference="city",
            baseline_bytes=_baseline_size(baseline, dmv, "zip_code"),
            corra_bytes=hierarchical.encode(
                dmv.column("zip_code"), dmv.column("city"), "city"
            ).size_bytes,
            paper_saving_rate=0.537,
        )
    )
    rows.append(
        Table2Row(
            dataset="dmv",
            column="city",
            encoding="Hierarchical",
            reference="state",
            baseline_bytes=_baseline_size(baseline, dmv, "city"),
            corra_bytes=hierarchical.encode(
                dmv.column("city"), dmv.column("state"), "state"
            ).size_bytes,
            paper_saving_rate=0.018,
        )
    )

    # LDBC message (ip w.r.t. countryid).
    message = LdbcMessageGenerator().generate_pair_only(n_rows, seed)
    rows.append(
        Table2Row(
            dataset="message",
            column="ip",
            encoding="Hierarchical",
            reference="countryid",
            baseline_bytes=_baseline_size(baseline, message, "ip"),
            corra_bytes=hierarchical.encode(
                message.column("ip"), message.column("countryid"), "countryid"
            ).size_bytes,
            paper_saving_rate=0.171,
        )
    )

    # Taxi total_amount with multiple reference columns.
    config = taxi_multi_reference_config()
    references = {name: taxi.column(name) for name in config.reference_columns}
    rows.append(
        Table2Row(
            dataset="taxi",
            column="total_amount",
            encoding="Non-hierarchical (multi-ref)",
            reference="multiple (A/B/C)",
            baseline_bytes=_baseline_size(baseline, taxi, "total_amount"),
            corra_bytes=MultiReferenceEncoding(config).encode(
                taxi.column("total_amount"), references
            ).size_bytes,
            paper_saving_rate=0.8516,
        )
    )

    result = ExperimentResult(
        experiment_id="table2",
        title="Space saving over single-column encoding schemes",
        headers=(
            "Dataset", "Column", "Encoding", "Ref. column",
            "Size w/o diff-enc", "Size w/ diff-enc", "Saving rate", "Paper",
        ),
    )
    for row in rows:
        result.add_row(
            row.dataset, row.column, row.encoding, row.reference,
            row.baseline_bytes, row.corra_bytes,
            format_saving_rate(row.saving_rate),
            format_saving_rate(row.paper_saving_rate),
        )
        result.metrics[f"{row.dataset}.{row.column}.saving_rate"] = row.saving_rate
    result.add_note(
        f"synthetic datasets with {n_rows} rows; saving rates are row-count "
        "independent, absolute sizes are not"
    )
    return result


# ---------------------------------------------------------------------------
# Table 1: Taxi arithmetic-rule mixture
# ---------------------------------------------------------------------------

def rule_mixture_table1(n_rows: int = DEFAULT_COMPRESSION_ROWS,
                        seed: int = 42) -> ExperimentResult:
    """Reproduce Table 1: rule mixture and binary codes for taxi total_amount."""
    taxi = TaxiGenerator().generate_monetary_only(n_rows, seed)
    config = taxi_multi_reference_config()
    references = {name: taxi.column(name) for name in config.reference_columns}
    encoded = MultiReferenceEncoding(config).encode(
        taxi.column("total_amount"), references
    )
    statistics = encoded.rule_statistics()

    paper_probabilities = {
        "A": 0.3119, "A + B": 0.6244, "A + C": 0.0269, "A + B + C": 0.0333,
        "None": 0.0032,
    }

    result = ExperimentResult(
        experiment_id="table1",
        title="Diff-encoding total_amount w.r.t. multiple reference columns",
        headers=("Group", "Probability", "Paper", "Binary encoding"),
    )
    for label, code, probability in statistics.as_rows():
        result.add_row(
            label,
            f"{probability * 100:.2f}%",
            f"{paper_probabilities.get(label, 0.0) * 100:.2f}%",
            code,
        )
        result.metrics[f"probability.{label}"] = probability
    result.metrics["outlier_fraction"] = statistics.outlier_probability
    return result


# ---------------------------------------------------------------------------
# Table 3: Corra vs C3
# ---------------------------------------------------------------------------

def c3_comparison_table3(
    n_rows: int = DEFAULT_COMPRESSION_ROWS, seed: int = 42
) -> ExperimentResult:
    """Reproduce Table 3: saving rates of Corra vs the C3 comparator."""
    baseline = SingleColumnBaseline()
    non_hierarchical = NonHierarchicalEncoding()
    hierarchical = HierarchicalEncoding()
    c3 = C3Selector()

    lineitem = TpchLineitemGenerator().generate_dates_only(n_rows, seed)
    taxi = TaxiGenerator().generate_timestamps_only(n_rows, seed)
    dmv = DmvGenerator().generate_pair_only(n_rows, seed)

    result = ExperimentResult(
        experiment_id="table3",
        title="Saving rates compared to the independent work C3",
        headers=(
            "Column-Pair",
            "Corra (ours)",
            "C3",
            "C3 scheme",
            "Paper Corra",
            "Paper C3",
        ),
    )

    def add_pair(
        table: Table, reference: str, target: str, corra_bytes: int, paper_key: tuple[str, str]
    ) -> None:
        baseline_bytes = _baseline_size(baseline, table, target)
        c3_estimate = c3.best(table, target, reference)
        corra_rate = 1.0 - corra_bytes / baseline_bytes
        c3_rate = 1.0 - c3_estimate.size_bytes / baseline_bytes
        paper_corra, paper_c3 = PAPER_TABLE3_SAVING_RATES[paper_key]
        result.add_row(
            f"({reference}, {target})",
            format_saving_rate(corra_rate),
            format_saving_rate(c3_rate),
            c3_estimate.scheme,
            format_saving_rate(paper_corra),
            format_saving_rate(paper_c3),
        )
        result.metrics[f"corra.{target}"] = corra_rate
        result.metrics[f"c3.{target}"] = c3_rate

    add_pair(
        lineitem, "l_shipdate", "l_commitdate",
        non_hierarchical.encode(
            lineitem.column("l_commitdate"), lineitem.column("l_shipdate"), "l_shipdate"
        ).size_bytes,
        ("l_shipdate", "l_commitdate"),
    )
    add_pair(
        lineitem, "l_shipdate", "l_receiptdate",
        non_hierarchical.encode(
            lineitem.column("l_receiptdate"), lineitem.column("l_shipdate"), "l_shipdate"
        ).size_bytes,
        ("l_shipdate", "l_receiptdate"),
    )
    add_pair(
        taxi, "pickup", "dropoff",
        non_hierarchical.encode(
            taxi.column("dropoff"), taxi.column("pickup"), "pickup"
        ).size_bytes,
        ("pickup", "dropoff"),
    )
    add_pair(
        dmv, "city", "zip_code",
        hierarchical.encode(
            dmv.column("zip_code"), dmv.column("city"), "city"
        ).size_bytes,
        ("city", "zip_code"),
    )
    result.add_note("C3 does not support multiple reference columns (paper §2.3)")
    return result


# ---------------------------------------------------------------------------
# Figure 2: optimal diff-encoding configuration
# ---------------------------------------------------------------------------

def optimizer_figure2(n_rows: int = DEFAULT_COMPRESSION_ROWS, seed: int = 42) -> ExperimentResult:
    """Reproduce Fig. 2: the candidate graph and the greedy configuration."""
    generator = TpchLineitemGenerator()
    dates = generator.generate_dates_only(n_rows, seed)
    optimizer = DiffEncodingOptimizer()
    graph, config = optimizer.optimize(dates)

    scale = generator.paper_rows / n_rows

    result = ExperimentResult(
        experiment_id="figure2",
        title="Optimal diff-encoding configuration for TPC-H date columns",
        headers=("Edge / vertex", "Size (measured)", "Size scaled to SF 10 (MB)"),
    )
    for column in graph.columns:
        size = graph.vertical_sizes[column]
        result.add_row(f"{column} (vertical)", size, f"{size * scale / 1e6:.1f}")
    for diff_column, reference, size, saving in graph.as_rows():
        result.add_row(
            f"{diff_column} -> {reference}", size, f"{size * scale / 1e6:.1f}"
        )
    for column, reference in config.assignments.items():
        result.add_note(f"chosen: diff-encode {column} w.r.t. {reference}")
    result.add_note(
        f"total saving over bit-packing the individual columns: "
        f"{config.total_saving * scale / 1e6:.1f} MB scaled to SF 10 "
        "(paper reports 82.5 MB)"
    )
    result.metrics["total_saving_bytes"] = float(config.total_saving)
    result.metrics["total_saving_scaled_mb"] = config.total_saving * scale / 1e6
    for column, reference in config.assignments.items():
        result.metrics[f"reference.{column}"] = float(
            graph.columns.index(reference)
        )
    return result


# ---------------------------------------------------------------------------
# Latency experiments (Figures 5-8)
# ---------------------------------------------------------------------------

def _tpch_relations(n_rows: int, seed: int, block_size: int) -> tuple[Relation, Relation, Relation]:
    """(baseline, corra, uncompressed) relations for the TPC-H date pair."""
    dates = TpchLineitemGenerator().generate(n_rows, seed).select(
        ["l_shipdate", "l_receiptdate"]
    )
    baseline = SingleColumnBaseline(block_size=block_size).compress(dates)
    plan = (
        CompressionPlan.builder(dates.schema)
        .diff_encode("l_receiptdate", reference="l_shipdate")
        .build()
    )
    corra = TableCompressor(plan, block_size=block_size).compress(dates)
    uncompressed = UncompressedBaseline(block_size=block_size).compress(dates)
    return baseline, corra, uncompressed


def _ldbc_relations(n_rows: int, seed: int, block_size: int) -> tuple[Relation, Relation, Relation]:
    """(baseline, corra, uncompressed) relations for the LDBC (countryid, ip) pair."""
    pair = LdbcMessageGenerator().generate_pair_only(n_rows, seed)
    baseline = SingleColumnBaseline(block_size=block_size).compress(pair)
    plan = (
        CompressionPlan.builder(pair.schema)
        .hierarchical_encode("ip", reference="countryid")
        .build()
    )
    corra = TableCompressor(plan, block_size=block_size).compress(pair)
    uncompressed = UncompressedBaseline(block_size=block_size).compress(pair)
    return baseline, corra, uncompressed


def _taxi_relations(n_rows: int, seed: int, block_size: int) -> tuple[Relation, Relation]:
    """(baseline, corra) relations for the Taxi monetary columns."""
    monetary = TaxiGenerator().generate_monetary_only(n_rows, seed)
    baseline = SingleColumnBaseline(block_size=block_size).compress(monetary)
    config = taxi_multi_reference_config()
    plan = (
        CompressionPlan.builder(monetary.schema)
        .multi_reference_encode("total_amount", config)
        .build()
    )
    corra = TableCompressor(plan, block_size=block_size).compress(monetary)
    return baseline, corra


def latency_figure5(n_rows: int = DEFAULT_LATENCY_ROWS,
                    selectivities: Sequence[float] = PAPER_SELECTIVITIES,
                    n_vectors: int = 5, repeats: int = 1, seed: int = 42,
                    block_size: int = 1_000_000) -> ExperimentResult:
    """Reproduce Fig. 5: latency ratio over the single-column baseline.

    Four series: {non-hierarchical, hierarchical} x {diff-encoded column only,
    both columns}.
    """
    result = ExperimentResult(
        experiment_id="figure5",
        title="Query latency ratio over single-column compression",
        headers=("Encoding", "Query", "Selectivity", "Ratio"),
    )

    tpch_baseline, tpch_corra, _ = _tpch_relations(n_rows, seed, block_size)
    ldbc_baseline, ldbc_corra, _ = _ldbc_relations(n_rows, seed, block_size)

    series = (
        ("non-hierarchical", "diff-encoded column", tpch_corra, tpch_baseline, ["l_receiptdate"]),
        (
            "non-hierarchical",
            "both columns",
            tpch_corra,
            tpch_baseline,
            ["l_shipdate", "l_receiptdate"],
        ),
        ("hierarchical", "diff-encoded column", ldbc_corra, ldbc_baseline, ["ip"]),
        ("hierarchical", "both columns", ldbc_corra, ldbc_baseline, ["countryid", "ip"]),
    )
    for encoding, query, corra_relation, baseline_relation, columns in series:
        corra_sweep = sweep_query_latency(
            corra_relation, columns, selectivities, n_vectors, repeats, seed
        )
        baseline_sweep = sweep_query_latency(
            baseline_relation, columns, selectivities, n_vectors, repeats, seed
        )
        for selectivity, ratio in latency_ratio(corra_sweep, baseline_sweep).items():
            result.add_row(encoding, query, selectivity, f"{ratio:.2f}x")
            result.metrics[f"{encoding}.{query}.{selectivity}"] = ratio
    result.add_note(
        "ratios > 1 are slowdowns; the paper reports <= 1.66x for the "
        "non-hierarchical diff-encoded column and 1.39x-1.56x for hierarchical"
    )
    return result


def _zoom_experiment(
    experiment_id: str,
    title: str,
    relations: tuple[Relation, Relation, Relation],
    diff_column: str,
    reference_column: str,
    selectivities: Sequence[float],
    n_vectors: int,
    repeats: int,
    seed: int,
) -> ExperimentResult:
    baseline, corra, uncompressed = relations
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=("Selectivity", "Query", "Configuration", "Time [ms]"),
    )
    configurations = (
        ("Uncompressed", uncompressed),
        ("Single-column compression", baseline),
        ("Corra", corra),
    )
    queries = (
        ("diff-enc. column", [diff_column]),
        ("both columns", [reference_column, diff_column]),
    )
    for selectivity in selectivities:
        for query_name, columns in queries:
            for config_name, relation in configurations:
                sweep = sweep_query_latency(
                    relation, columns, [selectivity], n_vectors, repeats, seed
                )
                median_ms = sweep.measurement(selectivity).median * 1e3
                result.add_row(selectivity, query_name, config_name, f"{median_ms:.2f}")
                result.metrics[f"{selectivity}.{query_name}.{config_name}"] = median_ms
    return result


def latency_zoom_figure6(
    n_rows: int = DEFAULT_LATENCY_ROWS,
    selectivities: Sequence[float] = PAPER_ZOOM_SELECTIVITIES,
    n_vectors: int = 5,
    repeats: int = 1,
    seed: int = 42,
    block_size: int = 1_000_000,
) -> ExperimentResult:
    """Reproduce Fig. 6: absolute latency, non-hierarchical encoding."""
    return _zoom_experiment(
        "figure6",
        "Non-hierarchical encoding: absolute latency at four selectivities",
        _tpch_relations(n_rows, seed, block_size),
        diff_column="l_receiptdate",
        reference_column="l_shipdate",
        selectivities=selectivities,
        n_vectors=n_vectors,
        repeats=repeats,
        seed=seed,
    )


def latency_zoom_figure7(
    n_rows: int = DEFAULT_LATENCY_ROWS,
    selectivities: Sequence[float] = PAPER_ZOOM_SELECTIVITIES,
    n_vectors: int = 5,
    repeats: int = 1,
    seed: int = 42,
    block_size: int = 1_000_000,
) -> ExperimentResult:
    """Reproduce Fig. 7: absolute latency, hierarchical encoding."""
    return _zoom_experiment(
        "figure7",
        "Hierarchical encoding: absolute latency at four selectivities",
        _ldbc_relations(n_rows, seed, block_size),
        diff_column="ip",
        reference_column="countryid",
        selectivities=selectivities,
        n_vectors=n_vectors,
        repeats=repeats,
        seed=seed,
    )


def latency_figure8(n_rows: int = DEFAULT_LATENCY_ROWS,
                    selectivities: Sequence[float] = PAPER_SELECTIVITIES,
                    n_vectors: int = 5, repeats: int = 1, seed: int = 42,
                    block_size: int = 1_000_000) -> ExperimentResult:
    """Reproduce Fig. 8: latency ratio for multi-reference encoding (Taxi)."""
    baseline, corra = _taxi_relations(n_rows, seed, block_size)
    result = ExperimentResult(
        experiment_id="figure8",
        title="Multi-reference encoding: latency ratio on the diff-encoded column",
        headers=("Selectivity", "Ratio"),
    )
    corra_sweep = sweep_query_latency(
        corra, ["total_amount"], selectivities, n_vectors, repeats, seed
    )
    baseline_sweep = sweep_query_latency(
        baseline, ["total_amount"], selectivities, n_vectors, repeats, seed
    )
    for selectivity, ratio in latency_ratio(corra_sweep, baseline_sweep).items():
        result.add_row(selectivity, f"{ratio:.2f}x")
        result.metrics[str(selectivity)] = ratio
    result.add_note(
        "reconstructing total_amount touches all eight reference columns; the "
        "paper reports a high ratio at low selectivities that stabilises "
        "around 2x as data locality improves"
    )
    return result


def _sorted_dates_relations(n_rows: int, n_blocks: int,
                            seed: int) -> tuple[Relation, Table]:
    """A sorted TPC-H date pair split into ``n_blocks`` equal blocks."""
    table = TpchLineitemGenerator().generate(n_rows, seed=seed).select(
        ["l_shipdate", "l_receiptdate"]
    )
    import numpy as np

    order = np.argsort(np.asarray(table.column("l_shipdate")), kind="stable")
    sorted_table = Table(
        table.schema,
        {
            name: (
                [table.column(name)[int(i)] for i in order]
                if isinstance(table.column(name), list)
                else np.asarray(table.column(name))[order]
            )
            for name in table.column_names
        },
    )
    plan = (
        CompressionPlan.builder(sorted_table.schema)
        .diff_encode("l_receiptdate", reference="l_shipdate")
        .build()
    )
    block_size = max(1, -(-n_rows // n_blocks))
    relation = TableCompressor(plan, block_size=block_size).compress(sorted_table)
    return relation, sorted_table


def scan_pruning_experiment(
    n_rows: int = DEFAULT_LATENCY_ROWS,
    selectivities: Sequence[float] = (0.001, 0.01, 0.05, 0.1, 0.5),
    n_blocks: int = 16,
    repeats: int = 5,
    seed: int = 42,
) -> ExperimentResult:
    """Zone-map pruning on a sorted date column: blocks pruned and speedup.

    For each target selectivity a ``Between`` predicate covering the leading
    fraction of the sorted ``l_shipdate`` domain is counted twice — once
    through the scan planner and once with statistics disabled (the old
    decode-every-block path) — and the latency ratio is reported.
    """
    import time

    import numpy as np

    from ..query.executor import QueryExecutor
    from ..query.predicates import Between

    relation, sorted_table = _sorted_dates_relations(n_rows, n_blocks, seed)
    ship = np.asarray(sorted_table.column("l_shipdate"))

    result = ExperimentResult(
        experiment_id="scan",
        title="Zone-map scan pruning on sorted l_shipdate",
        headers=(
            "Selectivity",
            "Blocks skipped",
            "Rows decoded",
            "Pruned ms",
            "Full-decode ms",
            "Speedup",
        ),
    )
    pruned_executor = QueryExecutor(relation)
    full_executor = QueryExecutor(relation, use_statistics=False)

    def _time(executor, predicate) -> float:
        executor.count(predicate)  # warm-up
        timings = []
        for _ in range(repeats):
            start = time.perf_counter()
            executor.count(predicate)
            timings.append(time.perf_counter() - start)
        return float(np.median(timings))

    for selectivity in selectivities:
        cutoff = int(ship[min(int(selectivity * ship.size), ship.size - 1)])
        predicate = Between("l_shipdate", int(ship[0]), cutoff)
        pruned_seconds = _time(pruned_executor, predicate)
        metrics = pruned_executor.last_scan_metrics
        full_seconds = _time(full_executor, predicate)
        speedup = full_seconds / pruned_seconds if pruned_seconds > 0 else float("inf")
        result.add_row(
            selectivity,
            f"{metrics.blocks_pruned + metrics.blocks_full}/{metrics.n_blocks}",
            f"{metrics.rows_decoded:,}",
            f"{pruned_seconds * 1e3:.2f}",
            f"{full_seconds * 1e3:.2f}",
            f"{speedup:.1f}x",
        )
        result.metrics[f"speedup.{selectivity}"] = speedup
        result.metrics[f"blocks_pruned.{selectivity}"] = float(metrics.blocks_pruned)
        result.metrics[f"blocks_full.{selectivity}"] = float(metrics.blocks_full)
    result.add_note(
        "the full-decode path decodes every block for every predicate; the "
        "planner touches only blocks whose zone map overlaps the range"
    )
    return result
