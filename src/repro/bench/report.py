"""Rendering experiment results into paper-style text reports.

``python -m repro.bench.report`` runs every experiment at a modest scale and
prints the reproduced tables and figure series, which is the quickest way to
eyeball the reproduction against the paper.
"""

from __future__ import annotations

import argparse
from typing import Callable, Sequence

from .experiments import (
    c3_comparison_table3,
    compression_table2,
    latency_figure5,
    latency_figure8,
    latency_zoom_figure6,
    latency_zoom_figure7,
    optimizer_figure2,
    rule_mixture_table1,
    scan_pruning_experiment,
)
from .harness import ExperimentResult

__all__ = ["all_experiments", "run_experiments", "main"]


def all_experiments() -> dict[str, Callable[..., ExperimentResult]]:
    """Mapping from experiment id to the function that regenerates it."""
    return {
        "table1": rule_mixture_table1,
        "table2": compression_table2,
        "table3": c3_comparison_table3,
        "figure2": optimizer_figure2,
        "figure5": latency_figure5,
        "figure6": latency_zoom_figure6,
        "figure7": latency_zoom_figure7,
        "figure8": latency_figure8,
        "scan": scan_pruning_experiment,
    }


def run_experiments(ids: Sequence[str] | None = None,
                    n_rows: int | None = None) -> list[ExperimentResult]:
    """Run the selected experiments (all of them by default)."""
    registry = all_experiments()
    selected = list(registry) if ids is None else list(ids)
    results = []
    for experiment_id in selected:
        function = registry[experiment_id]
        if n_rows is None:
            results.append(function())
        else:
            results.append(function(n_rows=n_rows))
    return results


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures on synthetic data"
    )
    parser.add_argument(
        "experiments", nargs="*", default=None,
        help="experiment ids to run (default: all); e.g. table2 figure5",
    )
    parser.add_argument(
        "--rows", type=int, default=None,
        help="row count per dataset (default: each experiment's default)",
    )
    args = parser.parse_args(argv)
    ids = args.experiments if args.experiments else None
    for result in run_experiments(ids, args.rows):
        print(result.render())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
