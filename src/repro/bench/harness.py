"""Shared infrastructure for the experiment harness.

The benchmark targets in ``benchmarks/`` and the runnable examples both go
through this module: experiment functions in :mod:`repro.bench.experiments`
return plain dataclasses, and the helpers here render them as aligned text
tables that mirror the rows/series the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["format_table", "ExperimentResult", "format_saving_rate"]


def format_saving_rate(rate: float) -> str:
    """Render a fractional saving rate the way the paper prints it (58.3 %)."""
    return f"{rate * 100:.1f}%"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as a fixed-width text table with a header rule."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for row_index, row in enumerate(cells):
        line = "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if row_index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """A named experiment outcome: a headline table plus free-form metrics."""

    experiment_id: str
    title: str
    headers: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    metrics: dict[str, float] = field(default_factory=dict)

    def add_row(self, *values) -> None:
        self.rows.append(tuple(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        """Readable text block: title, table, notes."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        parts.append(format_table(self.headers, self.rows))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.render()
