"""Experiment harness: one function per table/figure, plus text reporting."""

from .experiments import (
    DEFAULT_COMPRESSION_ROWS,
    DEFAULT_LATENCY_ROWS,
    Table2Row,
    c3_comparison_table3,
    compression_table2,
    latency_figure5,
    latency_figure8,
    latency_zoom_figure6,
    latency_zoom_figure7,
    optimizer_figure2,
    rule_mixture_table1,
    scan_pruning_experiment,
)
from .harness import ExperimentResult, format_saving_rate, format_table
from .report import all_experiments, run_experiments

__all__ = [
    "ExperimentResult",
    "format_table",
    "format_saving_rate",
    "Table2Row",
    "compression_table2",
    "rule_mixture_table1",
    "c3_comparison_table3",
    "optimizer_figure2",
    "latency_figure5",
    "latency_zoom_figure6",
    "latency_zoom_figure7",
    "latency_figure8",
    "scan_pruning_experiment",
    "all_experiments",
    "run_experiments",
    "DEFAULT_COMPRESSION_ROWS",
    "DEFAULT_LATENCY_ROWS",
]
