"""Per-block, per-column statistics (zone maps) for scan pruning.

Every :class:`~repro.storage.block.CompressedBlock` can carry a
:class:`BlockStatistics` object computed at compression time: one
:class:`ColumnStatistics` per column with the value range, the null-free row
count, and a distinct-count estimate.  The query layer tests structured
predicates (:mod:`repro.query.predicates`) against these statistics to skip
whole blocks before any decoding — the classic zone-map trick that makes
selective scans over sorted or clustered columns (TPC-H dates, DMV
registration years) fast despite the compressed layout.

Two flavours of bounds exist:

* *exact* bounds, computed from the raw values of a block chunk;
* *derived* bounds for diff-encoded columns, obtained without touching the
  target values: ``min(target) >= min(reference) + min(delta)`` and
  ``max(target) <= max(reference) + max(delta)``, widened by the outlier
  region if one exists.  Derived bounds are conservative (they always contain
  the true range), which is all pruning needs; they are flagged with
  ``exact_bounds=False`` so the planner never uses them to answer a query
  *positively* (e.g. counting a fully-covered block without decoding).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..errors import ValidationError

__all__ = ["ColumnStatistics", "BlockStatistics", "LazyBlockStatistics"]

#: Bytes charged per column for min/max/sum (3 x 8), counts (2 x 4) and flags.
_BYTES_PER_COLUMN = 8 + 8 + 8 + 4 + 4 + 4


def _comparable(a, b) -> bool:
    """Whether two scalars can be ordered (guards int-vs-str comparisons)."""
    if isinstance(a, str) != isinstance(b, str):
        return False
    return True


@dataclass(frozen=True)
class ColumnStatistics:
    """Zone-map statistics of one column within one block.

    ``min_value``/``max_value`` are ``None`` for empty blocks.  String columns
    carry lexicographic bounds.  ``delta_min``/``delta_max`` record the stored
    difference range of a diff-encoded column (the quantity the bounds of a
    derived zone map are built from).
    """

    row_count: int
    min_value: int | str | None = None
    max_value: int | str | None = None
    distinct_count: int | None = None
    delta_min: int | None = None
    delta_max: int | None = None
    exact_bounds: bool = True
    #: Exact sum of an integer column's values (``None`` for string columns
    #: and for derived zone maps, whose bounds never touched the raw values).
    #: Lets the query layer answer ``sum`` over a fully-covered block from
    #: metadata alone, the same way ``min``/``max`` use the exact bounds.
    sum_value: int | None = None

    def __post_init__(self) -> None:
        if self.row_count < 0:
            raise ValidationError("row_count must be non-negative")
        if self.row_count > 0 and (self.min_value is None) != (self.max_value is None):
            raise ValidationError("min_value and max_value must be set together")

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_values(
        cls, values: np.ndarray | Sequence, distinct: bool | str = True
    ) -> "ColumnStatistics":
        """Statistics computed from raw (uncompressed) column values.

        ``distinct`` controls the distinct-count field: ``True`` computes it
        exactly (a full sort / hash of the block), ``"estimate"`` derives a
        free upper bound from the integer value range (``None`` for string
        columns), ``False`` skips it.  Compression uses ``"estimate"`` so
        zone maps cost no extra pass over the data.
        """
        n = len(values)
        if n == 0:
            return cls(row_count=0)
        if isinstance(values, np.ndarray):
            lo, hi = int(values.min()), int(values.max())
            total = int(values.sum(dtype=np.int64))
        else:
            lo, hi = min(values), max(values)
            total = None
        if distinct == "estimate":
            n_distinct = None if isinstance(lo, str) else min(n, int(hi) - int(lo) + 1)
        elif distinct:
            if isinstance(values, np.ndarray):
                n_distinct = int(np.unique(values).size)
            else:
                n_distinct = len(set(values))
        else:
            n_distinct = None
        return cls(
            row_count=n,
            min_value=lo,
            max_value=hi,
            distinct_count=n_distinct,
            sum_value=total,
        )

    @classmethod
    def from_reference_and_deltas(
        cls,
        reference: "ColumnStatistics",
        delta_min: int,
        delta_max: int,
        row_count: int,
        outlier_values: np.ndarray | None = None,
        sum_value: int | None = None,
    ) -> "ColumnStatistics":
        """Conservative bounds for a diff-encoded column.

        The target never strays outside ``[ref_min + delta_min,
        ref_max + delta_max]``; outlier rows are stored verbatim, so their
        values widen the range directly.  No target value is ever touched.

        ``sum_value``, when given, must be the *exact* column total — the
        caller derives it as ``sum(reference) + sum(deltas)`` (plus the
        outlier correction) without decoding the target.  Unlike the bounds
        it is therefore allowed to answer aggregates affirmatively.
        """
        if row_count == 0:
            return cls(row_count=0, delta_min=0, delta_max=0, exact_bounds=False)
        if reference.min_value is None or isinstance(reference.min_value, str):
            raise ValidationError("derived bounds need integer reference statistics")
        lo = int(reference.min_value) + int(delta_min)
        hi = int(reference.max_value) + int(delta_max)
        if outlier_values is not None and len(outlier_values):
            lo = min(lo, int(np.min(outlier_values)))
            hi = max(hi, int(np.max(outlier_values)))
        return cls(
            row_count=row_count,
            min_value=lo,
            max_value=hi,
            distinct_count=None,
            delta_min=int(delta_min),
            delta_max=int(delta_max),
            exact_bounds=False,
            sum_value=None if sum_value is None else int(sum_value),
        )

    # -- predicate support ----------------------------------------------------

    @property
    def has_bounds(self) -> bool:
        return self.min_value is not None

    def may_contain(self, value) -> bool:
        """Whether the block can contain ``value`` (False prunes the block)."""
        if self.row_count == 0:
            return False
        if not self.has_bounds or not _comparable(self.min_value, value):
            return True
        return self.min_value <= value <= self.max_value

    def overlaps(self, low, high) -> bool:
        """Whether the block's range intersects ``[low, high]``.

        ``None`` on either side means the range is unbounded on that side.
        """
        if self.row_count == 0:
            return False
        if not self.has_bounds:
            return True
        if low is not None:
            if not _comparable(self.max_value, low):
                return True
            if self.max_value < low:
                return False
        if high is not None:
            if not _comparable(self.min_value, high):
                return True
            if self.min_value > high:
                return False
        return True

    def contained_in(self, low, high) -> bool:
        """Whether every row's value provably lies within ``[low, high]``.

        Requires exact bounds: derived (conservative) bounds may over-report
        the range but never under-report it, so they can only veto, not
        affirm.
        """
        if self.row_count == 0 or not self.has_bounds or not self.exact_bounds:
            return False
        if low is not None:
            if not _comparable(self.min_value, low) or self.min_value < low:
                return False
        if high is not None:
            if not _comparable(self.max_value, high) or self.max_value > high:
                return False
        return True

    def prune_candidates(self, values: Sequence) -> tuple:
        """The subset of candidate ``values`` this block could contain.

        Used by the dictionary-domain translation of ``Eq``/``In``
        (``Predicate.evaluate_encoded``): candidates outside ``[min, max]``
        need no dictionary probe, and a leaf whose candidates all fall
        outside the block's range is answered all-false without touching the
        packed codes — the planner only prunes whole predicates, not the
        individual leaves of a compound.
        """
        return tuple(v for v in values if self.may_contain(v))

    def is_constant(self, value) -> bool:
        """Whether every row provably equals ``value``."""
        return (
            self.row_count > 0
            and self.exact_bounds
            and self.has_bounds
            and self.min_value == value == self.max_value
        )

    # -- aggregate support ----------------------------------------------------

    def aggregate_value(self, kind: str):
        """The exact value of an aggregate over *every* row, or ``None``.

        ``kind`` is one of ``"count"``, ``"min"``, ``"max"``, ``"sum"``.
        Used by the query compiler to answer aggregates over blocks the
        planner classified *fully covered* without decoding a value.  Only
        exact statistics can affirm a value: derived zone maps over-report
        the *range*, so conservative bounds never answer ``min``/``max``,
        but ``sum_value`` is only ever recorded when it is exact (including
        the ``sum(reference) + sum(deltas)`` derivation for diff-encoded
        columns), so it may affirm even alongside conservative bounds.
        Unknown kinds and missing statistics return ``None``, which the
        caller treats as "decode and reduce".
        """
        if kind == "count":
            return self.row_count
        if kind == "sum":
            return self.sum_value
        if not self.exact_bounds:
            return None
        if kind == "min":
            return self.min_value
        if kind == "max":
            return self.max_value
        return None

    # -- serialisation --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "row_count": self.row_count,
            "min_value": self.min_value,
            "max_value": self.max_value,
            "distinct_count": self.distinct_count,
            "delta_min": self.delta_min,
            "delta_max": self.delta_max,
            "exact_bounds": self.exact_bounds,
            "sum_value": self.sum_value,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ColumnStatistics":
        return cls(
            row_count=data["row_count"],
            min_value=data["min_value"],
            max_value=data["max_value"],
            distinct_count=data["distinct_count"],
            delta_min=data["delta_min"],
            delta_max=data["delta_max"],
            exact_bounds=data["exact_bounds"],
            # Absent in blocks serialised before the sum statistic existed
            # (format v2 blocks stay readable; they just cannot stat-answer
            # sums).
            sum_value=data.get("sum_value"),
        )


class BlockStatistics:
    """The zone map of one block: per-column :class:`ColumnStatistics`."""

    def __init__(self, columns: Mapping[str, ColumnStatistics]):
        self._columns = dict(columns)

    def column(self, name: str) -> ColumnStatistics | None:
        """Statistics for ``name``, or ``None`` when none were recorded."""
        return self._columns.get(name)

    def _as_mapping(self) -> dict:
        """Every column's parsed statistics (lazy subclasses parse here)."""
        return self._columns

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __len__(self) -> int:
        return len(self._columns)

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self._columns)

    @property
    def size_bytes(self) -> int:
        """Approximate on-disk footprint of the zone map (not charged to the
        block's compressed size; reported separately)."""
        columns = self._as_mapping()
        string_bounds = sum(
            len(s.min_value) + len(s.max_value)
            for s in columns.values()
            if isinstance(s.min_value, str)
        )
        return _BYTES_PER_COLUMN * len(columns) + string_bounds

    def __eq__(self, other) -> bool:
        return isinstance(other, BlockStatistics) and self._as_mapping() == other._as_mapping()

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}=[{s.min_value!r}, {s.max_value!r}]"
            for name, s in self._as_mapping().items()
        )
        return f"{type(self).__name__}({parts})"

    def to_dict(self) -> dict:
        return {name: stats.to_dict() for name, stats in self._as_mapping().items()}

    @classmethod
    def from_dict(cls, data: dict) -> "BlockStatistics":
        return cls({name: ColumnStatistics.from_dict(stats) for name, stats in data.items()})


class LazyBlockStatistics(BlockStatistics):
    """A zone map whose per-column statistics parse on first access.

    The table footer of a wide table carries one serialised
    :class:`ColumnStatistics` dict per (block, column); parsing all of them
    at open time is wasted work for queries that reference a handful of
    columns.  This subclass keeps the raw footer dicts and materialises a
    column's statistics the first time :meth:`column` asks for it — the
    planner therefore only ever parses the zone maps of predicate columns.
    Whole-map operations (equality, ``to_dict``, ``size_bytes``) parse
    everything via :meth:`_as_mapping`.
    """

    def __init__(self, raw: Mapping[str, dict]):
        self._raw = dict(raw)
        self._columns: dict[str, ColumnStatistics] = {}

    def column(self, name: str) -> ColumnStatistics | None:
        stats = self._columns.get(name)
        if stats is None:
            state = self._raw.get(name)
            if state is None:
                return None
            stats = self._columns[name] = ColumnStatistics.from_dict(state)
        return stats

    def _as_mapping(self) -> dict:
        for name in self._raw:
            self.column(name)
        return self._columns

    def __contains__(self, name: str) -> bool:
        return name in self._raw

    def __len__(self) -> int:
        return len(self._raw)

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self._raw)

    @property
    def parsed_column_names(self) -> tuple[str, ...]:
        """Columns whose statistics have been parsed so far (for tests)."""
        return tuple(self._columns)
