"""The ``.corra`` single-file table format: header, block segments, footer.

A table file is the unit the out-of-core layer serves queries from.  Its
layout keeps the paper's block self-containment and adds the one thing a
disk format needs on top: a footer that makes *planning* metadata-only.

```
file    := header segment* footer trailer
header  := "CORRATBL" u32(format_version)
segment := serialize_block(block)          -- self-contained CORRABLK bytes
footer  := object(footer_dict)             -- tagged encoding, see below
trailer := u64(footer_offset) u64(footer_length) u32(format_version) "CORRAEND"
```

The footer dict carries the schema, the block size, the total row count and
one entry per block: byte offset and length of its segment, its row count,
its serialised :class:`~repro.storage.statistics.BlockStatistics` zone map
and (format version 2) a CRC32 checksum of the segment bytes.  A reader
therefore seeks to the fixed-size trailer, reads the footer, and can answer
every planning question — which blocks a predicate can touch, what a
fully-covered block's aggregates are — without fetching a single segment.

Version history:

* **1** — header + segments + footer (schema, offsets, row counts, zone
  maps).
* **2** (current) — adds per-segment CRC32 checksums to the footer block
  entries; verified when a segment is read.  Version-1 files stay readable
  (they simply skip verification), and :class:`TableWriter` can still write
  them for downgrade tests.
"""

from __future__ import annotations

import io
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import BinaryIO, Iterable

from ..errors import SerializationError, ValidationError
from .block import DEFAULT_BLOCK_SIZE, CompressedBlock
from .cache import IOMetrics
from .relation import Relation
from .schema import Schema
from .serialization import (
    _read_exact,
    _read_object,
    _write_object,
    deserialize_block,
    serialize_block,
)
from .statistics import BlockStatistics

__all__ = [
    "FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
    "BlockEntry",
    "TableFooter",
    "TableWriter",
    "TableReader",
    "write_table",
]

_MAGIC_HEAD = b"CORRATBL"
_MAGIC_TAIL = b"CORRAEND"

#: Current format version written by :class:`TableWriter`.
FORMAT_VERSION = 2

#: Versions :class:`TableReader` accepts.
SUPPORTED_VERSIONS = (1, 2)

#: Fixed trailer: footer offset (8) + footer length (8) + version (4) + magic.
_TRAILER_BYTES = 8 + 8 + 4 + len(_MAGIC_TAIL)

_HEADER_BYTES = len(_MAGIC_HEAD) + 4


@dataclass(frozen=True)
class BlockEntry:
    """Footer metadata of one block segment.

    ``statistics`` is the block's zone map re-parsed from the footer — the
    planner reads it without touching the segment bytes.  ``checksum`` is
    the segment's CRC32 (``None`` in version-1 files).
    """

    offset: int
    length: int
    n_rows: int
    statistics: BlockStatistics | None
    checksum: int | None = None

    def to_dict(self) -> dict:
        state = {
            "offset": self.offset,
            "length": self.length,
            "n_rows": self.n_rows,
            "statistics": self.statistics.to_dict() if self.statistics is not None else None,
        }
        if self.checksum is not None:
            state["checksum"] = self.checksum
        return state

    @classmethod
    def from_dict(cls, data: dict) -> "BlockEntry":
        stats = data.get("statistics")
        return cls(
            offset=data["offset"],
            length=data["length"],
            n_rows=data["n_rows"],
            statistics=BlockStatistics.from_dict(stats) if stats is not None else None,
            checksum=data.get("checksum"),
        )


@dataclass(frozen=True)
class TableFooter:
    """Everything a reader needs to plan over a table without block I/O."""

    version: int
    schema: Schema
    block_size: int
    blocks: tuple[BlockEntry, ...]

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def n_rows(self) -> int:
        return sum(entry.n_rows for entry in self.blocks)

    @property
    def data_bytes(self) -> int:
        """Total bytes of the block segments (header/footer excluded)."""
        return sum(entry.length for entry in self.blocks)

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "schema": self.schema.to_dict(),
            "block_size": self.block_size,
            "n_rows": self.n_rows,
            "blocks": [entry.to_dict() for entry in self.blocks],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TableFooter":
        return cls(
            version=data["version"],
            schema=Schema.from_dict(data["schema"]),
            block_size=data["block_size"],
            blocks=tuple(BlockEntry.from_dict(entry) for entry in data["blocks"]),
        )


class TableWriter:
    """Stream compressed blocks into a ``.corra`` file, then seal the footer.

    Blocks are appended one at a time (so a table never needs to be resident
    while being written) and the footer/trailer are written on :meth:`close`.
    The writer enforces the same invariant as :class:`~repro.storage.
    relation.Relation`: every block except the last must hold exactly
    ``block_size`` rows.

    Typical use::

        with TableWriter(path, relation.schema, relation.block_size) as writer:
            for block in relation:
                writer.write_block(block)
        footer = writer.footer
    """

    def __init__(
        self,
        path: "str | os.PathLike[str]",
        schema: Schema,
        block_size: int = DEFAULT_BLOCK_SIZE,
        version: int = FORMAT_VERSION,
    ):
        if version not in SUPPORTED_VERSIONS:
            raise ValidationError(
                f"cannot write format version {version}; supported: {SUPPORTED_VERSIONS}"
            )
        if block_size < 1:
            raise ValidationError("block size must be at least 1")
        self._path = os.fspath(path)
        self._schema = schema
        self._block_size = int(block_size)
        self._version = version
        self._entries: list[BlockEntry] = []
        self._footer: TableFooter | None = None
        self._file: BinaryIO = open(self._path, "wb")
        try:
            self._file.write(_MAGIC_HEAD)
            self._file.write(struct.pack("<I", version))
        except BaseException:
            self._file.close()
            raise
        self._offset = _HEADER_BYTES

    @property
    def version(self) -> int:
        return self._version

    @property
    def n_blocks(self) -> int:
        return len(self._entries)

    @property
    def footer(self) -> TableFooter:
        if self._footer is None:
            raise ValidationError("footer is available after close()")
        return self._footer

    def write_block(self, block: CompressedBlock) -> BlockEntry:
        """Append one block segment and record its footer entry."""
        if self._footer is not None:
            raise ValidationError("writer is closed")
        if self._entries and self._entries[-1].n_rows != self._block_size:
            raise ValidationError(
                "all blocks except the last must contain exactly "
                f"{self._block_size} rows, found one with {self._entries[-1].n_rows}"
            )
        if block.n_rows > self._block_size:
            raise ValidationError(
                f"block has {block.n_rows} rows, exceeding the table's "
                f"block size of {self._block_size}"
            )
        payload = serialize_block(block)
        entry = BlockEntry(
            offset=self._offset,
            length=len(payload),
            n_rows=block.n_rows,
            statistics=block.statistics,
            checksum=zlib.crc32(payload) if self._version >= 2 else None,
        )
        self._file.write(payload)
        self._offset += len(payload)
        self._entries.append(entry)
        return entry

    def close(self) -> TableFooter:
        """Write the footer and trailer, flush, and close the file."""
        if self._footer is not None:
            return self._footer
        footer = TableFooter(
            version=self._version,
            schema=self._schema,
            block_size=self._block_size,
            blocks=tuple(self._entries),
        )
        buffer = io.BytesIO()
        _write_object(buffer, footer.to_dict())
        payload = buffer.getvalue()
        self._file.write(payload)
        self._file.write(struct.pack("<QQI", self._offset, len(payload), self._version))
        self._file.write(_MAGIC_TAIL)
        self._file.close()
        self._footer = footer
        return footer

    def __enter__(self) -> "TableWriter":
        return self

    def __exit__(self, exc_type, *exc_info) -> None:
        if exc_type is None:
            self.close()
        elif self._footer is None:
            self._file.close()


def write_table(
    path: "str | os.PathLike[str]",
    relation: "Relation | Iterable[CompressedBlock]",
    schema: Schema | None = None,
    block_size: int | None = None,
    version: int = FORMAT_VERSION,
) -> TableFooter:
    """Write a whole relation (or block iterable) as one ``.corra`` file."""
    if isinstance(relation, Relation):
        schema = relation.schema if schema is None else schema
        block_size = relation.block_size if block_size is None else block_size
    if schema is None or block_size is None:
        raise ValidationError("writing a block iterable needs schema and block_size")
    with TableWriter(path, schema, block_size, version=version) as writer:
        for block in relation:
            writer.write_block(block)
    return writer.footer


class TableReader:
    """Random access to a ``.corra`` file: footer metadata + block fetches.

    The constructor reads only the fixed-size trailer and the footer; block
    segments are fetched on demand via :meth:`read_block` (through ``mmap``
    when available, plain seek-reads otherwise).  Every segment fetch is
    recorded in :attr:`io` — the counters cache layers and benchmarks use to
    prove what was *not* read.
    """

    def __init__(self, path: "str | os.PathLike[str]", use_mmap: bool = True):
        self._path = os.fspath(path)
        self._io = IOMetrics()
        self._file: BinaryIO = open(self._path, "rb")
        self._mmap = None
        try:
            self._footer = self._read_footer()
            if use_mmap:
                self._mmap = self._try_mmap()
        except BaseException:
            self.close()
            raise
        self._lock = threading.Lock()

    # -- metadata --------------------------------------------------------------

    @property
    def path(self) -> str:
        return self._path

    @property
    def footer(self) -> TableFooter:
        return self._footer

    @property
    def version(self) -> int:
        return self._footer.version

    @property
    def schema(self) -> Schema:
        return self._footer.schema

    @property
    def block_size(self) -> int:
        return self._footer.block_size

    @property
    def n_blocks(self) -> int:
        return self._footer.n_blocks

    @property
    def n_rows(self) -> int:
        return self._footer.n_rows

    @property
    def io(self) -> IOMetrics:
        return self._io

    def block_entry(self, index: int) -> BlockEntry:
        return self._footer.blocks[index]

    def block_statistics(self, index: int) -> BlockStatistics | None:
        """The zone map of one block, straight from the footer (no block I/O)."""
        return self._footer.blocks[index].statistics

    # -- block access ----------------------------------------------------------

    def read_block_bytes(self, index: int) -> bytes:
        """Fetch one segment's raw bytes, recording the read in :attr:`io`."""
        entry = self._footer.blocks[index]
        if self._mmap is not None:
            data = bytes(self._mmap[entry.offset : entry.offset + entry.length])
        else:
            with self._lock:
                self._file.seek(entry.offset)
                data = _read_exact(self._file, entry.length)
        if len(data) != entry.length:
            raise SerializationError(
                f"block {index} segment is truncated "
                f"({len(data)} of {entry.length} bytes)"
            )
        self._io.record_block(entry.length)
        return data

    def read_block(self, index: int) -> CompressedBlock:
        """Fetch and deserialise one block, verifying its checksum (v2+)."""
        entry = self._footer.blocks[index]
        data = self.read_block_bytes(index)
        if entry.checksum is not None and zlib.crc32(data) != entry.checksum:
            raise SerializationError(
                f"block {index} of {self._path!r} failed checksum verification"
            )
        return deserialize_block(data)

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "TableReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals -------------------------------------------------------------

    def _try_mmap(self):
        import mmap

        try:
            return mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            # Empty or unmappable file (some filesystems): seek-reads work.
            return None

    def _read_footer(self) -> TableFooter:
        size = os.fstat(self._file.fileno()).st_size
        if size < _HEADER_BYTES + _TRAILER_BYTES:
            raise SerializationError(f"{self._path!r} is too small to be a Corra table")
        self._file.seek(0)
        if _read_exact(self._file, len(_MAGIC_HEAD)) != _MAGIC_HEAD:
            raise SerializationError(f"{self._path!r} is not a Corra table (bad magic)")
        (head_version,) = struct.unpack("<I", _read_exact(self._file, 4))
        self._file.seek(size - _TRAILER_BYTES)
        trailer = _read_exact(self._file, _TRAILER_BYTES)
        if trailer[-len(_MAGIC_TAIL) :] != _MAGIC_TAIL:
            raise SerializationError(
                f"{self._path!r} has no Corra trailer (truncated or corrupt file)"
            )
        offset, length, tail_version = struct.unpack("<QQI", trailer[: _TRAILER_BYTES - len(_MAGIC_TAIL)])
        if head_version != tail_version:
            raise SerializationError(
                f"{self._path!r} header/trailer version mismatch "
                f"({head_version} vs {tail_version})"
            )
        if head_version not in SUPPORTED_VERSIONS:
            raise SerializationError(
                f"unsupported table format version {head_version}; "
                f"supported: {SUPPORTED_VERSIONS}"
            )
        if offset + length + _TRAILER_BYTES > size:
            raise SerializationError(f"{self._path!r} footer exceeds the file size")
        self._file.seek(offset)
        payload = _read_exact(self._file, length)
        self._io.record_footer(length + _TRAILER_BYTES)
        state = _read_object(io.BytesIO(payload))
        if not isinstance(state, dict):
            raise SerializationError(f"{self._path!r} footer is not a mapping")
        footer = TableFooter.from_dict(state)
        if footer.version != head_version:
            raise SerializationError(
                f"{self._path!r} footer dict version {footer.version} "
                f"contradicts the file version {head_version}"
            )
        return footer
