"""The ``.corra`` single-file table format: header, block segments, footer.

A table file is the unit the out-of-core layer serves queries from.  Its
layout keeps the paper's block self-containment and adds the one thing a
disk format needs on top: a footer that makes *planning* metadata-only.

```
file    := header segment* footer trailer
header  := "CORRATBL" u32(format_version)
segment := serialize_block(block)          -- self-contained CORRABLK bytes
           (v3: the footer additionally indexes each column's sub-segment
            [name + dependency + encoded object bytes] within the segment)
footer  := object(footer_dict)             -- tagged encoding, see below
trailer := u64(footer_offset) u64(footer_length) u32(format_version) "CORRAEND"
```

The footer dict carries the schema, the block size, the total row count and
one entry per block: byte offset and length of its segment, its row count,
its serialised :class:`~repro.storage.statistics.BlockStatistics` zone map
and (format version 2+) a CRC32 checksum of the segment bytes.  A reader
therefore seeks to the fixed-size trailer, reads the footer, and can answer
every planning question — which blocks a predicate can touch, what a
fully-covered block's aggregates are — without fetching a single segment.

From format version 3 the unit of I/O shrinks from the block to the
*(block, column)* sub-segment: each block entry also records one
:class:`ColumnSegment` per column — its byte span inside the block segment,
its own CRC32, and the reference columns a horizontal encoding depends on.
Because the block wire format already lays columns out contiguously, the
segment bytes are unchanged: :meth:`TableReader.read_block` still fetches
and deserialises the whole segment, while :meth:`TableReader.read_column`
fetches just one column's span — a projection touching 2 of 20 columns
reads ~10% of the block's bytes.  The reference metadata lets the disk
layer resolve a column's dependency closure from the footer alone, before
issuing any read.

Version history:

* **1** — header + segments + footer (schema, offsets, row counts, zone
  maps).
* **2** — adds per-segment CRC32 checksums to the footer block entries;
  verified when a segment is read.  Version-1 files stay readable (they
  simply skip verification), and :class:`TableWriter` can still write them
  for downgrade tests.
* **3** (current) — adds per-column sub-segment index entries
  ({offset, length, crc32, references}) to each footer block entry,
  enabling column-granular reads.  Versions 1 and 2 stay readable; they
  simply fall back to whole-block I/O.
"""

from __future__ import annotations

import io
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import BinaryIO, Iterable

from ..errors import SerializationError, ValidationError
from .block import DEFAULT_BLOCK_SIZE, ColumnDependency, CompressedBlock
from .cache import IOMetrics, _tracer
from .relation import Relation
from .schema import Schema
from .serialization import (
    _read_exact,
    _read_object,
    _write_object,
    deserialize_block,
    deserialize_column,
    serialize_block,
    serialize_block_with_layout,
)
from .statistics import BlockStatistics, LazyBlockStatistics

__all__ = [
    "FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
    "ColumnSegment",
    "BlockEntry",
    "TableFooter",
    "TableWriter",
    "TableReader",
    "write_table",
]

_MAGIC_HEAD = b"CORRATBL"
_MAGIC_TAIL = b"CORRAEND"

#: Current format version written by :class:`TableWriter`.
FORMAT_VERSION = 3

#: Versions :class:`TableReader` accepts.
SUPPORTED_VERSIONS = (1, 2, 3)

#: Fixed trailer: footer offset (8) + footer length (8) + version (4) + magic.
_TRAILER_BYTES = 8 + 8 + 4 + len(_MAGIC_TAIL)

_HEADER_BYTES = len(_MAGIC_HEAD) + 4


@dataclass(frozen=True)
class ColumnSegment:
    """Footer metadata of one column's sub-segment within a block segment.

    ``offset`` is relative to the block segment's start; the sub-segment is
    the column's ``name + dependency + encoded object`` bytes, parseable on
    its own.  ``references`` names the columns a horizontal encoding needs
    (empty for vertical columns) and ``kind`` is the dependency kind — both
    duplicated from the block so the disk layer can resolve a column's
    dependency closure from the footer alone, before issuing any read.
    """

    offset: int
    length: int
    checksum: int | None = None
    references: tuple[str, ...] = ()
    kind: str | None = None

    def to_dict(self) -> dict:
        state: dict = {"offset": self.offset, "length": self.length}
        if self.checksum is not None:
            state["checksum"] = self.checksum
        if self.references:
            state["references"] = list(self.references)
            state["kind"] = self.kind
        return state

    @classmethod
    def from_dict(cls, data: dict) -> "ColumnSegment":
        return cls(
            offset=data["offset"],
            length=data["length"],
            checksum=data.get("checksum"),
            references=tuple(data.get("references", ())),
            kind=data.get("kind"),
        )

    @property
    def dependency(self) -> ColumnDependency | None:
        """The column's dependency record, reconstructed from the footer."""
        if not self.references:
            return None
        return ColumnDependency(references=self.references, kind=self.kind or "")


@dataclass(frozen=True)
class BlockEntry:
    """Footer metadata of one block segment.

    ``statistics`` is the block's zone map re-parsed from the footer — the
    planner reads it without touching the segment bytes (lazily per column
    when parsed back from a file).  ``checksum`` is the segment's CRC32
    (``None`` in version-1 files).  ``columns`` maps column names to their
    :class:`ColumnSegment` sub-segment index (``None`` before format v3,
    where the block is the smallest addressable unit).
    """

    offset: int
    length: int
    n_rows: int
    statistics: BlockStatistics | None
    checksum: int | None = None
    columns: "dict[str, ColumnSegment] | None" = None

    def column_segment(self, name: str) -> ColumnSegment | None:
        """The sub-segment index of one column, or ``None`` (pre-v3 entry)."""
        if self.columns is None:
            return None
        return self.columns.get(name)

    def to_dict(self) -> dict:
        state = {
            "offset": self.offset,
            "length": self.length,
            "n_rows": self.n_rows,
            "statistics": self.statistics.to_dict() if self.statistics is not None else None,
        }
        if self.checksum is not None:
            state["checksum"] = self.checksum
        if self.columns is not None:
            state["columns"] = {name: seg.to_dict() for name, seg in self.columns.items()}
        return state

    @classmethod
    def from_dict(cls, data: dict) -> "BlockEntry":
        stats = data.get("statistics")
        columns = data.get("columns")
        return cls(
            offset=data["offset"],
            length=data["length"],
            n_rows=data["n_rows"],
            # Lazy: a wide table's footer carries one statistics dict per
            # (block, column); parse each only when the planner asks.
            statistics=LazyBlockStatistics(stats) if stats is not None else None,
            checksum=data.get("checksum"),
            columns=(
                {name: ColumnSegment.from_dict(seg) for name, seg in columns.items()}
                if columns is not None
                else None
            ),
        )


@dataclass(frozen=True)
class TableFooter:
    """Everything a reader needs to plan over a table without block I/O."""

    version: int
    schema: Schema
    block_size: int
    blocks: tuple[BlockEntry, ...]

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def n_rows(self) -> int:
        return sum(entry.n_rows for entry in self.blocks)

    @property
    def data_bytes(self) -> int:
        """Total bytes of the block segments (header/footer excluded)."""
        return sum(entry.length for entry in self.blocks)

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "schema": self.schema.to_dict(),
            "block_size": self.block_size,
            "n_rows": self.n_rows,
            "blocks": [entry.to_dict() for entry in self.blocks],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TableFooter":
        return cls(
            version=data["version"],
            schema=Schema.from_dict(data["schema"]),
            block_size=data["block_size"],
            blocks=tuple(BlockEntry.from_dict(entry) for entry in data["blocks"]),
        )


class TableWriter:
    """Stream compressed blocks into a ``.corra`` file, then seal the footer.

    Blocks are appended one at a time (so a table never needs to be resident
    while being written) and the footer/trailer are written on :meth:`close`.
    The writer enforces the same invariant as :class:`~repro.storage.
    relation.Relation`: every block except the last must hold exactly
    ``block_size`` rows.

    Typical use::

        with TableWriter(path, relation.schema, relation.block_size) as writer:
            for block in relation:
                writer.write_block(block)
        footer = writer.footer
    """

    def __init__(
        self,
        path: "str | os.PathLike[str]",
        schema: Schema,
        block_size: int = DEFAULT_BLOCK_SIZE,
        version: int = FORMAT_VERSION,
    ):
        if version not in SUPPORTED_VERSIONS:
            raise ValidationError(
                f"cannot write format version {version}; supported: {SUPPORTED_VERSIONS}"
            )
        if block_size < 1:
            raise ValidationError("block size must be at least 1")
        self._path = os.fspath(path)
        self._schema = schema
        self._block_size = int(block_size)
        self._version = version
        self._entries: list[BlockEntry] = []
        self._footer: TableFooter | None = None
        self._file: BinaryIO = open(self._path, "wb")
        try:
            self._file.write(_MAGIC_HEAD)
            self._file.write(struct.pack("<I", version))
        except BaseException:
            self._file.close()
            raise
        self._offset = _HEADER_BYTES

    @property
    def version(self) -> int:
        return self._version

    @property
    def n_blocks(self) -> int:
        return len(self._entries)

    @property
    def footer(self) -> TableFooter:
        if self._footer is None:
            raise ValidationError("footer is available after close()")
        return self._footer

    def write_block(self, block: CompressedBlock) -> BlockEntry:
        """Append one block segment and record its footer entry."""
        if self._footer is not None:
            raise ValidationError("writer is closed")
        if self._entries and self._entries[-1].n_rows != self._block_size:
            raise ValidationError(
                "all blocks except the last must contain exactly "
                f"{self._block_size} rows, found one with {self._entries[-1].n_rows}"
            )
        if block.n_rows > self._block_size:
            raise ValidationError(
                f"block has {block.n_rows} rows, exceeding the table's "
                f"block size of {self._block_size}"
            )
        columns: dict[str, ColumnSegment] | None = None
        if self._version >= 3:
            payload, spans = serialize_block_with_layout(block)
            columns = {}
            for name, (offset, length) in spans.items():
                dep = block.dependencies.get(name)
                columns[name] = ColumnSegment(
                    offset=offset,
                    length=length,
                    checksum=zlib.crc32(payload[offset : offset + length]),
                    references=dep.references if dep is not None else (),
                    kind=dep.kind if dep is not None else None,
                )
        else:
            payload = serialize_block(block)
        entry = BlockEntry(
            offset=self._offset,
            length=len(payload),
            n_rows=block.n_rows,
            statistics=block.statistics,
            checksum=zlib.crc32(payload) if self._version >= 2 else None,
            columns=columns,
        )
        self._file.write(payload)
        self._offset += len(payload)
        self._entries.append(entry)
        return entry

    def close(self) -> TableFooter:
        """Write the footer and trailer, flush, and close the file."""
        if self._footer is not None:
            return self._footer
        footer = TableFooter(
            version=self._version,
            schema=self._schema,
            block_size=self._block_size,
            blocks=tuple(self._entries),
        )
        buffer = io.BytesIO()
        _write_object(buffer, footer.to_dict())
        payload = buffer.getvalue()
        self._file.write(payload)
        self._file.write(struct.pack("<QQI", self._offset, len(payload), self._version))
        self._file.write(_MAGIC_TAIL)
        self._file.close()
        self._footer = footer
        return footer

    def __enter__(self) -> "TableWriter":
        return self

    def __exit__(self, exc_type, *exc_info) -> None:
        if exc_type is None:
            self.close()
        elif self._footer is None:
            self._file.close()


def write_table(
    path: "str | os.PathLike[str]",
    relation: "Relation | Iterable[CompressedBlock]",
    schema: Schema | None = None,
    block_size: int | None = None,
    version: int = FORMAT_VERSION,
) -> TableFooter:
    """Write a whole relation (or block iterable) as one ``.corra`` file."""
    if isinstance(relation, Relation):
        schema = relation.schema if schema is None else schema
        block_size = relation.block_size if block_size is None else block_size
    if schema is None or block_size is None:
        raise ValidationError("writing a block iterable needs schema and block_size")
    with TableWriter(path, schema, block_size, version=version) as writer:
        for block in relation:
            writer.write_block(block)
    return writer.footer


class TableReader:
    """Random access to a ``.corra`` file: footer metadata + block fetches.

    The constructor reads only the fixed-size trailer and the footer; block
    segments are fetched on demand via :meth:`read_block` (through ``mmap``
    when available, plain seek-reads otherwise).  Every segment fetch is
    recorded in :attr:`io` — the counters cache layers and benchmarks use to
    prove what was *not* read.
    """

    def __init__(self, path: "str | os.PathLike[str]", use_mmap: bool = True):
        self._path = os.fspath(path)
        self._io = IOMetrics()
        self._file: BinaryIO = open(self._path, "rb")
        self._mmap = None
        try:
            self._footer = self._read_footer()
            if use_mmap:
                self._mmap = self._try_mmap()
        except BaseException:
            self.close()
            raise
        self._lock = threading.Lock()
        #: Distinct columns fetched per block, for the columns-skipped /
        #: bytes-available accounting (guarded by its own lock so the mmap
        #: fast path never contends with seek-reads); cleared whenever the
        #: metrics epoch changes (``io.reset()``).
        self._column_touched: dict[int, set[str]] = {}
        self._touched_epoch = self._io.epoch
        self._touched_lock = threading.Lock()

    # -- metadata --------------------------------------------------------------

    @property
    def path(self) -> str:
        return self._path

    @property
    def footer(self) -> TableFooter:
        return self._footer

    @property
    def version(self) -> int:
        return self._footer.version

    @property
    def schema(self) -> Schema:
        return self._footer.schema

    @property
    def block_size(self) -> int:
        return self._footer.block_size

    @property
    def n_blocks(self) -> int:
        return self._footer.n_blocks

    @property
    def n_rows(self) -> int:
        return self._footer.n_rows

    @property
    def io(self) -> IOMetrics:
        return self._io

    def block_entry(self, index: int) -> BlockEntry:
        return self._footer.blocks[index]

    def block_statistics(self, index: int) -> BlockStatistics | None:
        """The zone map of one block, straight from the footer (no block I/O)."""
        return self._footer.blocks[index].statistics

    @property
    def column_granular(self) -> bool:
        """Whether block entries index per-column sub-segments (format v3)."""
        return self._footer.version >= 3

    def column_segment(self, index: int, name: str) -> ColumnSegment:
        """The sub-segment index of one (block, column), or raise (pre-v3)."""
        segment = self._footer.blocks[index].column_segment(name)
        if segment is None:
            raise ValidationError(
                f"block {index} of {self._path!r} has no column segment for "
                f"{name!r} (format v{self._footer.version} indexes "
                f"{'other columns' if self.column_granular else 'whole blocks only'})"
            )
        return segment

    # -- block access ----------------------------------------------------------

    def _read_range(self, offset: int, length: int, what: str) -> bytes:
        tracer = _tracer()
        with tracer.span("io") as span:
            if self._mmap is not None:
                data = bytes(self._mmap[offset : offset + length])
            else:
                with self._lock:
                    # The lock exists precisely to make seek+read atomic over the
                    # one shared file handle; the I/O must happen under it.
                    self._file.seek(offset)  # corra: ignore[lock-discipline] -- atomic seek+read
                    data = _read_exact(self._file, length)  # corra: ignore[lock-discipline]
            if len(data) != length:
                raise SerializationError(
                    f"{what} is truncated ({len(data)} of {length} bytes)"
                )
            if tracer.enabled:
                span.annotate(bytes=length, target=what)
            return data

    def read_block_bytes(self, index: int) -> bytes:
        """Fetch one segment's raw bytes, recording the read in :attr:`io`."""
        entry = self._footer.blocks[index]
        data = self._read_range(entry.offset, entry.length, f"block {index} segment")
        self._io.record_block(entry.length)
        return data

    def read_block(self, index: int) -> CompressedBlock:
        """Fetch and deserialise one block, verifying its checksum (v2+)."""
        entry = self._footer.blocks[index]
        data = self.read_block_bytes(index)
        if entry.checksum is not None and zlib.crc32(data) != entry.checksum:
            raise SerializationError(
                f"block {index} of {self._path!r} failed checksum verification"
            )
        return deserialize_block(data)

    # -- column access (format v3) ---------------------------------------------

    def _account_column(self, index: int, entry: BlockEntry, name: str, n_bytes: int) -> None:
        """Record one column-segment fetch in :attr:`io` (dedup per block)."""
        with self._touched_lock:
            if self._touched_epoch != self._io.epoch:
                # io.reset() restarted the counters; restart the per-block
                # dedup with them so skipped/available stay consistent.
                self._column_touched.clear()
                self._touched_epoch = self._io.epoch
            touched = self._column_touched.setdefault(index, set())
            first_of_block = not touched
            new_column = name not in touched
            touched.add(name)
        if first_of_block:
            self._io.record_column_block(entry.length, len(entry.columns or ()))
        self._io.record_column(n_bytes, new_column=new_column)

    def read_column_bytes(self, index: int, name: str) -> bytes:
        """Fetch one (block, column) sub-segment's raw bytes.

        Only the column's span is read from the file; :attr:`io` records the
        column-granular accounting (bytes read, segments skipped so far, the
        block-granular bytes the read avoided).
        """
        entry = self._footer.blocks[index]
        segment = self.column_segment(index, name)
        data = self._read_range(
            entry.offset + segment.offset,
            segment.length,
            f"column {name!r} sub-segment of block {index}",
        )
        self._account_column(index, entry, name, segment.length)
        return data

    def read_columns_bytes(self, index: int, names: "Iterable[str]") -> dict[str, bytes]:
        """Fetch several (block, column) sub-segments, coalescing adjacent spans.

        The block wire format lays columns out contiguously, so segments of
        neighbouring columns are byte-adjacent; each maximal run of adjacent
        requested segments is fetched with *one* ranged read and sliced back
        into per-column bytes.  The per-column accounting in :attr:`io` is
        identical to looping over :meth:`read_column_bytes` — only
        ``reads_coalesced`` differs, counting the reads the merge saved.
        """
        segments = {name: self.column_segment(index, name) for name in names}
        if not segments:
            return {}
        entry = self._footer.blocks[index]
        ordered = sorted(segments.items(), key=lambda pair: pair[1].offset)
        runs: list[list[tuple[str, ColumnSegment]]] = [[ordered[0]]]
        for pair in ordered[1:]:
            tail = runs[-1][-1][1]
            if tail.offset + tail.length == pair[1].offset:
                runs[-1].append(pair)
            else:
                runs.append([pair])
        out: dict[str, bytes] = {}
        for run in runs:
            start = run[0][1].offset
            length = run[-1][1].offset + run[-1][1].length - start
            data = self._read_range(
                entry.offset + start,
                length,
                f"column sub-segments {[name for name, _ in run]} of block {index}",
            )
            for name, segment in run:
                out[name] = data[segment.offset - start : segment.offset - start + segment.length]
                self._account_column(index, entry, name, segment.length)
            if len(run) > 1:
                self._io.record_coalesced(len(run) - 1)
        return out

    def read_column(self, index: int, name: str):
        """Fetch and deserialise one column, verifying its checksum.

        Returns ``(encoded_column, dependency)``; ``dependency`` is the
        column's :class:`~repro.storage.block.ColumnDependency` or ``None``.
        """
        segment = self.column_segment(index, name)
        data = self.read_column_bytes(index, name)
        if segment.checksum is not None and zlib.crc32(data) != segment.checksum:
            raise SerializationError(
                f"column {name!r} of block {index} of {self._path!r} "
                "failed checksum verification"
            )
        stored_name, dependency, encoded = deserialize_column(data)
        if stored_name != name:
            raise SerializationError(
                f"column sub-segment of block {index} of {self._path!r} "
                f"holds {stored_name!r}, footer says {name!r}"
            )
        return encoded, dependency

    def read_columns(self, index: int, names: "Iterable[str]") -> dict:
        """Fetch and deserialise several columns with coalesced ranged reads.

        Returns ``{name: (encoded_column, dependency)}``; per-column
        checksum verification and name cross-checks match
        :meth:`read_column` exactly — only the I/O pattern differs (one
        ranged read per run of byte-adjacent sub-segments).
        """
        raw = self.read_columns_bytes(index, names)
        out = {}
        for name, data in raw.items():
            segment = self.column_segment(index, name)
            if segment.checksum is not None and zlib.crc32(data) != segment.checksum:
                raise SerializationError(
                    f"column {name!r} of block {index} of {self._path!r} "
                    "failed checksum verification"
                )
            stored_name, dependency, encoded = deserialize_column(data)
            if stored_name != name:
                raise SerializationError(
                    f"column sub-segment of block {index} of {self._path!r} "
                    f"holds {stored_name!r}, footer says {name!r}"
                )
            out[name] = (encoded, dependency)
        return out

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "TableReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals -------------------------------------------------------------

    def _try_mmap(self):
        import mmap

        try:
            return mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            # Empty or unmappable file (some filesystems): seek-reads work.
            return None

    def _read_footer(self) -> TableFooter:
        size = os.fstat(self._file.fileno()).st_size
        if size < _HEADER_BYTES + _TRAILER_BYTES:
            raise SerializationError(f"{self._path!r} is too small to be a Corra table")
        self._file.seek(0)
        if _read_exact(self._file, len(_MAGIC_HEAD)) != _MAGIC_HEAD:
            raise SerializationError(f"{self._path!r} is not a Corra table (bad magic)")
        (head_version,) = struct.unpack("<I", _read_exact(self._file, 4))
        self._file.seek(size - _TRAILER_BYTES)
        trailer = _read_exact(self._file, _TRAILER_BYTES)
        if trailer[-len(_MAGIC_TAIL) :] != _MAGIC_TAIL:
            raise SerializationError(
                f"{self._path!r} has no Corra trailer (truncated or corrupt file)"
            )
        offset, length, tail_version = struct.unpack(
            "<QQI", trailer[: _TRAILER_BYTES - len(_MAGIC_TAIL)]
        )
        if head_version != tail_version:
            raise SerializationError(
                f"{self._path!r} header/trailer version mismatch "
                f"({head_version} vs {tail_version})"
            )
        if head_version not in SUPPORTED_VERSIONS:
            raise SerializationError(
                f"unsupported table format version {head_version}; "
                f"supported: {SUPPORTED_VERSIONS}"
            )
        if offset + length + _TRAILER_BYTES > size:
            raise SerializationError(f"{self._path!r} footer exceeds the file size")
        self._file.seek(offset)
        payload = _read_exact(self._file, length)
        self._io.record_footer(length + _TRAILER_BYTES)
        state = _read_object(io.BytesIO(payload))
        if not isinstance(state, dict):
            raise SerializationError(f"{self._path!r} footer is not a mapping")
        footer = TableFooter.from_dict(state)
        if footer.version != head_version:
            raise SerializationError(
                f"{self._path!r} footer dict version {footer.version} "
                f"contradicts the file version {head_version}"
            )
        return footer
