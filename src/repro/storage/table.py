"""In-memory tables: named, typed columns of equal length.

A :class:`Table` is the uncompressed input to the compression pipeline and
the output of query materialisation.  Integer-like columns are ``int64``
NumPy arrays; string columns are Python lists.  Tables can be sliced into
row ranges, which is how :class:`repro.storage.relation.Relation` cuts them
into 1 M-tuple data blocks.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from ..dtypes import DataType
from ..errors import SchemaError, UnknownColumnError, ValidationError
from .schema import ColumnSpec, Schema

__all__ = ["Table"]


class Table:
    """A schema plus one value container per column."""

    def __init__(self, schema: Schema, columns: Mapping[str, Sequence]):
        self._schema = schema
        self._columns: dict[str, np.ndarray | list] = {}
        lengths = set()
        for spec in schema:
            if spec.name not in columns:
                raise SchemaError(f"missing data for column {spec.name!r}")
            values = columns[spec.name]
            if spec.dtype.is_string:
                data: np.ndarray | list = list(values)
            else:
                arr = np.asarray(values)
                if arr.dtype.kind not in "iu":
                    raise ValidationError(
                        f"column {spec.name!r} of type {spec.dtype.name} expects "
                        f"integers, got dtype {arr.dtype}"
                    )
                data = arr.astype(np.int64, copy=False)
            self._columns[spec.name] = data
            lengths.add(len(data))
        extra = set(columns) - set(schema.names)
        if extra:
            raise SchemaError(f"data provided for columns not in schema: {sorted(extra)}")
        if len(lengths) > 1:
            raise SchemaError(f"columns have differing lengths: {sorted(lengths)}")
        self._n_rows = lengths.pop() if lengths else 0

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_columns(cls, pairs: Iterable[tuple[str, DataType, Sequence]]) -> "Table":
        """Build a table from ``(name, dtype, values)`` triples."""
        pairs = list(pairs)
        schema = Schema.from_pairs([(name, dtype) for name, dtype, _ in pairs])
        return cls(schema, {name: values for name, _, values in pairs})

    # -- basic accessors ------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def column_names(self) -> tuple[str, ...]:
        return self._schema.names

    def __len__(self) -> int:
        return self._n_rows

    def __contains__(self, name: str) -> bool:
        return name in self._schema

    def column(self, name: str) -> np.ndarray | list:
        """Raw values of the named column."""
        if name not in self._columns:
            raise UnknownColumnError(name, self._schema.names)
        return self._columns[name]

    def dtype(self, name: str) -> DataType:
        return self._schema.dtype(name)

    def uncompressed_size(self, name: str | None = None) -> int:
        """Uncompressed byte size of one column, or of the whole table."""
        if name is not None:
            spec = self._schema.column(name)
            values = self._columns[name]
            if spec.dtype.is_string:
                return 8 * len(values) + sum(len(s.encode("utf-8")) for s in values)
            return spec.dtype.uncompressed_size(len(values))
        return sum(self.uncompressed_size(n) for n in self._schema.names)

    # -- manipulation ---------------------------------------------------------

    def slice(self, start: int, stop: int) -> "Table":
        """Return rows ``[start, stop)`` as a new table (copy)."""
        if start < 0 or stop < start or stop > self._n_rows:
            raise ValidationError(
                f"invalid slice [{start}, {stop}) for table of {self._n_rows} rows"
            )
        data = {}
        for name, values in self._columns.items():
            if isinstance(values, list):
                data[name] = values[start:stop]
            else:
                data[name] = values[start:stop].copy()
        return Table(self._schema, data)

    def select(self, names: Iterable[str]) -> "Table":
        """Project onto a subset of columns."""
        names = list(names)
        schema = self._schema.select(names)
        return Table(schema, {n: self._columns[n] for n in names})

    def with_column(self, name: str, dtype: DataType, values: Sequence) -> "Table":
        """Return a new table with one extra column appended."""
        schema = self._schema.with_column(ColumnSpec(name, dtype))
        data = dict(self._columns)
        data[name] = values
        return Table(schema, data)

    def head(self, n: int = 5) -> "Table":
        """First ``n`` rows (useful in examples and doctests)."""
        return self.slice(0, min(n, self._n_rows))

    def equals(self, other: "Table") -> bool:
        """Deep equality on schema and values (used by round-trip tests)."""
        if self._schema != other._schema or self._n_rows != other._n_rows:
            return False
        for name in self._schema.names:
            a, b = self._columns[name], other._columns[name]
            if isinstance(a, list):
                if list(a) != list(b):
                    return False
            else:
                if not np.array_equal(a, np.asarray(b)):
                    return False
        return True

    def __repr__(self) -> str:
        cols = ", ".join(f"{spec.name}:{spec.dtype.name}" for spec in self._schema)
        return f"Table({self._n_rows} rows; {cols})"
