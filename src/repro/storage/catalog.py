"""A small on-disk catalog: table names mapped to ``.corra`` files.

The catalog is deliberately simple — one directory, one file per table,
the table name being the file stem.  That is enough for the CLI (and any
embedding application) to address tables by name instead of path, and it
leaves the door open for richer catalogs (manifest files, versioned tables,
shards) without committing to a metadata store today.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

from ..errors import ValidationError
from .cache import DEFAULT_CACHE_BYTES, BlockCache
from .disk import DEFAULT_PREFETCH_WORKERS, DiskRelation
from .format import FORMAT_VERSION, TableFooter, write_table
from .relation import Relation

__all__ = ["Catalog", "TABLE_SUFFIX"]

#: File suffix of catalogued tables.
TABLE_SUFFIX = ".corra"

#: Table names: path-safe, no separators, no hidden files.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class Catalog:
    """Name -> ``.corra`` file mapping rooted at one directory.

    The directory is created on first use.  An optional shared
    :class:`BlockCache` bounds the combined resident bytes of every table
    opened through the catalog.
    """

    def __init__(
        self,
        root: "str | os.PathLike[str]",
        cache: BlockCache | None = None,
        cache_bytes: int | None = DEFAULT_CACHE_BYTES,
    ):
        # The directory is only created by save() — read paths must stay
        # side-effect-free (a mistyped --catalog should not litter the disk).
        self._root = Path(root)
        self._cache = cache if cache is not None else BlockCache(cache_bytes)

    @property
    def root(self) -> Path:
        return self._root

    @property
    def cache(self) -> BlockCache:
        """The block cache shared by every table opened through this catalog."""
        return self._cache

    # -- name handling ---------------------------------------------------------

    @staticmethod
    def _validate_name(name: str) -> str:
        if not _NAME_PATTERN.match(name or ""):
            raise ValidationError(
                f"invalid table name {name!r}: use letters, digits, '.', '_' "
                "or '-', starting with a letter or digit"
            )
        return name

    def path_of(self, name: str) -> Path:
        """The file a table of this name lives in (whether or not it exists)."""
        return self._root / (self._validate_name(name) + TABLE_SUFFIX)

    def __contains__(self, name: str) -> bool:
        try:
            return self.path_of(name).is_file()
        except ValidationError:
            return False

    def tables(self) -> tuple[str, ...]:
        """Names of the catalogued tables, sorted."""
        return tuple(
            sorted(
                path.name[: -len(TABLE_SUFFIX)]
                for path in self._root.glob(f"*{TABLE_SUFFIX}")
                if path.is_file()
            )
        )

    # -- table lifecycle -------------------------------------------------------

    def save(
        self,
        name: str,
        relation: Relation,
        overwrite: bool = False,
        version: int = FORMAT_VERSION,
    ) -> TableFooter:
        """Write a relation into the catalog under ``name``."""
        path = self.path_of(name)
        if path.exists() and not overwrite:
            raise ValidationError(
                f"table {name!r} already exists in {self._root} "
                "(pass overwrite=True to replace it)"
            )
        self._root.mkdir(parents=True, exist_ok=True)
        return write_table(path, relation, version=version)

    def open(
        self,
        name: str,
        use_mmap: bool = True,
        prefetch_workers: int = DEFAULT_PREFETCH_WORKERS,
        prefetch_pool=None,
    ) -> DiskRelation:
        """Open a catalogued table as a :class:`DiskRelation`.

        ``prefetch_pool`` forwards an externally-owned read-ahead pool (a
        shared engine's) so every table opened through the catalog shares
        its threads.
        """
        path = self.path_of(name)
        if not path.is_file():
            if not self._root.is_dir():
                raise ValidationError(f"catalog directory {self._root} does not exist")
            available = ", ".join(self.tables()) or "(none)"
            raise ValidationError(
                f"no table named {name!r} in {self._root}; available: {available}"
            )
        return DiskRelation(
            path,
            cache=self._cache,
            use_mmap=use_mmap,
            prefetch_workers=prefetch_workers,
            prefetch_pool=prefetch_pool,
        )

    def remove(self, name: str) -> None:
        """Delete a catalogued table's file."""
        path = self.path_of(name)
        if not path.is_file():
            raise ValidationError(f"no table named {name!r} in {self._root}")
        path.unlink()

    def __repr__(self) -> str:
        return f"Catalog(root={str(self._root)!r}, tables={len(self.tables())})"
