"""Columnar storage layer: schemas, tables, data blocks, relations, serialisation."""

from .block import DEFAULT_BLOCK_SIZE, ColumnDependency, CompressedBlock
from .relation import Relation, split_into_blocks
from .schema import ColumnSpec, Schema
from .serialization import (
    BlockSerializer,
    deserialize_block,
    register_column_class,
    serialize_block,
)
from .statistics import BlockStatistics, ColumnStatistics
from .table import Table

__all__ = [
    "ColumnSpec",
    "Schema",
    "Table",
    "CompressedBlock",
    "ColumnDependency",
    "BlockStatistics",
    "ColumnStatistics",
    "DEFAULT_BLOCK_SIZE",
    "Relation",
    "split_into_blocks",
    "BlockSerializer",
    "serialize_block",
    "deserialize_block",
    "register_column_class",
]
