"""Columnar storage layer: schemas, tables, blocks, relations, and disk tables.

In-memory path: a :class:`Table` is split into self-contained
:class:`CompressedBlock` objects (zone maps attached) that form a
:class:`Relation`, the unit the query engine executes over.

Out-of-core path: a relation persists as a single ``.corra`` file and is
served back lazily through a byte-budgeted block cache.  The file layout
(see :mod:`repro.storage.format`):

```
+--------------------------------------------------------------------+
| header   "CORRATBL" | u32 format version                           |
+--------------------------------------------------------------------+
| block segment 0   -- serialize_block() bytes, self-contained       |
| block segment 1                                                    |
| ...                                                                |
| block segment N-1                                                  |
+--------------------------------------------------------------------+
| footer   schema, block_size, n_rows,                               |
|          per block: {offset, length, n_rows, zone map, crc32 (v2)} |
+--------------------------------------------------------------------+
| trailer  u64 footer offset | u64 footer length | u32 version       |
|          "CORRAEND"                                                |
+--------------------------------------------------------------------+
```

A reader seeks to the fixed-size trailer and loads the footer; from then on
*planning is metadata-only* — :class:`DiskRelation` hands the query layer
footer-backed block proxies whose row counts and zone maps need no block
I/O, and only the blocks that survive pruning are fetched (through the
single-flight LRU :class:`BlockCache`, with :class:`IOMetrics` recording
exactly what was read).  :class:`Catalog` maps table names to ``.corra``
files in a directory.
"""

from .block import DEFAULT_BLOCK_SIZE, ColumnDependency, CompressedBlock
from .cache import DEFAULT_CACHE_BYTES, BlockCache, CacheStats, IOMetrics
from .catalog import Catalog
from .disk import DiskRelation, LazyBlock, open_table
from .format import (
    FORMAT_VERSION,
    BlockEntry,
    TableFooter,
    TableReader,
    TableWriter,
    write_table,
)
from .relation import Relation, split_into_blocks
from .schema import ColumnSpec, Schema
from .serialization import (
    BlockSerializer,
    deserialize_block,
    register_column_class,
    serialize_block,
)
from .statistics import BlockStatistics, ColumnStatistics
from .table import Table

__all__ = [
    "ColumnSpec",
    "Schema",
    "Table",
    "CompressedBlock",
    "ColumnDependency",
    "BlockStatistics",
    "ColumnStatistics",
    "DEFAULT_BLOCK_SIZE",
    "Relation",
    "split_into_blocks",
    "BlockSerializer",
    "serialize_block",
    "deserialize_block",
    "register_column_class",
    "BlockCache",
    "CacheStats",
    "IOMetrics",
    "DEFAULT_CACHE_BYTES",
    "FORMAT_VERSION",
    "BlockEntry",
    "TableFooter",
    "TableWriter",
    "TableReader",
    "write_table",
    "DiskRelation",
    "LazyBlock",
    "open_table",
    "Catalog",
]
