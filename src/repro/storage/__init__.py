"""Columnar storage layer: schemas, tables, blocks, relations, and disk tables.

In-memory path: a :class:`Table` is split into self-contained
:class:`CompressedBlock` objects (zone maps attached) that form a
:class:`Relation`, the unit the query engine executes over.

Out-of-core path: a relation persists as a single ``.corra`` file and is
served back lazily through a byte-budgeted block cache.  The file layout
(see :mod:`repro.storage.format`):

```
+----------------------------------------------------------------------+
| header   "CORRATBL" | u32 format version                             |
+----------------------------------------------------------------------+
| block segment 0   -- serialize_block() bytes, self-contained         |
|   +---------------+----------+----------+-----+----------+           |
|   | block prelude | column 0 | column 1 | ... | column C |  (v3:     |
|   +---------------+----------+----------+-----+----------+   footer- |
|    each column sub-segment = name + dependency + encoded     indexed |
|    object bytes, independently addressable and checksummed)          |
| block segment 1                                                      |
| ...                                                                  |
| block segment N-1                                                    |
+----------------------------------------------------------------------+
| footer   schema, block_size, n_rows, per block:                      |
|            {offset, length, n_rows, zone map, crc32 (v2+),           |
|             per column (v3): {offset, length, crc32, references}}    |
+----------------------------------------------------------------------+
| trailer  u64 footer offset | u64 footer length | u32 version         |
|          "CORRAEND"                                                  |
+----------------------------------------------------------------------+
```

A reader seeks to the fixed-size trailer and loads the footer (zone maps
parse lazily, per column, on first planner access); from then on *planning
is metadata-only* — :class:`DiskRelation` hands the query layer
footer-backed block proxies whose row counts, zone maps and (v3) column
dependencies need no block I/O.  Only the blocks that survive pruning are
fetched, and on a format-v3 table only the *columns the query references*
(plus their dependency closure, resolved from the footer) move — each
``(block, column)`` sub-segment cached independently by the single-flight
LRU :class:`BlockCache`, with :class:`IOMetrics` recording exactly what was
read, skipped, and prefetched by the relation's read-ahead pool.
:class:`Catalog` maps table names to ``.corra`` files in a directory.
"""

from .block import DEFAULT_BLOCK_SIZE, ColumnDependency, CompressedBlock
from .cache import DEFAULT_CACHE_BYTES, BlockCache, CacheStats, IOMetrics, TenantOccupancy
from .catalog import Catalog
from .disk import DEFAULT_PREFETCH_WORKERS, DiskRelation, LazyBlock, open_table
from .format import (
    FORMAT_VERSION,
    BlockEntry,
    ColumnSegment,
    TableFooter,
    TableReader,
    TableWriter,
    write_table,
)
from .relation import Relation, split_into_blocks
from .schema import ColumnSpec, Schema
from .serialization import (
    BlockSerializer,
    deserialize_block,
    deserialize_column,
    register_column_class,
    serialize_block,
    serialize_block_with_layout,
)
from .statistics import BlockStatistics, ColumnStatistics, LazyBlockStatistics
from .table import Table

__all__ = [
    "ColumnSpec",
    "Schema",
    "Table",
    "CompressedBlock",
    "ColumnDependency",
    "BlockStatistics",
    "ColumnStatistics",
    "LazyBlockStatistics",
    "DEFAULT_BLOCK_SIZE",
    "Relation",
    "split_into_blocks",
    "BlockSerializer",
    "serialize_block",
    "serialize_block_with_layout",
    "deserialize_block",
    "deserialize_column",
    "register_column_class",
    "BlockCache",
    "CacheStats",
    "IOMetrics",
    "TenantOccupancy",
    "DEFAULT_CACHE_BYTES",
    "DEFAULT_PREFETCH_WORKERS",
    "FORMAT_VERSION",
    "BlockEntry",
    "ColumnSegment",
    "TableFooter",
    "TableWriter",
    "TableReader",
    "write_table",
    "DiskRelation",
    "LazyBlock",
    "open_table",
    "Catalog",
]
