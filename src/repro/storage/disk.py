"""Disk-resident relations: lazy, cache-governed views over ``.corra`` files.

:class:`DiskRelation` satisfies the same protocol as the in-memory
:class:`~repro.storage.relation.Relation` — it *is* one, holding
:class:`LazyBlock` proxies instead of materialised blocks — so the whole
query stack (``ScanPlanner``, ``QueryCompiler``, ``ParallelEngine``, the
fluent ``Relation.query()`` chain) runs over it unchanged.  The difference
is *when* (and since format v3, *how much of*) a block moves:

* **planning is metadata-only** — a proxy answers ``n_rows``,
  ``statistics``, ``column_statistics`` and (v3) dependency questions
  straight from the table footer, so the planner prunes and stat-answers
  blocks without a single segment read;
* **data access faults segments in at column granularity** — on a format-v3
  table, :meth:`LazyBlock.load_columns` resolves the requested columns'
  dependency closure from footer metadata and fetches only those columns'
  sub-segments through the relation's byte-budgeted
  :class:`~repro.storage.cache.BlockCache` (keyed per *(relation, block,
  column)*, single-flight); byte-adjacent sub-segments of not-yet-cached
  columns are merged into one ranged read
  (``IOMetrics.reads_coalesced`` counts the seeks saved);
  :meth:`LazyBlock.load` remains the whole-block fallback, and the only
  path for v1/v2 files;
* **read-ahead hides cold latency** — :meth:`DiskRelation.
  prefetch_block_columns` schedules the next surviving block's required
  columns on a small bounded pool while the current block's kernel runs;
  the single-flight cache guarantees a demand fetch and its prefetch never
  duplicate I/O, and :class:`~repro.storage.cache.IOMetrics` counts the
  demand fetches the pool saved (``prefetch_hits``).

A table larger than the cache budget is therefore queryable end-to-end with
results bit-identical to the in-memory relation, pruned blocks provably
contribute zero bytes read, and a selective projection over a wide v3 table
reads only the referenced columns' bytes (``IOMetrics.column_bytes_read``
vs ``column_block_bytes``).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

import numpy as np

from ..errors import UnknownColumnError
from .block import ColumnDependency, CompressedBlock
from .cache import (
    DEFAULT_CACHE_BYTES,
    BlockCache,
    CacheStats,
    IOMetrics,
    TenantOccupancy,
    _tracer,
)
from .format import TableFooter, TableReader
from .relation import Relation
from .statistics import BlockStatistics, ColumnStatistics

__all__ = ["DiskRelation", "LazyBlock", "open_table", "DEFAULT_PREFETCH_WORKERS"]

#: Read-ahead pool size for a private :class:`DiskRelation`; 0 disables
#: prefetching entirely (every fetch is demand-driven).
DEFAULT_PREFETCH_WORKERS = 2

#: Prefetch submissions allowed in flight before further hints are dropped —
#: read-ahead must never queue unboundedly ahead of the kernels consuming it.
_PREFETCH_PENDING_LIMIT = 4


class LazyBlock:
    """A footer-backed stand-in for one :class:`CompressedBlock`.

    Metadata reads (``n_rows``, ``statistics``, ``column_statistics``,
    ``schema``, and — on v3 tables — ``dependency``/``is_horizontal``) are
    answered from the footer entry.  Data access faults segments in through
    the owning relation's cache: column-granular on v3 tables
    (:meth:`load_columns`, and the per-column accessors ``column``/
    ``decode_column``/``gather_column``/``code_space_column``), whole-block
    otherwise (:meth:`load`).
    """

    __slots__ = ("_relation", "_index", "_entry")

    def __init__(self, relation: "DiskRelation", index: int, entry) -> None:
        self._relation = relation
        self._index = index
        self._entry = entry

    # -- footer-answered metadata (no I/O) -------------------------------------

    @property
    def index(self) -> int:
        return self._index

    @property
    def n_rows(self) -> int:
        return self._entry.n_rows

    @property
    def statistics(self) -> BlockStatistics | None:
        return self._entry.statistics

    @property
    def schema(self):
        return self._relation.schema

    @property
    def segment_bytes(self) -> int:
        """On-disk size of the block's segment (footer metadata)."""
        return self._entry.length

    @property
    def is_loaded(self) -> bool:
        """Whether the whole block is currently resident in the cache."""
        return self._relation.is_block_cached(self._index)

    def column_statistics(self, name: str) -> ColumnStatistics | None:
        """Zone-map statistics for ``name`` from the footer (no block I/O)."""
        if name not in self._relation.schema:
            raise UnknownColumnError(name, self._relation.schema.names)
        if self._entry.statistics is None:
            return None
        return self._entry.statistics.column(name)

    def dependency(self, name: str) -> ColumnDependency | None:
        """The column's dependency record — footer-answered on v3 tables."""
        segment = self._entry.column_segment(name)
        if segment is not None:
            return segment.dependency
        if self._entry.columns is not None:
            # v3 entry, vertical column: the footer is authoritative.
            self._check_column(name)
            return None
        return self.load().dependency(name)

    def is_horizontal(self, name: str) -> bool:
        if self._entry.columns is not None:
            self._check_column(name)
            segment = self._entry.column_segment(name)
            return bool(segment is not None and segment.references)
        return self.load().is_horizontal(name)

    def _check_column(self, name: str) -> None:
        if name not in self._relation.schema:
            raise UnknownColumnError(name, self._relation.schema.names)

    # -- data access (faults segments in) --------------------------------------

    def load(self) -> CompressedBlock:
        """The fully materialised block, fetched through the relation's cache."""
        return self._relation._load_block(self._index)

    def load_columns(self, names: Sequence[str]) -> CompressedBlock:
        """A block holding ``names`` plus their dependency closure.

        On a v3 table only those columns' sub-segments are fetched (each
        cached independently); on v1/v2 tables — or when the closure covers
        the whole block anyway — this is :meth:`load`.
        """
        return self._relation.load_block_columns(self._index, names)

    @property
    def columns(self) -> dict:
        return self.load().columns

    @property
    def dependencies(self) -> dict:
        return self.load().dependencies

    @property
    def column_names(self) -> tuple[str, ...]:
        if self._entry.columns is not None:
            return tuple(self._entry.columns)
        return self.load().column_names

    @property
    def size_bytes(self) -> int:
        return self.load().size_bytes

    def column(self, name: str):
        if self._relation.column_granular:
            self._check_column(name)
            encoded, _ = self._relation._load_column(self._index, name)
            return encoded
        return self.load().column(name)

    def code_space_column(self, name: str):
        if self._relation.column_granular:
            if self.dependency(name) is not None:
                return None
            encoded = self.column(name)
            if hasattr(encoded, "codes") and hasattr(encoded, "lookup_codes"):
                return encoded
            return None
        return self.load().code_space_column(name)

    def column_size(self, name: str) -> int:
        return self.column(name).size_bytes

    def encoding_of(self, name: str) -> str:
        return self.column(name).encoding_name

    def decode_column(self, name: str):
        return self.load_columns((name,)).decode_column(name)

    def gather_column(self, name: str, positions: np.ndarray):
        return self.load_columns((name,)).gather_column(name, positions)

    def __repr__(self) -> str:
        state = "cached" if self.is_loaded else "on disk"
        return f"LazyBlock(index={self._index}, n_rows={self.n_rows}, {state})"


class DiskRelation(Relation):
    """A relation served from a ``.corra`` file through a block cache.

    Parameters
    ----------
    path:
        The table file to open.
    cache:
        An existing :class:`BlockCache` to share between several tables (the
        cache keys are relation-unique); a private cache is created
        otherwise.
    cache_bytes:
        Budget for the private cache (ignored when ``cache`` is given).
    use_mmap:
        Serve segment reads from ``mmap`` when possible (default); plain
        seek-reads otherwise.
    prefetch_workers:
        Threads of the read-ahead pool serving
        :meth:`prefetch_block_columns` hints (created lazily on the first
        hint); ``0`` disables prefetching (unless an external pool is
        provided).
    prefetch_pool:
        An externally-owned ``ThreadPoolExecutor`` to run read-ahead on —
        a shared :class:`~repro.query.engine.Engine` passes its one
        prefetch pool here so every open table shares the same read-ahead
        threads.  :meth:`close` never shuts an external pool down.
    """

    def __init__(
        self,
        path: "str | os.PathLike[str]",
        cache: BlockCache | None = None,
        cache_bytes: int | None = DEFAULT_CACHE_BYTES,
        use_mmap: bool = True,
        prefetch_workers: int = DEFAULT_PREFETCH_WORKERS,
        prefetch_pool: ThreadPoolExecutor | None = None,
    ):
        self._reader = TableReader(path, use_mmap=use_mmap)
        self._cache = cache if cache is not None else BlockCache(cache_bytes)
        self._prefetch_workers = max(0, int(prefetch_workers))
        self._external_prefetch_pool = prefetch_pool
        self._prefetch_pool: ThreadPoolExecutor | None = None
        self._prefetch_pending = 0
        self._prefetched: set = set()
        self._prefetch_inflight: set = set()
        self._prefetch_lock = threading.Lock()
        self._closing = False
        footer = self._reader.footer
        blocks = tuple(
            LazyBlock(self, index, entry) for index, entry in enumerate(footer.blocks)
        )
        super().__init__(footer.schema, blocks, footer.block_size)

    # -- out-of-core accessors -------------------------------------------------

    @property
    def path(self) -> str:
        return self._reader.path

    @property
    def footer(self) -> TableFooter:
        return self._reader.footer

    @property
    def format_version(self) -> int:
        return self._reader.version

    @property
    def column_granular(self) -> bool:
        """Whether the file indexes per-column sub-segments (format v3)."""
        return self._reader.column_granular

    @property
    def io(self) -> IOMetrics:
        """Bytes/segments actually fetched from disk (cache hits excluded)."""
        return self._reader.io

    @property
    def cache(self) -> BlockCache:
        return self._cache

    @property
    def cache_stats(self) -> CacheStats:
        return self._cache.stats

    @property
    def cache_occupancy(self) -> TenantOccupancy:
        """This relation's resident share of the (possibly shared) cache."""
        return self._cache.occupancy().get(self.cache_token, TenantOccupancy(0, 0))

    @property
    def size_bytes(self) -> int:
        """Total on-disk size of the block segments (footer metadata only)."""
        return self._reader.footer.data_bytes

    def is_block_cached(self, index: int) -> bool:
        """Whether the whole block is resident — as one entry or, on a
        column-granular table, as the complete set of column entries."""
        if self._cache_key(index) in self._cache:
            return True
        entry = self._reader.block_entry(index)
        if not entry.columns:
            return False
        return all(self._cache_key(index, name) in self._cache for name in entry.columns)

    def is_column_cached(self, index: int, name: str) -> bool:
        return self._cache_key(index, name) in self._cache

    def _cache_key(self, index: int, column: str | None = None) -> tuple[int, int, str | None]:
        # cache_token is process-unique per relation, so one BlockCache can
        # be shared across every open table without key collisions; the
        # column component addresses v3 sub-segments (None = whole block).
        return (self.cache_token, index, column)

    # -- fetching --------------------------------------------------------------

    def _load_block(self, index: int) -> CompressedBlock:
        """Fetch one whole block through the cache (single-flight, budgeted).

        The cache charges the segment's on-disk length — a faithful proxy
        for the decoded block's resident footprint, since the wire format
        stores the packed buffers verbatim.
        """
        key = self._cache_key(index)
        self._note_demand(key)
        entry = self._reader.block_entry(index)
        return self._cache.get_or_load(
            key,
            lambda: (self._reader.read_block(index), entry.length),
        )

    def _load_column(self, index: int, name: str):
        """Fetch one (block, column) sub-segment through the cache.

        Returns ``(encoded_column, dependency)`` as cached together — the
        dependency record travels inside the sub-segment bytes.
        """
        key = self._cache_key(index, name)
        self._note_demand(key)
        segment = self._reader.column_segment(index, name)
        return self._cache.get_or_load(
            key,
            lambda: (self._reader.read_column(index, name), segment.length),
        )

    def column_closure(self, index: int, names: Sequence[str]) -> tuple[str, ...]:
        """``names`` plus every reference column they transitively need.

        Resolved entirely from footer metadata (v3), so the read set of a
        partial materialisation is known before any I/O is issued.
        """
        entry = self._reader.block_entry(index)
        order: list[str] = []

        def visit(name: str) -> None:
            if name in order:
                return
            segment = entry.column_segment(name)
            if segment is None:
                raise UnknownColumnError(name, self.schema.names)
            order.append(name)
            for ref in segment.references:
                visit(ref)

        for name in names:
            visit(name)
        return tuple(order)

    def load_block_columns(self, index: int, names: Sequence[str]) -> CompressedBlock:
        """A block materialising ``names`` (plus dependency closure) only.

        Falls back to the whole block when the file predates column
        segments (v1/v2), when the closure covers every column anyway, or
        when the full block is already resident.
        """
        for name in names:
            if name not in self.schema:
                raise UnknownColumnError(name, self.schema.names)
        cached = self._cache.get(self._cache_key(index))
        if cached is not None:
            return cached
        entry = self._reader.block_entry(index)
        if entry.columns is None:
            return self._load_block(index)
        closure = self.column_closure(index, names)
        if len(closure) >= len(entry.columns):
            return self._load_block(index)
        # Coalesced fast path: columns the cache has never seen (probed via
        # status(), which never counts as a request) are fetched together —
        # byte-adjacent sub-segments merge into one ranged read — and then
        # injected through get_or_load so single-flight semantics and cache
        # accounting are preserved.  Columns already cached or in flight
        # take the ordinary per-column path and piggyback on the loader.
        absent = [
            name
            for name in closure
            if self._cache.status(self._cache_key(index, name)) == "absent"
        ]
        preloaded = self._reader.read_columns(index, absent) if len(absent) > 1 else {}
        if preloaded:
            # Note the coalesced multi-column fetch on the caller's open span
            # (the per-column ``fetch`` spans below only see cache injections).
            _tracer().annotate(coalesced_columns=len(preloaded))
        columns = {}
        dependencies = {}
        for name in closure:
            if name in preloaded:
                key = self._cache_key(index, name)
                self._note_demand(key)
                segment = self._reader.column_segment(index, name)
                encoded, dependency = self._cache.get_or_load(
                    key,
                    lambda name=name, segment=segment: (preloaded[name], segment.length),
                )
            else:
                encoded, dependency = self._load_column(index, name)
            columns[name] = encoded
            if dependency is not None:
                dependencies[name] = dependency
        return CompressedBlock(
            schema=self.schema,
            n_rows=entry.n_rows,
            columns=columns,
            dependencies=dependencies,
            statistics=self._partial_statistics(entry, closure),
        )

    def _partial_statistics(self, entry, names: Sequence[str]) -> BlockStatistics | None:
        """The footer zone map restricted to ``names`` (parsed lazily)."""
        stats = entry.statistics
        if stats is None:
            return None
        subset = {}
        for name in names:
            column_stats = stats.column(name)
            if column_stats is not None:
                subset[name] = column_stats
        return BlockStatistics(subset) if subset else None

    # -- read-ahead ------------------------------------------------------------

    def prefetch_block_columns(self, index: int, names: Sequence[str] | None = None) -> bool:
        """Hint: fetch a block's required columns in the background.

        ``names=None`` (or a pre-v3 file) prefetches the whole block;
        otherwise the names' dependency closure of sub-segments.  Hints are
        dropped — never queued — when prefetching is disabled, everything is
        already resident, or the pool is saturated; returns whether a fetch
        was actually scheduled.  The single-flight cache makes an
        overlapping demand fetch piggyback on the prefetch (a cache hit,
        counted in ``IOMetrics.prefetch_hits``) instead of reading twice.
        """
        if self._closing or (
            self._prefetch_workers <= 0 and self._external_prefetch_pool is None
        ):
            return False
        if not 0 <= index < self.n_blocks:
            return False
        entry = self._reader.block_entry(index)
        if names is None or entry.columns is None:
            keys = [self._cache_key(index)]
        else:
            closure = self.column_closure(index, names)
            if len(closure) >= len(entry.columns):
                keys = [self._cache_key(index)]
            else:
                keys = [self._cache_key(index, name) for name in closure]
        candidates = [key for key in keys if self._cache.status(key) == "absent"]
        if not candidates:
            return False
        with self._prefetch_lock:
            if self._closing or self._prefetch_pending >= _PREFETCH_PENDING_LIMIT:
                return False
            # A submitted-but-not-started load is invisible to the cache's
            # status(); _prefetch_inflight dedupes hints in that window so
            # repeated hints for the same block neither inflate the issued
            # counter nor burn pending slots.
            targets = [key for key in candidates if key not in self._prefetch_inflight]
            if not targets:
                return False
            pool = self._external_prefetch_pool
            if pool is None:
                if self._prefetch_pool is None:
                    self._prefetch_pool = ThreadPoolExecutor(
                        max_workers=self._prefetch_workers,
                        thread_name_prefix="corra-prefetch",
                    )
                pool = self._prefetch_pool
            self._prefetch_pending += 1
            self._prefetch_inflight.update(targets)
            if len(self._prefetched) > 4_096:
                # Keys linger only when a hinted segment is never demanded;
                # drop the backlog rather than grow it unboundedly (the only
                # cost is an undercounted prefetch hit).
                self._prefetched.clear()
            self._prefetched.update(targets)
            try:
                # Submit while still holding the lock: close() nulls the
                # pool under the same lock, so the pool cannot disappear
                # (or be shut down) between the checks above and here.
                pool.submit(self._prefetch_task, index, targets)  # corra: ignore[lock-discipline]
            except RuntimeError:
                self._prefetch_pending -= 1
                self._prefetch_inflight.difference_update(targets)
                return False
        self.io.record_prefetch_issued(len(targets))
        return True

    def _prefetch_task(self, index: int, targets: list) -> None:
        try:
            for key in targets:
                column = key[2]
                if column is None:
                    self._cache.get_or_load(
                        key,
                        lambda: (
                            self._reader.read_block(index),
                            self._reader.block_entry(index).length,
                        ),
                    )
                else:
                    segment = self._reader.column_segment(index, column)
                    self._cache.get_or_load(
                        key,
                        lambda column=column, segment=segment: (
                            self._reader.read_column(index, column),
                            segment.length,
                        ),
                    )
        except Exception:
            # Background hints must never surface errors; the demand fetch
            # retries the load and reports the real failure.
            pass
        finally:
            with self._prefetch_lock:
                self._prefetch_pending -= 1
                self._prefetch_inflight.difference_update(targets)

    def _note_demand(self, key) -> None:
        """Record a demand fetch that a prefetch made (or is making) warm."""
        if not self._prefetched:
            return
        with self._prefetch_lock:
            if key not in self._prefetched:
                return
            self._prefetched.discard(key)
        if self._cache.status(key) != "absent":
            self.io.record_prefetch_hit()

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release the prefetch pool and file handle (cached blocks stay usable).

        An externally-owned prefetch pool is left running — its owner (a
        shared engine) closes it.
        """
        with self._prefetch_lock:
            self._closing = True
            pool = self._prefetch_pool
            self._prefetch_pool = None
        if pool is not None:
            pool.shutdown(wait=True)
        self._reader.close()

    def __enter__(self) -> "DiskRelation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_table(
    path: "str | os.PathLike[str]",
    cache: BlockCache | None = None,
    cache_bytes: int | None = DEFAULT_CACHE_BYTES,
    use_mmap: bool = True,
    prefetch_workers: int = DEFAULT_PREFETCH_WORKERS,
    prefetch_pool: ThreadPoolExecutor | None = None,
) -> DiskRelation:
    """Open a ``.corra`` file as a lazily-loaded, cache-governed relation."""
    return DiskRelation(
        path,
        cache=cache,
        cache_bytes=cache_bytes,
        use_mmap=use_mmap,
        prefetch_workers=prefetch_workers,
        prefetch_pool=prefetch_pool,
    )
