"""Disk-resident relations: lazy, cache-governed views over ``.corra`` files.

:class:`DiskRelation` satisfies the same protocol as the in-memory
:class:`~repro.storage.relation.Relation` — it *is* one, holding
:class:`LazyBlock` proxies instead of materialised blocks — so the whole
query stack (``ScanPlanner``, ``QueryCompiler``, ``ParallelEngine``, the
fluent ``Relation.query()`` chain) runs over it unchanged.  The difference
is *when* bytes move:

* **planning is metadata-only** — a proxy answers ``n_rows``,
  ``statistics`` and ``column_statistics`` straight from the table footer,
  so the planner prunes and stat-answers blocks without a single segment
  read;
* **data access faults the block in** — the first decode-path attribute on
  a proxy loads its segment through the relation's byte-budgeted
  :class:`~repro.storage.cache.BlockCache` (single-flight, so concurrent
  morsel workers fetch each block once) and the per-table
  :class:`~repro.storage.cache.IOMetrics` records exactly what was read.

A table larger than the cache budget is therefore queryable end-to-end with
results bit-identical to the in-memory relation, and pruned blocks provably
contribute zero bytes read.
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import UnknownColumnError
from .block import ColumnDependency, CompressedBlock
from .cache import DEFAULT_CACHE_BYTES, BlockCache, CacheStats, IOMetrics
from .format import TableFooter, TableReader
from .relation import Relation
from .statistics import BlockStatistics, ColumnStatistics

__all__ = ["DiskRelation", "LazyBlock", "open_table"]


class LazyBlock:
    """A footer-backed stand-in for one :class:`CompressedBlock`.

    Metadata reads (``n_rows``, ``statistics``, ``column_statistics``,
    ``schema``) are answered from the footer entry; everything on the decode
    path (``column``/``columns``/``gather_column``/...) transparently loads
    the real block through the owning relation's cache.
    """

    __slots__ = ("_relation", "_index", "_entry")

    def __init__(self, relation: "DiskRelation", index: int, entry) -> None:
        self._relation = relation
        self._index = index
        self._entry = entry

    # -- footer-answered metadata (no I/O) -------------------------------------

    @property
    def index(self) -> int:
        return self._index

    @property
    def n_rows(self) -> int:
        return self._entry.n_rows

    @property
    def statistics(self) -> BlockStatistics | None:
        return self._entry.statistics

    @property
    def schema(self):
        return self._relation.schema

    @property
    def segment_bytes(self) -> int:
        """On-disk size of the block's segment (footer metadata)."""
        return self._entry.length

    @property
    def is_loaded(self) -> bool:
        """Whether the block is currently resident in the relation's cache."""
        return self._relation.is_block_cached(self._index)

    def column_statistics(self, name: str) -> ColumnStatistics | None:
        """Zone-map statistics for ``name`` from the footer (no block I/O)."""
        if name not in self._relation.schema:
            raise UnknownColumnError(name, self._relation.schema.names)
        if self._entry.statistics is None:
            return None
        return self._entry.statistics.column(name)

    # -- data access (faults the block in) -------------------------------------

    def load(self) -> CompressedBlock:
        """The materialised block, fetched through the relation's cache."""
        return self._relation._load_block(self._index)

    @property
    def columns(self) -> dict:
        return self.load().columns

    @property
    def dependencies(self) -> dict:
        return self.load().dependencies

    @property
    def column_names(self) -> tuple[str, ...]:
        return self.load().column_names

    @property
    def size_bytes(self) -> int:
        return self.load().size_bytes

    def column(self, name: str):
        return self.load().column(name)

    def dependency(self, name: str) -> ColumnDependency | None:
        return self.load().dependency(name)

    def is_horizontal(self, name: str) -> bool:
        return self.load().is_horizontal(name)

    def code_space_column(self, name: str):
        return self.load().code_space_column(name)

    def column_size(self, name: str) -> int:
        return self.load().column_size(name)

    def encoding_of(self, name: str) -> str:
        return self.load().encoding_of(name)

    def decode_column(self, name: str):
        return self.load().decode_column(name)

    def gather_column(self, name: str, positions: np.ndarray):
        return self.load().gather_column(name, positions)

    def __repr__(self) -> str:
        state = "cached" if self.is_loaded else "on disk"
        return f"LazyBlock(index={self._index}, n_rows={self.n_rows}, {state})"


class DiskRelation(Relation):
    """A relation served from a ``.corra`` file through a block cache.

    Parameters
    ----------
    path:
        The table file to open.
    cache:
        An existing :class:`BlockCache` to share between several tables (the
        cache keys are relation-unique); a private cache is created
        otherwise.
    cache_bytes:
        Budget for the private cache (ignored when ``cache`` is given).
    use_mmap:
        Serve segment reads from ``mmap`` when possible (default); plain
        seek-reads otherwise.
    """

    def __init__(
        self,
        path: "str | os.PathLike[str]",
        cache: BlockCache | None = None,
        cache_bytes: int | None = DEFAULT_CACHE_BYTES,
        use_mmap: bool = True,
    ):
        self._reader = TableReader(path, use_mmap=use_mmap)
        self._cache = cache if cache is not None else BlockCache(cache_bytes)
        footer = self._reader.footer
        blocks = tuple(
            LazyBlock(self, index, entry) for index, entry in enumerate(footer.blocks)
        )
        super().__init__(footer.schema, blocks, footer.block_size)

    # -- out-of-core accessors -------------------------------------------------

    @property
    def path(self) -> str:
        return self._reader.path

    @property
    def footer(self) -> TableFooter:
        return self._reader.footer

    @property
    def format_version(self) -> int:
        return self._reader.version

    @property
    def io(self) -> IOMetrics:
        """Bytes/blocks actually fetched from disk (cache hits excluded)."""
        return self._reader.io

    @property
    def cache(self) -> BlockCache:
        return self._cache

    @property
    def cache_stats(self) -> CacheStats:
        return self._cache.stats

    @property
    def size_bytes(self) -> int:
        """Total on-disk size of the block segments (footer metadata only)."""
        return self._reader.footer.data_bytes

    def is_block_cached(self, index: int) -> bool:
        return self._cache_key(index) in self._cache

    def _cache_key(self, index: int) -> tuple[int, int]:
        # cache_token is process-unique per relation, so one BlockCache can
        # be shared across every open table without key collisions.
        return (self.cache_token, index)

    def _load_block(self, index: int) -> CompressedBlock:
        """Fetch one block through the cache (single-flight, budgeted).

        The cache charges the segment's on-disk length — a faithful proxy
        for the decoded block's resident footprint, since the wire format
        stores the packed buffers verbatim.
        """
        entry = self._reader.block_entry(index)
        return self._cache.get_or_load(
            self._cache_key(index),
            lambda: (self._reader.read_block(index), entry.length),
        )

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release the file handle/mmap (cached blocks stay usable)."""
        self._reader.close()

    def __enter__(self) -> "DiskRelation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_table(
    path: "str | os.PathLike[str]",
    cache: BlockCache | None = None,
    cache_bytes: int | None = DEFAULT_CACHE_BYTES,
    use_mmap: bool = True,
) -> DiskRelation:
    """Open a ``.corra`` file as a lazily-loaded, cache-governed relation."""
    return DiskRelation(path, cache=cache, cache_bytes=cache_bytes, use_mmap=use_mmap)
