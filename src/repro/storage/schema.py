"""Schemas: ordered, typed column definitions for tables and blocks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..dtypes import DataType, type_from_name
from ..errors import SchemaError, UnknownColumnError

__all__ = ["ColumnSpec", "Schema"]


@dataclass(frozen=True)
class ColumnSpec:
    """Name and logical type of one column."""

    name: str
    dtype: DataType

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")

    def to_dict(self) -> dict:
        return {"name": self.name, "dtype": self.dtype.name}

    @classmethod
    def from_dict(cls, data: dict) -> "ColumnSpec":
        return cls(name=data["name"], dtype=type_from_name(data["dtype"]))


@dataclass(frozen=True)
class Schema:
    """An ordered collection of :class:`ColumnSpec` with unique names."""

    columns: tuple[ColumnSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SchemaError(f"duplicate column names in schema: {sorted(duplicates)}")

    @classmethod
    def of(cls, *specs: ColumnSpec) -> "Schema":
        return cls(columns=tuple(specs))

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[str, DataType]]) -> "Schema":
        return cls(columns=tuple(ColumnSpec(name, dtype) for name, dtype in pairs))

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[ColumnSpec]:
        return iter(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self.names

    def column(self, name: str) -> ColumnSpec:
        """Look up a column spec by name."""
        for spec in self.columns:
            if spec.name == name:
                return spec
        raise UnknownColumnError(name, self.names)

    def dtype(self, name: str) -> DataType:
        """Logical type of the named column."""
        return self.column(name).dtype

    def index_of(self, name: str) -> int:
        """Ordinal position of the named column."""
        for i, spec in enumerate(self.columns):
            if spec.name == name:
                return i
        raise UnknownColumnError(name, self.names)

    def select(self, names: Iterable[str]) -> "Schema":
        """Project the schema onto a subset of columns (keeping given order)."""
        return Schema(columns=tuple(self.column(n) for n in names))

    def with_column(self, spec: ColumnSpec) -> "Schema":
        """Return a new schema with one extra column appended."""
        return Schema(columns=self.columns + (spec,))

    def to_dict(self) -> dict:
        return {"columns": [c.to_dict() for c in self.columns]}

    @classmethod
    def from_dict(cls, data: dict) -> "Schema":
        return cls(columns=tuple(ColumnSpec.from_dict(c) for c in data["columns"]))
