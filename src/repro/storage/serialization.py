"""Binary serialisation of compressed blocks.

Blocks are self-contained, so serialising one is a matter of writing each
encoded column's state.  Rather than hand-writing a format per encoding
class, every encoded column is reduced to its instance state (a tree of
dicts, NumPy arrays, ints, strings, byte strings, lists and other encoded
columns) and written with a small tagged binary format.  Deserialisation
reconstructs the objects through a class registry, so only classes listed in
the registry can ever be instantiated — unlike ``pickle``, the format cannot
execute arbitrary code.

The format is little-endian throughout:

```
block   := MAGIC u32(version) schema u32(n_rows) statistics u32(n_cols) column*
column  := str(name) dependency? object
object  := tag payload       (tag is a single byte, see _Tag)
```

Version 2 added the per-block zone map (``statistics``, a plain dict or
``None``); version 1 blocks, which lack the field, are still readable.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO

import numpy as np

from ..errors import SerializationError
from .block import ColumnDependency, CompressedBlock
from .schema import Schema
from .statistics import BlockStatistics

__all__ = [
    "serialize_block",
    "serialize_block_with_layout",
    "deserialize_block",
    "deserialize_column",
    "register_column_class",
    "registered_column_classes",
    "BlockSerializer",
]

_MAGIC = b"CORRABLK"
_VERSION = 2


class _Tag:
    NONE = 0
    INT = 1
    FLOAT = 2
    BOOL = 3
    STR = 4
    BYTES = 5
    NDARRAY = 6
    LIST = 7
    DICT = 8
    TUPLE = 9
    OBJECT = 10  # a registered library object (encoded column, helper, ...)


#: Registry of classes allowed to appear inside a serialised block.
_COLUMN_CLASSES: dict[str, type] = {}


def register_column_class(cls: type) -> type:
    """Register a class so its instances can be (de)serialised inside blocks.

    Used as a decorator on encoded-column and helper classes.  Returns the
    class unchanged.
    """
    _COLUMN_CLASSES[cls.__name__] = cls
    return cls


def registered_column_classes() -> dict[str, type]:
    """A copy of the registry, mainly for tests and debugging."""
    return dict(_COLUMN_CLASSES)


def _register_builtin_classes() -> None:
    """Populate the registry with every encoded-column class in the library."""
    from ..bitpack import BitPackedArray
    from ..encodings import (
        DeltaEncodedColumn,
        DictEncodedIntColumn,
        DictEncodedStringColumn,
        ForBitPackedColumn,
        FrequencyEncodedColumn,
        FsstEncodedColumn,
        PlainEncodedColumn,
        PlainStringColumn,
        RleEncodedColumn,
        StringHeap,
        SymbolTable,
    )
    from ..core.diff_encoding import DiffEncodedColumn
    from ..core.hierarchical import HierarchicalEncodedColumn
    from ..core.multi_reference import (
        ArithmeticRule,
        MultiReferenceConfig,
        MultiReferenceEncodedColumn,
        ReferenceGroup,
    )
    from ..core.outliers import OutlierStore
    from ..dtypes import DataType

    for cls in (
        MultiReferenceConfig,
        ReferenceGroup,
        ArithmeticRule,
        BitPackedArray,
        PlainEncodedColumn,
        PlainStringColumn,
        ForBitPackedColumn,
        DictEncodedIntColumn,
        DictEncodedStringColumn,
        StringHeap,
        DeltaEncodedColumn,
        RleEncodedColumn,
        FrequencyEncodedColumn,
        FsstEncodedColumn,
        SymbolTable,
        DiffEncodedColumn,
        HierarchicalEncodedColumn,
        MultiReferenceEncodedColumn,
        OutlierStore,
        DataType,
    ):
        register_column_class(cls)


def _write_str(out: BinaryIO, text: str) -> None:
    data = text.encode("utf-8")
    out.write(struct.pack("<I", len(data)))
    out.write(data)


def _read_str(buf: BinaryIO) -> str:
    (length,) = struct.unpack("<I", _read_exact(buf, 4))
    return _read_exact(buf, length).decode("utf-8")


def _read_exact(buf: BinaryIO, n: int) -> bytes:
    data = buf.read(n)
    if len(data) != n:
        raise SerializationError("unexpected end of serialised block")
    return data


def _write_object(out: BinaryIO, value) -> None:
    if value is None:
        out.write(bytes([_Tag.NONE]))
    elif isinstance(value, bool):
        out.write(bytes([_Tag.BOOL]))
        out.write(struct.pack("<B", int(value)))
    elif isinstance(value, (int, np.integer)):
        out.write(bytes([_Tag.INT]))
        out.write(struct.pack("<q", int(value)))
    elif isinstance(value, (float, np.floating)):
        out.write(bytes([_Tag.FLOAT]))
        out.write(struct.pack("<d", float(value)))
    elif isinstance(value, str):
        out.write(bytes([_Tag.STR]))
        _write_str(out, value)
    elif isinstance(value, (bytes, bytearray)):
        out.write(bytes([_Tag.BYTES]))
        out.write(struct.pack("<Q", len(value)))
        out.write(bytes(value))
    elif isinstance(value, np.ndarray):
        out.write(bytes([_Tag.NDARRAY]))
        _write_str(out, value.dtype.str)
        out.write(struct.pack("<Q", value.size))
        out.write(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, list):
        out.write(bytes([_Tag.LIST]))
        out.write(struct.pack("<Q", len(value)))
        for item in value:
            _write_object(out, item)
    elif isinstance(value, tuple):
        out.write(bytes([_Tag.TUPLE]))
        out.write(struct.pack("<Q", len(value)))
        for item in value:
            _write_object(out, item)
    elif isinstance(value, dict):
        out.write(bytes([_Tag.DICT]))
        out.write(struct.pack("<Q", len(value)))
        for key, item in value.items():
            _write_object(out, key)
            _write_object(out, item)
    elif type(value).__name__ in _COLUMN_CLASSES or _is_registrable(value):
        out.write(bytes([_Tag.OBJECT]))
        _write_str(out, type(value).__name__)
        # ``_cached`` attributes are query-time memos (run values, monotonicity
        # flags, ...) rebuilt lazily on first use — never part of the format.
        state = {k: v for k, v in vars(value).items() if not k.startswith("_cached")}
        _write_object(out, state)
    else:
        raise SerializationError(f"cannot serialise object of type {type(value).__name__}")


def _is_registrable(value) -> bool:
    """Lazily register library classes the first time they are encountered."""
    if not _COLUMN_CLASSES:
        _register_builtin_classes()
    return type(value).__name__ in _COLUMN_CLASSES


def _read_object(buf: BinaryIO):
    tag = _read_exact(buf, 1)[0]
    if tag == _Tag.NONE:
        return None
    if tag == _Tag.BOOL:
        return bool(struct.unpack("<B", _read_exact(buf, 1))[0])
    if tag == _Tag.INT:
        return struct.unpack("<q", _read_exact(buf, 8))[0]
    if tag == _Tag.FLOAT:
        return struct.unpack("<d", _read_exact(buf, 8))[0]
    if tag == _Tag.STR:
        return _read_str(buf)
    if tag == _Tag.BYTES:
        (length,) = struct.unpack("<Q", _read_exact(buf, 8))
        return _read_exact(buf, length)
    if tag == _Tag.NDARRAY:
        dtype = np.dtype(_read_str(buf))
        (size,) = struct.unpack("<Q", _read_exact(buf, 8))
        data = _read_exact(buf, size * dtype.itemsize)
        return np.frombuffer(data, dtype=dtype).copy()
    if tag == _Tag.LIST:
        (length,) = struct.unpack("<Q", _read_exact(buf, 8))
        return [_read_object(buf) for _ in range(length)]
    if tag == _Tag.TUPLE:
        (length,) = struct.unpack("<Q", _read_exact(buf, 8))
        return tuple(_read_object(buf) for _ in range(length))
    if tag == _Tag.DICT:
        (length,) = struct.unpack("<Q", _read_exact(buf, 8))
        return {_read_object(buf): _read_object(buf) for _ in range(length)}
    if tag == _Tag.OBJECT:
        if not _COLUMN_CLASSES:
            _register_builtin_classes()
        class_name = _read_str(buf)
        state = _read_object(buf)
        cls = _COLUMN_CLASSES.get(class_name)
        if cls is None:
            raise SerializationError(f"unknown serialised class {class_name!r}")
        instance = object.__new__(cls)
        try:
            instance.__dict__.update(state)
        except AttributeError:
            # Frozen dataclasses (e.g. DataType) have no writable __dict__ slots
            # via normal assignment; fall back to object.__setattr__.
            for key, value in state.items():
                object.__setattr__(instance, key, value)
        return instance
    raise SerializationError(f"unknown tag {tag} in serialised block")


def _serialize_block_into(out: io.BytesIO, block: CompressedBlock) -> dict[str, tuple[int, int]]:
    """Write the block wire format, returning each column's (offset, length).

    Offsets are relative to the start of the serialised block.  Each column's
    span covers exactly its ``name + dependency + encoded object`` bytes, so
    a span can be parsed on its own by :func:`deserialize_column` — this is
    what the table format's column-granular sub-segments (format v3) index.
    """
    out.write(_MAGIC)
    out.write(struct.pack("<I", _VERSION))
    _write_object(out, block.schema.to_dict())
    out.write(struct.pack("<I", block.n_rows))
    stats = block.statistics
    _write_object(out, stats.to_dict() if stats is not None else None)
    out.write(struct.pack("<I", len(block.columns)))
    spans: dict[str, tuple[int, int]] = {}
    for name, column in block.columns.items():
        start = out.tell()
        _write_str(out, name)
        dep = block.dependencies.get(name)
        _write_object(out, dep.to_dict() if dep is not None else None)
        _write_object(out, column)
        spans[name] = (start, out.tell() - start)
    return spans


def serialize_block(block: CompressedBlock) -> bytes:
    """Serialise a compressed block to a self-contained byte string."""
    if not _COLUMN_CLASSES:
        _register_builtin_classes()
    out = io.BytesIO()
    _serialize_block_into(out, block)
    return out.getvalue()


def serialize_block_with_layout(
    block: CompressedBlock,
) -> tuple[bytes, dict[str, tuple[int, int]]]:
    """Serialise a block and report each column's (offset, length) span.

    The bytes are identical to :func:`serialize_block` output — the layout
    is metadata *about* them, recorded by format-v3 table footers so a
    reader can fetch one column's sub-segment without the rest of the block.
    """
    if not _COLUMN_CLASSES:
        _register_builtin_classes()
    out = io.BytesIO()
    spans = _serialize_block_into(out, block)
    return out.getvalue(), spans


def deserialize_block(data: bytes) -> CompressedBlock:
    """Reconstruct a compressed block from :func:`serialize_block` output."""
    if not _COLUMN_CLASSES:
        _register_builtin_classes()
    buf = io.BytesIO(data)
    magic = buf.read(len(_MAGIC))
    if magic != _MAGIC:
        raise SerializationError("not a serialised Corra block (bad magic)")
    (version,) = struct.unpack("<I", _read_exact(buf, 4))
    if version not in (1, _VERSION):
        raise SerializationError(f"unsupported block format version {version}")
    schema = Schema.from_dict(_read_object(buf))
    (n_rows,) = struct.unpack("<I", _read_exact(buf, 4))
    statistics = None
    if version >= 2:
        stats_state = _read_object(buf)
        if stats_state is not None:
            statistics = BlockStatistics.from_dict(stats_state)
    (n_cols,) = struct.unpack("<I", _read_exact(buf, 4))
    columns = {}
    dependencies = {}
    for _ in range(n_cols):
        name = _read_str(buf)
        dep_state = _read_object(buf)
        column = _read_object(buf)
        columns[name] = column
        if dep_state is not None:
            dependencies[name] = ColumnDependency.from_dict(dep_state)
    return CompressedBlock(
        schema=schema,
        n_rows=n_rows,
        columns=columns,
        dependencies=dependencies,
        statistics=statistics,
    )


def deserialize_column(data: bytes):
    """Reconstruct one column from its sub-segment bytes.

    ``data`` is one span of :func:`serialize_block_with_layout` output —
    the ``name + dependency + encoded object`` bytes of a single column.
    Returns ``(name, dependency, encoded_column)`` with ``dependency`` being
    a :class:`~repro.storage.block.ColumnDependency` or ``None``.
    """
    if not _COLUMN_CLASSES:
        _register_builtin_classes()
    buf = io.BytesIO(data)
    name = _read_str(buf)
    dep_state = _read_object(buf)
    column = _read_object(buf)
    if buf.read(1):
        raise SerializationError(f"trailing bytes after serialised column {name!r}")
    dependency = ColumnDependency.from_dict(dep_state) if dep_state is not None else None
    return name, dependency, column


class BlockSerializer:
    """Convenience object API over :func:`serialize_block` / :func:`deserialize_block`."""

    def dumps(self, block: CompressedBlock) -> bytes:
        return serialize_block(block)

    def loads(self, data: bytes) -> CompressedBlock:
        return deserialize_block(data)

    def dump(self, block: CompressedBlock, path) -> int:
        """Write a block to ``path``; returns the number of bytes written."""
        payload = serialize_block(block)
        with open(path, "wb") as f:
            f.write(payload)
        return len(payload)

    def load(self, path) -> CompressedBlock:
        with open(path, "rb") as f:
            return deserialize_block(f.read())
