"""Self-contained data blocks of compressed columns.

Mirroring the paper's experimental setup: "We split all datasets into data
blocks of 1M tuples.  Each data block is completely self-contained: all
information required to decompress it is contained within the block itself."

A :class:`CompressedBlock` therefore owns one :class:`EncodedColumn` per
column (vertical or horizontal) plus the per-column dependency information a
horizontal encoding needs (which reference column(s) to fetch).  Row ids used
by the query engine are block-local.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..encodings.base import EncodedColumn
from ..errors import SchemaError, UnknownColumnError
from .schema import Schema
from .statistics import BlockStatistics, ColumnStatistics

__all__ = ["CompressedBlock", "ColumnDependency", "DEFAULT_BLOCK_SIZE"]

#: Default number of tuples per block, as in the paper.
DEFAULT_BLOCK_SIZE = 1_000_000

#: Fixed per-block header overhead charged to the block size (row count,
#: column count, per-column descriptors).
_BLOCK_HEADER_BYTES = 32


@dataclass(frozen=True)
class ColumnDependency:
    """Records that a column is horizontally encoded w.r.t. reference columns."""

    references: tuple[str, ...]
    kind: str  # "non_hierarchical", "hierarchical", or "multi_reference"

    def to_dict(self) -> dict:
        return {"references": list(self.references), "kind": self.kind}

    @classmethod
    def from_dict(cls, data: dict) -> "ColumnDependency":
        return cls(references=tuple(data["references"]), kind=data["kind"])


@dataclass
class CompressedBlock:
    """One block's worth of compressed columns plus dependency metadata."""

    schema: Schema
    n_rows: int
    columns: dict[str, EncodedColumn] = field(default_factory=dict)
    dependencies: dict[str, ColumnDependency] = field(default_factory=dict)
    #: Zone map computed at compression time; ``None`` for blocks built by
    #: code paths that do not collect statistics (the scan planner then
    #: simply cannot prune them).
    statistics: BlockStatistics | None = None

    def __post_init__(self) -> None:
        for name in self.columns:
            if name not in self.schema:
                raise SchemaError(f"encoded column {name!r} not in block schema")
        if self.statistics is not None:
            for name in self.statistics.column_names:
                if name not in self.columns:
                    raise SchemaError(f"statistics recorded for missing column {name!r}")
        for name, encoded in self.columns.items():
            if encoded.n_values != self.n_rows:
                raise SchemaError(
                    f"column {name!r} has {encoded.n_values} values, "
                    f"block has {self.n_rows} rows"
                )
        for name, dep in self.dependencies.items():
            if name not in self.columns:
                raise SchemaError(f"dependency recorded for missing column {name!r}")
            for ref in dep.references:
                if ref not in self.columns:
                    raise SchemaError(f"column {name!r} references missing column {ref!r}")

    # -- accessors ------------------------------------------------------------

    def column(self, name: str) -> EncodedColumn:
        if name not in self.columns:
            raise UnknownColumnError(name, tuple(self.columns))
        return self.columns[name]

    def dependency(self, name: str) -> ColumnDependency | None:
        """The dependency record for ``name`` or ``None`` if vertically encoded."""
        return self.dependencies.get(name)

    def is_horizontal(self, name: str) -> bool:
        return name in self.dependencies

    def code_space_column(self, name: str) -> EncodedColumn | None:
        """The encoded column if ``name`` supports code-space evaluation.

        A column qualifies when it is vertically encoded (no reference
        dependency to resolve) and its encoding exposes the dictionary
        code-space API (``codes``/``lookup_codes``); the query layer then
        evaluates ``Eq``/``In`` predicates directly over packed codes.
        """
        if name in self.dependencies:
            return None
        encoded = self.column(name)
        if hasattr(encoded, "codes") and hasattr(encoded, "lookup_codes"):
            return encoded
        return None

    def column_statistics(self, name: str) -> ColumnStatistics | None:
        """Zone-map statistics for ``name``, or ``None`` when unavailable."""
        if name not in self.columns:
            raise UnknownColumnError(name, tuple(self.columns))
        if self.statistics is None:
            return None
        return self.statistics.column(name)

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self.columns)

    # -- sizes ----------------------------------------------------------------

    def column_size(self, name: str) -> int:
        """Compressed size of one column including its metadata."""
        return self.column(name).size_bytes

    @property
    def size_bytes(self) -> int:
        """Total compressed size of the block, including the block header."""
        return sum(c.size_bytes for c in self.columns.values()) + _BLOCK_HEADER_BYTES

    def encoding_of(self, name: str) -> str:
        """Name of the scheme that encoded the given column."""
        return self.column(name).encoding_name

    # -- decoding -------------------------------------------------------------

    def decode_column(self, name: str) -> np.ndarray | list[str]:
        """Fully decode one column (resolving horizontal dependencies)."""
        return self.gather_column(name, np.arange(self.n_rows, dtype=np.int64))

    def gather_column(self, name: str, positions: np.ndarray) -> np.ndarray | list[str]:
        """Decode the values of ``name`` at block-local ``positions``.

        For horizontally encoded columns this first fetches the reference
        column values at the same positions (Algorithm 1 in the paper) and
        passes them to the column's ``gather_with_reference``.
        """
        encoded = self.column(name)
        dep = self.dependencies.get(name)
        if dep is None:
            return encoded.gather(positions)
        reference_values = {ref: self.gather_column(ref, positions) for ref in dep.references}
        return encoded.gather_with_reference(
            positions, reference_values
        )  # type: ignore[attr-defined]
