"""Relations: tables split into fixed-size, self-contained data blocks."""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Iterator

import numpy as np

from ..errors import ValidationError
from .block import DEFAULT_BLOCK_SIZE, CompressedBlock
from .schema import Schema
from .table import Table

__all__ = ["Relation", "split_into_blocks"]

#: Sentinel for Relation.query's deprecated keywords (see query()).
_UNSET = object()


def split_into_blocks(table: Table, block_size: int = DEFAULT_BLOCK_SIZE) -> Iterator[Table]:
    """Yield consecutive row slices of ``table`` with at most ``block_size`` rows."""
    if block_size < 1:
        raise ValidationError("block size must be at least 1")
    for start in range(0, table.n_rows, block_size):
        yield table.slice(start, min(start + block_size, table.n_rows))
    if table.n_rows == 0:
        yield table.slice(0, 0)


class Relation:
    """A compressed relation: an ordered list of :class:`CompressedBlock`.

    The relation remembers the block size so global row ids can be translated
    to (block index, block-local row id) pairs, which is what the query
    engine works with.
    """

    #: Monotonic counter backing :attr:`cache_token`; never reused, so tokens
    #: stay distinct even if a relation object is garbage-collected and its
    #: memory address recycled (``id()`` would not give that guarantee).
    _token_counter = itertools.count()

    def __init__(
        self,
        schema: Schema,
        blocks: Iterable[CompressedBlock],
        block_size: int = DEFAULT_BLOCK_SIZE,
    ):
        self._schema = schema
        self._blocks = tuple(blocks)
        self._token = next(Relation._token_counter)
        self._block_size = int(block_size)
        if self._block_size < 1:
            raise ValidationError("block size must be at least 1")
        for block in self._blocks[:-1]:
            if block.n_rows != self._block_size:
                raise ValidationError(
                    "all blocks except the last must contain exactly "
                    f"{self._block_size} rows, found one with {block.n_rows}"
                )

    @classmethod
    def from_table(
        cls,
        table: Table,
        compress_block: Callable[[Table], CompressedBlock],
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> "Relation":
        """Split ``table`` into blocks and compress each with ``compress_block``."""
        blocks = [compress_block(chunk) for chunk in split_into_blocks(table, block_size)]
        return cls(table.schema, blocks, block_size)

    # -- accessors ------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def blocks(self) -> tuple[CompressedBlock, ...]:
        """The blocks as an immutable view (no per-access copy)."""
        return self._blocks

    @property
    def block_size(self) -> int:
        return self._block_size

    @property
    def cache_token(self) -> int:
        """A process-unique id identifying this relation's (immutable) blocks.

        Caches keyed on it (e.g. the scan planner's decision memo) are
        automatically invalidated when they observe a different relation.
        """
        return self._token

    @property
    def n_blocks(self) -> int:
        return len(self._blocks)

    @property
    def n_rows(self) -> int:
        return sum(b.n_rows for b in self._blocks)

    def __len__(self) -> int:
        return self.n_rows

    def __iter__(self) -> Iterator[CompressedBlock]:
        return iter(self._blocks)

    def block(self, index: int) -> CompressedBlock:
        return self._blocks[index]

    # -- querying -------------------------------------------------------------

    def query(
        self,
        workers=_UNSET,
        use_statistics=_UNSET,
        use_dictionary=_UNSET,
        use_kernels=_UNSET,
        engine=None,
        config=None,
    ):
        """Start a lazy query chain over this relation.

        Returns a :class:`~repro.query.plan.LazyQuery`: compose with
        ``.where()/.select()/.group_by()/.agg()/.limit()`` and run with
        ``.execute()`` (or ``.count()``); ``.explain()`` renders the plan
        without executing it.  Configuration comes from an
        :class:`~repro.query.engine.EngineConfig` (``config=``) or a shared
        :class:`~repro.query.engine.Engine` (``engine=``, whose memoized
        compiler and worker pool the chain then shares); the pre-Engine
        keywords keep working bit-identically but emit a
        ``DeprecationWarning``.
        """
        # Imported lazily: the storage layer must stay importable without
        # pulling in the query layer (which imports storage) at module load.
        from ..query.executor import warn_legacy_query_kwargs
        from ..query.plan import LazyQuery

        legacy = {
            name: value
            for name, value in (
                ("workers", workers),
                ("use_statistics", use_statistics),
                ("use_dictionary", use_dictionary),
                ("use_kernels", use_kernels),
            )
            if value is not _UNSET
        }
        if legacy and (engine is not None or config is not None):
            raise ValidationError(
                "pass either the deprecated keywords or engine=/config=, not both"
            )
        if legacy:
            warn_legacy_query_kwargs("Relation.query", legacy)
        if engine is not None:
            return LazyQuery(self, engine=engine)
        if config is not None:
            cfg = config
        else:
            from ..query.engine import EngineConfig

            cfg = EngineConfig()
        cfg = cfg.with_overrides(**legacy)
        return LazyQuery(
            self,
            workers=cfg.workers,
            use_statistics=cfg.use_statistics,
            use_dictionary=cfg.use_dictionary,
            use_kernels=cfg.use_kernels,
        )

    # -- sizes ----------------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        return sum(b.size_bytes for b in self._blocks)

    def column_size(self, name: str) -> int:
        """Total compressed size of one column across all blocks."""
        return sum(b.column_size(name) for b in self._blocks)

    # -- row id translation ---------------------------------------------------

    def locate(self, row_ids: np.ndarray) -> list[tuple[int, np.ndarray, np.ndarray]]:
        """Group global ``row_ids`` by block.

        Returns a list of ``(block_index, block_local_positions,
        output_positions)`` tuples, where ``output_positions`` are the indices
        into the original ``row_ids`` array so callers can scatter per-block
        results back into caller order.
        """
        rows = np.asarray(row_ids, dtype=np.int64)
        if rows.size == 0:
            return []
        if rows.min() < 0 or rows.max() >= self.n_rows:
            raise ValidationError("row ids out of range for relation")
        # One argsort + boundary scan instead of a per-block boolean mask:
        # O(n log n) regardless of how many blocks the relation has.
        order = np.argsort(rows, kind="stable")
        sorted_rows = rows[order]
        sorted_blocks = sorted_rows // self._block_size
        starts = np.flatnonzero(np.r_[True, np.diff(sorted_blocks) != 0])
        bounds = np.append(starts, sorted_rows.size)
        groups = []
        for start, stop in zip(bounds[:-1], bounds[1:]):
            groups.append(
                (
                    int(sorted_blocks[start]),
                    sorted_rows[start:stop] % self._block_size,
                    order[start:stop],
                )
            )
        return groups
