"""Byte-budgeted block cache and I/O accounting for out-of-core tables.

:class:`BlockCache` keeps deserialised blocks under a byte budget with LRU
eviction.  It is the memory governor of :class:`~repro.storage.disk.
DiskRelation`: every lazy block load goes through :meth:`BlockCache.
get_or_load`, so a table larger than RAM is queryable with bounded resident
bytes — the working set is whatever survived pruning, trimmed to the budget.

The cache is thread-safe and *single-flight*: when several workers of the
morsel-driven engine fault the same block concurrently, exactly one of them
runs the loader while the others wait for its result; loads of *different*
blocks proceed in parallel (the loader runs outside the cache lock).  An
entry larger than the whole budget is returned to the caller but never
cached, so a budget smaller than one block's working set degrades to
load-per-access instead of failing.

Budget arbitration is *tenant-aware*: tuple keys group by their first
element (the relation's ``cache_token`` for disk relations), and when the
budget is exceeded eviction rotates round-robin across tenants, taking each
victim tenant's least-recently-used entry.  A hot table can therefore no
longer starve a colder one out of a shared cache — each eviction round
costs every resident tenant one entry, instead of draining whichever
table's entries happen to be globally oldest.  With a single tenant this
degrades to plain LRU.  :meth:`BlockCache.occupancy` reports the resident
entries/bytes per tenant, which is what the query service's ``/metrics``
exposes for cache-budget arbitration between tables.

:class:`IOMetrics` counts the bytes and blocks actually fetched from a
table file.  Cache hits never touch the counters, which is what lets tests
and benchmarks prove that pruned blocks contribute zero bytes read.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Hashable, TypeVar

from ..errors import ValidationError

__all__ = ["BlockCache", "CacheStats", "IOMetrics", "TenantOccupancy"]

V = TypeVar("V")

#: Default cache budget for disk relations: enough for a handful of the
#: paper's 1 M-tuple blocks without approaching typical container limits.
DEFAULT_CACHE_BYTES = 256 * 1024 * 1024

_current_tracer: "Callable[[], object] | None" = None


def _tracer():
    """The thread's ambient query tracer (usually ``TRACE_DISABLED``).

    Imported lazily and memoized: the query layer imports storage, so a
    module-level ``repro.query.tracing`` import here would be circular.
    After the first call this is one global read plus the thread-local
    lookup inside ``current_tracer``.
    """
    global _current_tracer
    if _current_tracer is None:
        from ..query.tracing import current_tracer

        _current_tracer = current_tracer
    return _current_tracer()


@dataclass
class CacheStats:
    """Counters describing what one :class:`BlockCache` did so far.

    ``hits`` includes waiters that piggybacked on another thread's in-flight
    load (they never ran the loader).  ``oversized`` counts loads whose entry
    exceeded the whole budget and was therefore returned uncached.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    oversized: int = 0
    current_bytes: int = 0
    current_entries: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def describe(self) -> str:
        return (
            f"{self.hits}/{self.requests} hits ({self.hit_rate:.0%}), "
            f"{self.evictions} evicted, {self.oversized} oversized, "
            f"{self.current_entries} entries / {self.current_bytes:,} bytes resident"
        )


@dataclass
class IOMetrics:
    """Bytes, blocks and column segments fetched from one table file.

    Cache hits never touch these counters.  ``bytes_read`` is the total
    fetched from the data region — full block segments plus column
    sub-segments; ``column_bytes_read``/``columns_read`` is the
    column-granular sub-account.  ``column_block_bytes`` accumulates the
    *whole-segment* size of every block that was served column-granularly
    (each block charged once), so ``column_bytes_read / column_block_bytes``
    is the read amplification column pruning avoided, and
    ``columns_skipped`` counts the column segments of those blocks that were
    never fetched.  ``prefetch_issued``/``prefetch_hits`` account the
    read-ahead pool: segments it scheduled, and demand fetches that found
    their segment already resident (or in flight) because of it.
    ``reads_coalesced`` counts the ``pread`` calls *saved* by merging
    byte-adjacent column segments into one ranged read (a run of *n*
    contiguous segments fetched together adds *n − 1*).
    """

    bytes_read: int = 0
    blocks_read: int = 0
    footer_bytes_read: int = 0
    columns_read: int = 0
    column_bytes_read: int = 0
    columns_skipped: int = 0
    column_block_bytes: int = 0
    prefetch_issued: int = 0
    prefetch_hits: int = 0
    reads_coalesced: int = 0
    #: Bumped by :meth:`reset` so owners of derived per-block state (the
    #: table reader's touched-column map) know to restart their accounting.
    epoch: int = field(default=0, compare=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    def record_block(self, n_bytes: int) -> None:
        with self._lock:
            self.bytes_read += int(n_bytes)
            self.blocks_read += 1

    def record_footer(self, n_bytes: int) -> None:
        with self._lock:
            self.footer_bytes_read += int(n_bytes)

    def record_column_block(self, block_bytes: int, n_columns: int) -> None:
        """First column fetch of a block: its whole segment becomes the
        baseline (``column_block_bytes``) and every column starts skipped."""
        with self._lock:
            self.column_block_bytes += int(block_bytes)
            self.columns_skipped += int(n_columns)

    def record_column(self, n_bytes: int, new_column: bool = True) -> None:
        with self._lock:
            self.bytes_read += int(n_bytes)
            self.column_bytes_read += int(n_bytes)
            self.columns_read += 1
            if new_column:
                self.columns_skipped -= 1

    def record_prefetch_issued(self, n_segments: int = 1) -> None:
        with self._lock:
            self.prefetch_issued += int(n_segments)

    def record_prefetch_hit(self) -> None:
        with self._lock:
            self.prefetch_hits += 1

    def record_coalesced(self, n_saved: int) -> None:
        with self._lock:
            self.reads_coalesced += int(n_saved)

    def reset(self) -> None:
        with self._lock:
            self.bytes_read = 0
            self.blocks_read = 0
            self.footer_bytes_read = 0
            self.columns_read = 0
            self.column_bytes_read = 0
            self.columns_skipped = 0
            self.column_block_bytes = 0
            self.prefetch_issued = 0
            self.prefetch_hits = 0
            self.reads_coalesced = 0
            self.epoch += 1

    def describe(self) -> str:
        return (
            f"{self.blocks_read} block(s) + {self.columns_read} column segment(s) / "
            f"{self.bytes_read:,} bytes read "
            f"({self.columns_skipped} column segment(s) skipped, "
            f"+{self.footer_bytes_read:,} footer bytes)"
        )


@dataclass(frozen=True)
class TenantOccupancy:
    """Resident footprint of one tenant (one relation) in a shared cache."""

    entries: int
    bytes: int


def _tenant_of(key: Hashable) -> Hashable:
    """The tenant a key belongs to: tuple keys group by their first element.

    Disk relations key entries as ``(cache_token, block, column)``, so the
    token is the tenant.  Non-tuple keys share a single anonymous tenant,
    which keeps the cache usable (and purely LRU) for ad-hoc keys.
    """
    if isinstance(key, tuple) and key:
        return key[0]
    return None


class _InFlight:
    """One pending load: waiters block on the event, then read value/error."""

    __slots__ = ("event", "value", "size", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: object = None
        self.size = 0
        self.error: BaseException | None = None


class _Entry:
    __slots__ = ("value", "size")

    def __init__(self, value, size: int) -> None:
        self.value = value
        self.size = size


class BlockCache:
    """A thread-safe, byte-budgeted LRU cache with single-flight loading.

    Parameters
    ----------
    budget_bytes:
        Maximum resident bytes; ``None`` means unbounded.  A budget of 0 is
        valid and caches nothing (every access reloads), which keeps queries
        correct even when one block exceeds the whole budget.
    """

    def __init__(self, budget_bytes: int | None = DEFAULT_CACHE_BYTES):
        if budget_bytes is not None and budget_bytes < 0:
            raise ValidationError("cache budget must be non-negative (or None)")
        self._budget = budget_bytes
        #: Per-tenant LRU maps, in tenant-arrival order (see ``_tenant_of``).
        self._tenants: OrderedDict[Hashable, OrderedDict[Hashable, _Entry]] = OrderedDict()
        #: Round-robin eviction cursor: index into the current tenant list.
        self._victim_cursor = 0
        self._loading: dict[Hashable, _InFlight] = {}
        self._lock = threading.Lock()
        self._stats = CacheStats()

    @property
    def budget_bytes(self) -> int | None:
        return self._budget

    @property
    def stats(self) -> CacheStats:
        return self._stats

    def __len__(self) -> int:
        with self._lock:
            return sum(len(entries) for entries in self._tenants.values())

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            entries = self._tenants.get(_tenant_of(key))
            return entries is not None and key in entries

    def _lookup(self, key: Hashable) -> "_Entry | None":
        """The entry for ``key``, with its recency refreshed (lock held)."""
        entries = self._tenants.get(_tenant_of(key))
        if entries is None:
            return None
        entry = entries.get(key)
        if entry is not None:
            entries.move_to_end(key)
        return entry

    def get(self, key: Hashable):
        """The cached value for ``key`` (refreshing its recency) or ``None``."""
        with self._lock:
            entry = self._lookup(key)
            return None if entry is None else entry.value

    def status(self, key: Hashable) -> str:
        """``"cached"``, ``"loading"`` (a loader is in flight) or ``"absent"``.

        A point-in-time probe that never blocks and never counts as a
        request; the read-ahead layer uses it to tell whether a demand fetch
        was saved by a prefetch already resident or in flight.
        """
        with self._lock:
            entries = self._tenants.get(_tenant_of(key))
            if entries is not None and key in entries:
                return "cached"
            if key in self._loading:
                return "loading"
            return "absent"

    def occupancy(self) -> dict[Hashable, TenantOccupancy]:
        """Resident entries/bytes per tenant (the budget-arbitration probe).

        Tenants are tuple keys' first elements — for disk relations, their
        ``cache_token`` — so a shared cache reports how its budget is split
        across the relations currently resident in it.
        """
        with self._lock:
            return {
                tenant: TenantOccupancy(
                    entries=len(entries),
                    bytes=sum(entry.size for entry in entries.values()),
                )
                for tenant, entries in self._tenants.items()
            }

    def get_or_load(self, key: Hashable, loader: Callable[[], tuple[V, int]]) -> V:
        """Return the cached value for ``key``, loading it at most once.

        ``loader`` returns ``(value, size_bytes)``; it runs outside the cache
        lock so loads of different keys overlap.  Concurrent callers for the
        same key wait for the first loader instead of duplicating the work
        (and count as hits — they never performed I/O).  Loader exceptions
        propagate to every waiter and cache nothing.
        """
        tracer = _tracer()
        with tracer.span("fetch") as span:
            while True:
                with self._lock:
                    entry = self._lookup(key)
                    if entry is not None:
                        self._stats.hits += 1
                        if tracer.enabled:
                            span.annotate(outcome="hit", bytes=entry.size)
                        return entry.value
                    flight = self._loading.get(key)
                    if flight is None:
                        flight = _InFlight()
                        self._loading[key] = flight
                        break
                flight.event.wait()
                if flight.error is None:
                    with self._lock:
                        self._stats.hits += 1
                    if tracer.enabled:
                        span.annotate(outcome="wait", bytes=flight.size)
                    return flight.value  # type: ignore[return-value]
                raise flight.error

            try:
                value, size = loader()
            except BaseException as error:
                flight.error = error
                with self._lock:
                    del self._loading[key]
                flight.event.set()
                raise
            flight.value = value
            flight.size = int(size)
            with self._lock:
                self._stats.misses += 1
                self._insert(key, value, flight.size)
                del self._loading[key]
            flight.event.set()
            if tracer.enabled:
                span.annotate(outcome="miss", bytes=flight.size)
            return value

    def _insert(self, key: Hashable, value, size: int) -> None:
        """Store one entry, evicting round-robin across tenants to fit.

        Must be called with the lock held.
        """
        if size < 0:
            raise ValidationError("cache entry size must be non-negative")
        if self._budget is not None and size > self._budget:
            self._stats.oversized += 1
            return
        entries = self._tenants.setdefault(_tenant_of(key), OrderedDict())
        previous = entries.get(key)
        if previous is not None:
            self._stats.current_bytes -= previous.size
            self._stats.current_entries -= 1
        entries[key] = _Entry(value, size)
        entries.move_to_end(key)
        self._stats.current_bytes += size
        self._stats.current_entries += 1
        if self._budget is None:
            return
        while self._stats.current_bytes > self._budget and self._tenants:
            self._evict_one()

    def _evict_one(self) -> None:
        """Evict the round-robin victim tenant's LRU entry (lock held).

        The cursor advances one tenant per eviction, so sustained pressure
        is spread across every resident tenant instead of draining the
        globally-oldest entries (which under mixed workloads all belong to
        whichever table went cold first).
        """
        tenants = list(self._tenants)
        self._victim_cursor %= len(tenants)
        tenant = tenants[self._victim_cursor]
        entries = self._tenants[tenant]
        _, evicted = entries.popitem(last=False)
        if not entries:
            # The tenant emptied out; removing it shifts the next tenant
            # into the cursor's slot, which is exactly one step of rotation.
            del self._tenants[tenant]
        else:
            self._victim_cursor += 1
        self._stats.current_bytes -= evicted.size
        self._stats.current_entries -= 1
        self._stats.evictions += 1

    def clear(self) -> None:
        """Drop every cached entry (in-flight loads are unaffected)."""
        with self._lock:
            self._tenants.clear()
            self._victim_cursor = 0
            self._stats.current_bytes = 0
            self._stats.current_entries = 0
