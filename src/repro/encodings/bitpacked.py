"""Frame-of-Reference (FOR) + bit-packing encoding.

This is one half of the paper's single-column baseline ("We use FOR- or
Dict-encoding schemes, followed by a bit-packing"): subtract the column
minimum (the *frame of reference*) so values become small non-negative
offsets, then pack those offsets at the minimal bit width.

Random access is O(1) per value — fetch the packed offset and add the frame —
which is exactly why the paper chooses FOR/Dict over RLE/Delta for its
baseline (no checkpoints needed).
"""

from __future__ import annotations

import numpy as np

from ..bitpack import BitPackedArray, required_bits
from ..dtypes import DataType
from ..errors import EncodingError
from .base import ColumnEncoding, EncodedColumn, ensure_int_array

__all__ = ["ForBitPackEncoding", "ForBitPackedColumn"]

#: Fixed per-column metadata: 8-byte frame value + 2 bytes (bit width, count).
_METADATA_BYTES = 8 + 2


class ForBitPackedColumn(EncodedColumn):
    """A column stored as (frame, bit-packed offsets)."""

    encoding_name = "for_bitpack"

    def __init__(self, values: np.ndarray):
        vals = ensure_int_array(values)
        self._frame = int(vals.min()) if vals.size else 0
        offsets = vals - self._frame
        width = required_bits(int(offsets.max())) if vals.size else 0
        self._packed = BitPackedArray.from_values(offsets, width)

    @property
    def frame(self) -> int:
        """The frame of reference (column minimum) added back on decode."""
        return self._frame

    @property
    def bit_width(self) -> int:
        """Bits per packed offset."""
        return self._packed.bit_width

    @property
    def n_values(self) -> int:
        return self._packed.n_values

    @property
    def size_bytes(self) -> int:
        return self._packed.size_bytes + _METADATA_BYTES

    def decode(self) -> np.ndarray:
        return self._packed.to_numpy() + self._frame

    def gather(self, positions: np.ndarray) -> np.ndarray:
        return self._packed.gather(positions) + self._frame

    # -- word-space comparisons -----------------------------------------------

    def compare_range(self, low: int | None, high: int | None) -> np.ndarray:
        """Row mask for ``low <= value <= high`` without decoding.

        The bounds are shifted by the frame of reference and compared in the
        packed word domain (:meth:`BitPackedArray.compare_range`), so a
        ``Between`` over a FOR column never materialises the decoded array.
        """
        lo = None if low is None else int(low) - self._frame
        hi = None if high is None else int(high) - self._frame
        return self._packed.compare_range(lo, hi)

    def compare_values(self, values) -> np.ndarray:
        """Row mask for ``value in values`` in the packed word domain."""
        return self._packed.compare_values([int(v) - self._frame for v in values])


class ForBitPackEncoding(ColumnEncoding):
    """Scheme wrapper for FOR + bit-packing on integer-like columns."""

    name = "for_bitpack"

    def encode(self, values, dtype: DataType) -> EncodedColumn:
        if not self.supports(dtype):
            raise EncodingError(
                f"FOR/bit-packing does not support {dtype.name} columns"
            )
        column = ForBitPackedColumn(values)
        column.encoding_name = self.name
        return column

    def supports(self, dtype: DataType) -> bool:
        return dtype.is_integer_like

    def estimate_size(self, values, dtype: DataType) -> int:
        """Closed-form size estimate without materialising the packed buffer."""
        vals = ensure_int_array(values)
        if vals.size == 0:
            return _METADATA_BYTES
        width = required_bits(int(vals.max() - vals.min()))
        return (vals.size * width + 7) // 8 + _METADATA_BYTES
