"""FSST-style string compression (simplified reimplementation).

FSST (Boncz, Neumann, Leis; VLDB 2020) compresses strings by replacing
frequent substrings of up to 8 bytes with 1-byte codes from a 255-entry
symbol table, keeping random access per string.  The paper lists FSST among
the established vertical schemes and uses dictionary encoding with a
flattened heap for its string baseline; we provide an FSST-like codec so the
best-of selector has a second string option and so dictionary heaps can be
stored compressed.

This is a faithful *functional* reimplementation (symbol table + greedy
longest-match encoding + escape byte), not a performance-tuned one: the goal
is correct sizes and correct per-string random access, which is what the
experiments need.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np

from ..dtypes import DataType
from ..errors import DecodingError, EncodingError
from .base import ColumnEncoding, EncodedColumn, ensure_strings

__all__ = ["FsstEncoding", "FsstEncodedColumn", "SymbolTable", "train_symbol_table"]

#: Escape code marking "next byte is a literal".
_ESCAPE = 255

#: Maximum number of learned symbols (code 255 is reserved for escapes).
_MAX_SYMBOLS = 255

#: Maximum symbol length in bytes, as in FSST.
_MAX_SYMBOL_LEN = 8

#: Fixed metadata: counts and table length.
_METADATA_BYTES = 16


class SymbolTable:
    """A learned table of byte-string symbols addressed by 1-byte codes."""

    def __init__(self, symbols: Sequence[bytes]):
        if len(symbols) > _MAX_SYMBOLS:
            raise EncodingError(
                f"symbol table supports at most {_MAX_SYMBOLS} symbols, "
                f"got {len(symbols)}"
            )
        for sym in symbols:
            if not 1 <= len(sym) <= _MAX_SYMBOL_LEN:
                raise EncodingError(
                    f"symbols must be 1..{_MAX_SYMBOL_LEN} bytes, got {sym!r}"
                )
        # Longest-first per first byte, so greedy matching finds maximal symbols.
        self._symbols = list(symbols)
        self._by_first_byte: dict[int, list[tuple[bytes, int]]] = {}
        for code, sym in enumerate(self._symbols):
            self._by_first_byte.setdefault(sym[0], []).append((sym, code))
        for candidates in self._by_first_byte.values():
            candidates.sort(key=lambda pair: len(pair[0]), reverse=True)

    def __len__(self) -> int:
        return len(self._symbols)

    def symbol(self, code: int) -> bytes:
        return self._symbols[code]

    @property
    def size_bytes(self) -> int:
        # One length byte per symbol plus the symbol payloads.
        return len(self._symbols) + sum(len(s) for s in self._symbols)

    def encode_bytes(self, data: bytes) -> bytes:
        """Greedy longest-match encoding of one string."""
        out = bytearray()
        i = 0
        n = len(data)
        while i < n:
            matched = False
            for sym, code in self._by_first_byte.get(data[i], ()):
                if data.startswith(sym, i):
                    out.append(code)
                    i += len(sym)
                    matched = True
                    break
            if not matched:
                out.append(_ESCAPE)
                out.append(data[i])
                i += 1
        return bytes(out)

    def decode_bytes(self, data: bytes) -> bytes:
        """Inverse of :meth:`encode_bytes`."""
        out = bytearray()
        i = 0
        n = len(data)
        while i < n:
            code = data[i]
            if code == _ESCAPE:
                if i + 1 >= n:
                    raise DecodingError("dangling escape byte in FSST payload")
                out.append(data[i + 1])
                i += 2
            else:
                if code >= len(self._symbols):
                    raise DecodingError(f"FSST code {code} out of table range")
                out.extend(self._symbols[code])
                i += 1
        return bytes(out)


def train_symbol_table(
    strings: Sequence[str], max_symbols: int = _MAX_SYMBOLS, sample_size: int = 4096
) -> SymbolTable:
    """Learn a symbol table from (a sample of) the input strings.

    A simplified single-pass trainer: count substrings of length 2..8 on a
    sample, score them by ``(length - 1) * frequency`` (bytes saved if the
    substring becomes a 1-byte code), and keep the best ``max_symbols``.
    The real FSST trainer iterates; one pass is enough for realistic sizes.
    """
    sample = strings[:sample_size]
    counter: Counter[bytes] = Counter()
    for s in sample:
        data = s.encode("utf-8")
        n = len(data)
        for length in range(2, _MAX_SYMBOL_LEN + 1):
            for start in range(0, n - length + 1):
                counter[data[start:start + length]] += 1
    # Also make sure frequent single bytes are representable without escapes.
    byte_counter: Counter[bytes] = Counter()
    for s in sample:
        for b in s.encode("utf-8"):
            byte_counter[bytes([b])] += 1

    scored = [
        (len(sym) - 1) * freq if len(sym) > 1 else freq // 2
        for sym, freq in counter.items()
    ]
    candidates = sorted(
        zip(counter.keys(), scored), key=lambda pair: pair[1], reverse=True
    )
    symbols = [sym for sym, score in candidates if score > 0][: max_symbols - 64]
    # Reserve the tail of the table for the most common single bytes so that
    # worst-case expansion stays bounded.
    common_bytes = [b for b, _ in byte_counter.most_common(max_symbols - len(symbols))]
    symbols.extend(b for b in common_bytes if b not in symbols)
    if not symbols:
        symbols = [b" "]
    return SymbolTable(symbols[:max_symbols])


class FsstEncodedColumn(EncodedColumn):
    """A string column stored as FSST-coded payload plus per-string offsets."""

    encoding_name = "fsst"

    def __init__(self, values: Sequence[str], table: SymbolTable | None = None):
        strings = ensure_strings(values)
        self._table = table if table is not None else train_symbol_table(strings)
        payload = bytearray()
        offsets = [0]
        for s in strings:
            payload.extend(self._table.encode_bytes(s.encode("utf-8")))
            offsets.append(len(payload))
        self._payload = bytes(payload)
        self._offsets = np.asarray(offsets, dtype=np.int64)

    @property
    def symbol_table(self) -> SymbolTable:
        return self._table

    @property
    def n_values(self) -> int:
        return int(self._offsets.size - 1)

    @property
    def size_bytes(self) -> int:
        # Payload + 4-byte offsets per string + symbol table + metadata.
        return (
            len(self._payload)
            + 4 * self._offsets.size
            + self._table.size_bytes
            + _METADATA_BYTES
        )

    def _decode_one(self, index: int) -> str:
        start, end = self._offsets[index], self._offsets[index + 1]
        return self._table.decode_bytes(self._payload[start:end]).decode("utf-8")

    def decode(self) -> list[str]:
        return [self._decode_one(i) for i in range(self.n_values)]

    def gather(self, positions: np.ndarray) -> list[str]:
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size and (pos.min() < 0 or pos.max() >= self.n_values):
            raise DecodingError("gather positions out of range")
        return [self._decode_one(int(p)) for p in pos]


class FsstEncoding(ColumnEncoding):
    """Scheme wrapper for FSST-style compression of string columns."""

    name = "fsst"

    def encode(self, values, dtype: DataType) -> EncodedColumn:
        if not self.supports(dtype):
            raise EncodingError(f"FSST only supports string columns, got {dtype.name}")
        column = FsstEncodedColumn(values)
        column.encoding_name = self.name
        return column

    def supports(self, dtype: DataType) -> bool:
        return dtype.is_string
