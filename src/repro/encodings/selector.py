"""Best-of single-column encoding selection.

The paper's baseline is "the best single-column encoding scheme for each
column … FOR- or Dict-encoding schemes, followed by a bit-packing", chosen
because they preserve O(1) random access.  :class:`BestOfSelector` implements
that policy (and, optionally, a wider search over all registered vertical
schemes for size-only comparisons).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..dtypes import DataType
from ..errors import EncodingError, UnknownEncodingError
from .base import ColumnEncoding, EncodedColumn
from .bitpacked import ForBitPackEncoding
from .delta import DeltaEncoding
from .dictionary import DictionaryEncoding
from .frequency import FrequencyEncoding
from .fsst import FsstEncoding
from .plain import PlainEncoding
from .rle import RleEncoding

__all__ = [
    "BestOfSelector",
    "SelectionResult",
    "default_random_access_schemes",
    "all_schemes",
    "scheme_by_name",
]


def default_random_access_schemes() -> list[ColumnEncoding]:
    """The paper's baseline candidates: FOR+bit-pack and Dictionary."""
    return [ForBitPackEncoding(), DictionaryEncoding()]


def all_schemes() -> list[ColumnEncoding]:
    """Every vertical scheme implemented in this library."""
    return [
        PlainEncoding(),
        ForBitPackEncoding(),
        DictionaryEncoding(),
        DeltaEncoding(),
        RleEncoding(),
        FrequencyEncoding(),
        FsstEncoding(),
    ]


def scheme_by_name(name: str) -> ColumnEncoding:
    """Look up a vertical scheme instance by its registry name."""
    for scheme in all_schemes():
        if scheme.name == name:
            return scheme
    raise UnknownEncodingError(name, tuple(s.name for s in all_schemes()))


@dataclass
class SelectionResult:
    """Outcome of a best-of selection for one column."""

    column: EncodedColumn
    scheme_name: str
    candidate_sizes: dict[str, int]

    @property
    def size_bytes(self) -> int:
        return self.column.size_bytes


class BestOfSelector:
    """Pick the smallest applicable encoding from a candidate set.

    Parameters
    ----------
    schemes:
        Candidate encodings.  Defaults to the paper's random-access-friendly
        baseline (FOR+bit-pack, Dictionary).
    """

    def __init__(self, schemes: Iterable[ColumnEncoding] | None = None):
        self._schemes = list(schemes) if schemes is not None else default_random_access_schemes()
        if not self._schemes:
            raise EncodingError("BestOfSelector needs at least one candidate scheme")

    @property
    def scheme_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self._schemes)

    def select(self, values: Sequence, dtype: DataType) -> SelectionResult:
        """Encode ``values`` with every applicable candidate and keep the smallest."""
        best: EncodedColumn | None = None
        best_name = ""
        sizes: dict[str, int] = {}
        for scheme in self._schemes:
            if not scheme.supports(dtype):
                continue
            encoded = scheme.encode(values, dtype)
            sizes[scheme.name] = encoded.size_bytes
            if best is None or encoded.size_bytes < best.size_bytes:
                best = encoded
                best_name = scheme.name
        if best is None:
            raise EncodingError(
                f"no candidate scheme supports columns of type {dtype.name}"
            )
        return SelectionResult(column=best, scheme_name=best_name, candidate_sizes=sizes)

    def best_size(self, values: Sequence, dtype: DataType) -> int:
        """Smallest achievable size without keeping the encoded column."""
        best_size: int | None = None
        for scheme in self._schemes:
            if not scheme.supports(dtype):
                continue
            size = scheme.estimate_size(values, dtype)
            if best_size is None or size < best_size:
                best_size = size
        if best_size is None:
            raise EncodingError(
                f"no candidate scheme supports columns of type {dtype.name}"
            )
        return best_size
