"""Plain (uncompressed) encoding.

Stores values verbatim.  This is the "uncompressed" configuration of the
paper's latency experiments (Figs. 6 and 7): no decoding work at query time,
but also no size reduction.  Integer-like values occupy the logical type's
byte width; strings occupy one offset per row plus the character payload.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..dtypes import DataType
from ..errors import DecodingError
from .base import ColumnEncoding, EncodedColumn, ensure_int_array, ensure_strings

__all__ = ["PlainEncoding", "PlainEncodedColumn", "PlainStringColumn"]


class PlainEncodedColumn(EncodedColumn):
    """Uncompressed integer-like column."""

    encoding_name = "plain"

    def __init__(self, values: np.ndarray, dtype: DataType):
        self._values = ensure_int_array(values)
        self._dtype = dtype

    @property
    def n_values(self) -> int:
        return int(self._values.size)

    @property
    def size_bytes(self) -> int:
        return self._dtype.uncompressed_size(self.n_values)

    def decode(self) -> np.ndarray:
        return self._values.copy()

    def gather(self, positions: np.ndarray) -> np.ndarray:
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size and (pos.min() < 0 or pos.max() >= self.n_values):
            raise DecodingError("gather positions out of range")
        return self._values[pos]


class PlainStringColumn(EncodedColumn):
    """Uncompressed string column: offsets plus character payload."""

    encoding_name = "plain"

    def __init__(self, values: Sequence[str]):
        self._values = ensure_strings(values)
        self._payload_bytes = sum(len(s.encode("utf-8")) for s in self._values)

    @property
    def n_values(self) -> int:
        return len(self._values)

    @property
    def size_bytes(self) -> int:
        # One 8-byte offset per value plus the UTF-8 payload.
        return 8 * self.n_values + self._payload_bytes

    def decode(self) -> list[str]:
        return list(self._values)

    def gather(self, positions: np.ndarray) -> list[str]:
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size and (pos.min() < 0 or pos.max() >= self.n_values):
            raise DecodingError("gather positions out of range")
        return [self._values[int(p)] for p in pos]


class PlainEncoding(ColumnEncoding):
    """Scheme wrapper producing plain columns for any logical type."""

    name = "plain"

    def encode(self, values, dtype: DataType) -> EncodedColumn:
        if dtype.is_string:
            column = PlainStringColumn(values)
        else:
            column = PlainEncodedColumn(values, dtype)
        column.encoding_name = self.name
        return column

    def supports(self, dtype: DataType) -> bool:
        return True
