"""Delta encoding with periodic checkpoints.

Stores each value as the difference to its predecessor, zig-zag mapped to an
unsigned domain and bit-packed.  Because reconstructing position ``i``
requires a prefix sum, Delta is *not* random-access friendly — the paper
explicitly excludes it from its baseline for this reason ("both RLE and Delta
require checkpoints").  We implement the checkpointed variant anyway so the
baseline selector can demonstrate *why* FOR/Dict wins for the latency
experiments, and so the size comparison is honest when Delta happens to be
smaller.
"""

from __future__ import annotations

import numpy as np

from ..bitpack import BitPackedArray, required_bits
from ..dtypes import DataType
from ..errors import EncodingError
from .base import ColumnEncoding, EncodedColumn, ensure_int_array

__all__ = ["DeltaEncoding", "DeltaEncodedColumn", "zigzag_encode", "zigzag_decode"]

#: Default distance between checkpoints (absolute values stored verbatim).
DEFAULT_CHECKPOINT_INTERVAL = 1024

#: Fixed metadata: counts, bit width, checkpoint interval.
_METADATA_BYTES = 16


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed integers to unsigned ones: 0,-1,1,-2,2 -> 0,1,2,3,4."""
    vals = np.asarray(values, dtype=np.int64)
    return ((vals << 1) ^ (vals >> 63)).astype(np.int64)


def zigzag_decode(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    vals = np.asarray(values, dtype=np.int64)
    return (vals >> 1) ^ -(vals & 1)


class DeltaEncodedColumn(EncodedColumn):
    """Delta-encoded column with checkpoints every ``checkpoint_interval`` rows."""

    encoding_name = "delta"

    def __init__(self, values: np.ndarray, checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL):
        if checkpoint_interval < 1:
            raise EncodingError("checkpoint interval must be at least 1")
        vals = ensure_int_array(values)
        self._interval = int(checkpoint_interval)
        self._n = int(vals.size)

        if self._n:
            deltas = np.diff(vals, prepend=vals[:1])
            deltas[0] = 0
            zz = zigzag_encode(deltas)
            width = required_bits(int(zz.max())) if zz.size else 0
            self._deltas = BitPackedArray.from_values(zz, width)
            self._checkpoints = vals[:: self._interval].copy()
        else:
            self._deltas = BitPackedArray.from_values(np.zeros(0, dtype=np.int64), 0)
            self._checkpoints = np.zeros(0, dtype=np.int64)

    @property
    def checkpoint_interval(self) -> int:
        return self._interval

    @property
    def bit_width(self) -> int:
        return self._deltas.bit_width

    @property
    def n_values(self) -> int:
        return self._n

    @property
    def size_bytes(self) -> int:
        return (
            self._deltas.size_bytes
            + self._checkpoints.size * 8
            + _METADATA_BYTES
        )

    def decode(self) -> np.ndarray:
        if self._n == 0:
            return np.zeros(0, dtype=np.int64)
        deltas = zigzag_decode(self._deltas.to_numpy())
        return self._decode_segmented(deltas)

    def _decode_segmented(self, deltas: np.ndarray) -> np.ndarray:
        out = np.empty(self._n, dtype=np.int64)
        for seg_index, start in enumerate(range(0, self._n, self._interval)):
            end = min(start + self._interval, self._n)
            seg = deltas[start:end].copy()
            seg[0] = self._checkpoints[seg_index]
            out[start:end] = np.cumsum(seg)
        return out

    # -- word-space comparisons -----------------------------------------------

    def is_monotonic(self) -> bool:
        """Whether the column is non-decreasing (no negative delta).

        Zig-zag maps negative deltas to odd codes, so monotonicity is a
        single parity scan over the packed deltas — no prefix sum.  Memoized
        under a ``_cached`` attribute (excluded from serialization).
        """
        cached = getattr(self, "_cached_monotonic", None)
        if cached is None:
            if self._n == 0:
                cached = True
            else:
                cached = not bool(np.any(self._deltas.to_numpy() & 1))
            self._cached_monotonic = cached
        return cached

    def _segment(self, seg_index: int) -> np.ndarray:
        """Decode exactly one checkpoint segment to values."""
        start = seg_index * self._interval
        end = min(start + self._interval, self._n)
        seg = zigzag_decode(self._deltas.gather(np.arange(start, end)))
        seg[0] = self._checkpoints[seg_index]
        return np.cumsum(seg)

    def searchsorted(self, value: int, side: str = "left") -> int:
        """Insertion point of ``value`` via the checkpoint index.

        Only meaningful when :meth:`is_monotonic` holds: a binary search over
        the checkpoints narrows the answer to one segment, and only that
        segment's deltas are decoded.
        """
        if self._n == 0:
            return 0
        j = int(np.searchsorted(self._checkpoints, value, side=side))
        seg_index = max(j - 1, 0)
        local = int(np.searchsorted(self._segment(seg_index), value, side=side))
        return seg_index * self._interval + local

    def compare_range(self, low: int | None, high: int | None) -> np.ndarray | None:
        """Row mask for ``low <= value <= high`` via the checkpoint index.

        On a monotonic column the matches form one contiguous span, found by
        two checkpoint searches that each decode a single segment — the full
        array is never materialised.  Returns ``None`` for non-monotonic
        columns (the caller falls back to the decode path).
        """
        if not self.is_monotonic():
            return None
        mask = np.zeros(self._n, dtype=bool)
        if self._n == 0:
            return mask
        lo_idx = 0 if low is None else self.searchsorted(int(low), "left")
        hi_idx = self._n if high is None else self.searchsorted(int(high), "right")
        if hi_idx > lo_idx:
            mask[lo_idx:hi_idx] = True
        return mask

    def compare_values(self, values) -> np.ndarray | None:
        """Row mask for ``value in values`` (monotonic columns only)."""
        if not self.is_monotonic():
            return None
        mask = np.zeros(self._n, dtype=bool)
        if self._n == 0:
            return mask
        for value in values:
            lo_idx = self.searchsorted(int(value), "left")
            hi_idx = self.searchsorted(int(value), "right")
            if hi_idx > lo_idx:
                mask[lo_idx:hi_idx] = True
        return mask

    def gather(self, positions: np.ndarray) -> np.ndarray:
        """Positional access by decoding from the nearest checkpoint.

        This is intentionally more expensive than FOR/Dict access — each
        lookup decodes up to ``checkpoint_interval`` deltas — which is the
        cost the paper's baseline avoids.
        """
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size == 0:
            return np.zeros(0, dtype=np.int64)
        if pos.min() < 0 or pos.max() >= self._n:
            raise EncodingError("gather positions out of range")
        out = np.empty(pos.size, dtype=np.int64)
        # Group positions by checkpoint segment so each segment is decoded once.
        segments = pos // self._interval
        order = np.argsort(segments, kind="stable")
        sorted_seg = segments[order]
        boundaries = np.flatnonzero(np.diff(sorted_seg)) + 1
        for chunk in np.split(np.arange(pos.size)[order], boundaries):
            seg_index = int(segments[chunk[0]])
            start = seg_index * self._interval
            end = min(start + self._interval, self._n)
            zz = self._deltas.gather(np.arange(start, end))
            seg = zigzag_decode(zz)
            seg[0] = self._checkpoints[seg_index]
            decoded = np.cumsum(seg)
            out[chunk] = decoded[pos[chunk] - start]
        # Caller order is preserved: chunks were built from original indices.
        return out


class DeltaEncoding(ColumnEncoding):
    """Scheme wrapper for checkpointed delta encoding on integer-like columns."""

    name = "delta"

    def __init__(self, checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL):
        self.checkpoint_interval = checkpoint_interval

    def encode(self, values, dtype: DataType) -> EncodedColumn:
        if not self.supports(dtype):
            raise EncodingError(f"delta encoding does not support {dtype.name} columns")
        column = DeltaEncodedColumn(values, self.checkpoint_interval)
        column.encoding_name = self.name
        return column

    def supports(self, dtype: DataType) -> bool:
        return dtype.is_integer_like
