"""Frequency encoding (hot values + exception list).

A classic scheme mentioned in the paper's opening list of ad-hoc vertical
encodings: the top-``k`` most frequent values get short codes; everything
else becomes an exception stored verbatim in a side table.  It is most useful
on heavily skewed columns (a handful of values covering nearly all rows).

The exception region here doubles as a small-scale preview of the outlier
storage architecture that the Corra multi-reference encoding formalises in
:mod:`repro.core.outliers`.
"""

from __future__ import annotations

import numpy as np

from ..bitpack import BitPackedArray, required_bits
from ..dtypes import DataType
from ..errors import EncodingError
from .base import ColumnEncoding, EncodedColumn, ensure_int_array

__all__ = ["FrequencyEncoding", "FrequencyEncodedColumn"]

#: Fixed metadata: counts, widths, hot-set size.
_METADATA_BYTES = 16

#: Default number of "hot" values receiving short codes.
DEFAULT_HOT_VALUES = 255


class FrequencyEncodedColumn(EncodedColumn):
    """Hot values get dictionary codes; cold rows go to an exception list."""

    encoding_name = "frequency"

    def __init__(self, values: np.ndarray, n_hot: int = DEFAULT_HOT_VALUES):
        if n_hot < 1:
            raise EncodingError("frequency encoding needs at least one hot value")
        vals = ensure_int_array(values)
        self._n = int(vals.size)
        if self._n == 0:
            self._hot_values = np.zeros(0, dtype=np.int64)
            self._codes = BitPackedArray.from_values(np.zeros(0, dtype=np.int64), 0)
            self._exception_positions = np.zeros(0, dtype=np.int64)
            self._exception_values = np.zeros(0, dtype=np.int64)
            return

        uniques, counts = np.unique(vals, return_counts=True)
        order = np.argsort(counts)[::-1]
        hot = uniques[order[:n_hot]]
        self._hot_values = np.sort(hot)

        hot_index = np.searchsorted(self._hot_values, vals)
        hot_index = np.clip(hot_index, 0, len(self._hot_values) - 1)
        is_hot = self._hot_values[hot_index] == vals

        # Code 0..len(hot)-1 for hot rows; exceptions keep code 0 and are
        # overridden at decode time via the exception list.
        codes = np.where(is_hot, hot_index, 0).astype(np.int64)
        width = required_bits(len(self._hot_values) - 1) if len(self._hot_values) else 0
        self._codes = BitPackedArray.from_values(codes, width)
        self._exception_positions = np.flatnonzero(~is_hot).astype(np.int64)
        self._exception_values = vals[~is_hot].astype(np.int64)

    @property
    def n_exceptions(self) -> int:
        return int(self._exception_positions.size)

    @property
    def n_values(self) -> int:
        return self._n

    @property
    def size_bytes(self) -> int:
        return (
            self._codes.size_bytes
            + self._hot_values.size * 8
            + self.n_exceptions * (4 + 8)  # 4-byte row id + 8-byte value
            + _METADATA_BYTES
        )

    def decode(self) -> np.ndarray:
        if self._n == 0:
            return np.zeros(0, dtype=np.int64)
        out = self._hot_values[self._codes.to_numpy()]
        out[self._exception_positions] = self._exception_values
        return out

    def evaluate_hot(self, fn) -> np.ndarray:
        """Row mask for an element-wise predicate, evaluated in code space.

        ``fn`` maps an ``int64`` value array to a boolean mask.  It runs over
        the (at most ``n_hot``) hot values and the exception values only; the
        verdicts fan out to rows through the packed codes, so the value array
        itself is never materialised.
        """
        if self._n == 0:
            return np.zeros(0, dtype=bool)
        hot_mask = np.asarray(fn(self._hot_values), dtype=bool)
        out = hot_mask[self._codes.to_numpy()]
        if self.n_exceptions:
            out[self._exception_positions] = np.asarray(
                fn(self._exception_values), dtype=bool
            )
        return out

    def gather(self, positions: np.ndarray) -> np.ndarray:
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size == 0:
            return np.zeros(0, dtype=np.int64)
        if pos.min() < 0 or pos.max() >= self._n:
            raise EncodingError("gather positions out of range")
        out = self._hot_values[self._codes.gather(pos)]
        if self.n_exceptions:
            exc_idx = np.searchsorted(self._exception_positions, pos)
            exc_idx = np.clip(exc_idx, 0, self.n_exceptions - 1)
            hit = self._exception_positions[exc_idx] == pos
            out[hit] = self._exception_values[exc_idx[hit]]
        return out


class FrequencyEncoding(ColumnEncoding):
    """Scheme wrapper for frequency encoding on integer-like columns."""

    name = "frequency"

    def __init__(self, n_hot: int = DEFAULT_HOT_VALUES):
        self.n_hot = n_hot

    def encode(self, values, dtype: DataType) -> EncodedColumn:
        if not self.supports(dtype):
            raise EncodingError(
                f"frequency encoding does not support {dtype.name} columns"
            )
        column = FrequencyEncodedColumn(values, self.n_hot)
        column.encoding_name = self.name
        return column

    def supports(self, dtype: DataType) -> bool:
        return dtype.is_integer_like
