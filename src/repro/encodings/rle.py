"""Run-Length Encoding (RLE) with run-start checkpoints.

Consecutive equal values are collapsed into (value, run length) pairs.  RLE
shines on sorted or low-cardinality columns but, like Delta, needs a
binary search over run start positions for random access — the reason the
paper keeps it out of the latency baseline.  It participates in the size
comparison through the best-of selector.
"""

from __future__ import annotations

import numpy as np

from ..bitpack import BitPackedArray, required_bits
from ..dtypes import DataType
from ..errors import EncodingError
from .base import ColumnEncoding, EncodedColumn, ensure_int_array

__all__ = ["RleEncoding", "RleEncodedColumn"]

#: Fixed metadata: counts, widths.
_METADATA_BYTES = 16


class RleEncodedColumn(EncodedColumn):
    """A column stored as bit-packed run values and run start positions."""

    encoding_name = "rle"

    def __init__(self, values: np.ndarray):
        vals = ensure_int_array(values)
        self._n = int(vals.size)
        if self._n == 0:
            self._run_values = BitPackedArray.from_values(np.zeros(0, dtype=np.int64), 0)
            self._run_starts = np.zeros(0, dtype=np.int64)
            self._frame = 0
            return
        change = np.flatnonzero(np.diff(vals)) + 1
        starts = np.concatenate([[0], change])
        run_vals = vals[starts]
        self._frame = int(run_vals.min())
        shifted = run_vals - self._frame
        width = required_bits(int(shifted.max())) if shifted.size else 0
        self._run_values = BitPackedArray.from_values(shifted, width)
        self._run_starts = starts.astype(np.int64)

    @property
    def n_runs(self) -> int:
        return int(self._run_starts.size)

    @property
    def run_starts(self) -> np.ndarray:
        """Block-local start position of each run (sorted, starts at 0)."""
        return self._run_starts

    def run_values(self) -> np.ndarray:
        """The decoded value of each run.

        Memoized under a ``_cached`` attribute (excluded from serialization)
        so run-space kernels pay the small unpack once per column.
        """
        cached = getattr(self, "_cached_run_values", None)
        if cached is None:
            cached = self._run_values.to_numpy() + self._frame
            self._cached_run_values = cached
        return cached

    def run_lengths(self) -> np.ndarray:
        """The length of each run (memoized alongside :meth:`run_values`)."""
        cached = getattr(self, "_cached_run_lengths", None)
        if cached is None:
            cached = np.diff(np.concatenate([self._run_starts, [self._n]])).astype(np.int64)
            self._cached_run_lengths = cached
        return cached

    def expand_run_mask(self, run_mask: np.ndarray) -> np.ndarray:
        """Fan a per-run verdict out to a per-row boolean mask."""
        return np.repeat(np.asarray(run_mask, dtype=bool), self.run_lengths())

    @property
    def n_values(self) -> int:
        return self._n

    @property
    def size_bytes(self) -> int:
        # Run starts stored as 4-byte integers (block-local row ids).
        return self._run_values.size_bytes + self.n_runs * 4 + _METADATA_BYTES

    def decode(self) -> np.ndarray:
        if self._n == 0:
            return np.zeros(0, dtype=np.int64)
        run_vals = self._run_values.to_numpy() + self._frame
        lengths = np.diff(np.concatenate([self._run_starts, [self._n]]))
        return np.repeat(run_vals, lengths)

    def gather(self, positions: np.ndarray) -> np.ndarray:
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size == 0:
            return np.zeros(0, dtype=np.int64)
        if pos.min() < 0 or pos.max() >= self._n:
            raise EncodingError("gather positions out of range")
        run_index = np.searchsorted(self._run_starts, pos, side="right") - 1
        return self._run_values.gather(run_index) + self._frame


class RleEncoding(ColumnEncoding):
    """Scheme wrapper for run-length encoding on integer-like columns."""

    name = "rle"

    def encode(self, values, dtype: DataType) -> EncodedColumn:
        if not self.supports(dtype):
            raise EncodingError(f"RLE does not support {dtype.name} columns")
        column = RleEncodedColumn(values)
        column.encoding_name = self.name
        return column

    def supports(self, dtype: DataType) -> bool:
        return dtype.is_integer_like
