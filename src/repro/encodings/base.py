"""Abstract interfaces shared by all single-column (vertical) encodings.

Two concepts:

* :class:`ColumnEncoding` — a *scheme*: something that can look at the values
  of a column and produce a compressed representation.
* :class:`EncodedColumn` — the compressed representation itself.  It knows
  its compressed size (including any metadata, as the paper's Table 2 does),
  can decode the full column, and supports *random access* via
  :meth:`EncodedColumn.gather`, which is the operation the query latency
  experiments exercise.

Horizontal (correlation-aware) encodings in :mod:`repro.core` implement the
same :class:`EncodedColumn` interface, except that their ``gather`` needs the
decoded reference values as well; they therefore expose
``gather_with_reference``.  Keeping one interface lets the query engine and
the benchmark harness treat vertical and horizontal encodings uniformly.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from ..dtypes import DataType
from ..errors import EncodingError

__all__ = ["ColumnEncoding", "EncodedColumn", "ensure_int_array", "ensure_strings"]


def ensure_int_array(values: np.ndarray | Sequence[int]) -> np.ndarray:
    """Coerce input values to an ``int64`` array, rejecting non-integers."""
    arr = np.asarray(values)
    if arr.dtype.kind == "f":
        raise EncodingError(
            "integer encoding applied to floating-point values; convert to "
            "fixed-point first (see repro.dtypes.decimal_to_cents)"
        )
    if arr.dtype.kind not in "iu":
        raise EncodingError(
            f"integer encoding applied to values of dtype {arr.dtype}"
        )
    return arr.astype(np.int64, copy=False)


def ensure_strings(values: Sequence) -> list[str]:
    """Coerce input values to a list of Python strings."""
    out = []
    for v in values:
        if not isinstance(v, str):
            raise EncodingError(
                f"string encoding applied to non-string value {v!r}"
            )
        out.append(v)
    return out


class EncodedColumn(abc.ABC):
    """A compressed column supporting full decode and positional access."""

    #: Name of the scheme that produced this column (set by the encoder).
    encoding_name: str = "unknown"

    @property
    @abc.abstractmethod
    def n_values(self) -> int:
        """Number of logical values stored in the column."""

    @property
    @abc.abstractmethod
    def size_bytes(self) -> int:
        """Compressed size in bytes, *including* metadata (dictionaries,
        offsets arrays, outlier regions, ...)."""

    @abc.abstractmethod
    def decode(self) -> np.ndarray | list[str]:
        """Decode and return every value of the column."""

    @abc.abstractmethod
    def gather(self, positions: np.ndarray) -> np.ndarray | list[str]:
        """Decode only the values at the given row positions."""

    def __len__(self) -> int:
        return self.n_values

    def compression_ratio(self, uncompressed_bytes: int) -> float:
        """Compressed size relative to ``uncompressed_bytes`` (lower is better)."""
        if uncompressed_bytes <= 0:
            raise EncodingError("uncompressed size must be positive")
        return self.size_bytes / uncompressed_bytes

    def saving_rate(self, baseline_bytes: int) -> float:
        """Fractional size saving over a baseline, as reported in Table 2.

        ``saving_rate = 1 - size / baseline``; e.g. 0.583 means the column
        shrank by 58.3 % relative to the baseline encoding.
        """
        if baseline_bytes <= 0:
            raise EncodingError("baseline size must be positive")
        return 1.0 - self.size_bytes / baseline_bytes


class ColumnEncoding(abc.ABC):
    """A single-column encoding scheme (the *vertical* encodings of §1)."""

    #: Registry/reporting name, e.g. ``"for_bitpack"`` or ``"dictionary"``.
    name: str = "abstract"

    @abc.abstractmethod
    def encode(self, values, dtype: DataType) -> EncodedColumn:
        """Compress ``values`` (whose logical type is ``dtype``)."""

    @abc.abstractmethod
    def supports(self, dtype: DataType) -> bool:
        """Whether this scheme can encode columns of the given logical type."""

    def estimate_size(self, values, dtype: DataType) -> int:
        """Compressed size this scheme would achieve on ``values``.

        The default implementation simply encodes and measures; schemes with
        a cheaper closed-form estimate may override this.  The optimizer in
        :mod:`repro.core.optimizer` relies on this method to build its cost
        graph.
        """
        return self.encode(values, dtype).size_bytes

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
