"""Single-column (vertical) encoding schemes.

These are the substrate the paper builds on and compares against: Plain,
FOR + bit-packing, Dictionary (with a flattened string heap), Delta, RLE,
Frequency, and an FSST-style string codec, plus :class:`BestOfSelector`,
which reproduces the paper's "best single-column scheme per column" baseline.
"""

from .base import ColumnEncoding, EncodedColumn
from .bitpacked import ForBitPackedColumn, ForBitPackEncoding
from .delta import DeltaEncodedColumn, DeltaEncoding
from .dictionary import (
    DictEncodedIntColumn,
    DictEncodedStringColumn,
    DictionaryEncoding,
    StringHeap,
)
from .frequency import FrequencyEncodedColumn, FrequencyEncoding
from .fsst import FsstEncodedColumn, FsstEncoding, SymbolTable, train_symbol_table
from .plain import PlainEncodedColumn, PlainEncoding, PlainStringColumn
from .rle import RleEncodedColumn, RleEncoding
from .selector import (
    BestOfSelector,
    SelectionResult,
    all_schemes,
    default_random_access_schemes,
    scheme_by_name,
)

__all__ = [
    "ColumnEncoding",
    "EncodedColumn",
    "PlainEncoding",
    "PlainEncodedColumn",
    "PlainStringColumn",
    "ForBitPackEncoding",
    "ForBitPackedColumn",
    "DictionaryEncoding",
    "DictEncodedIntColumn",
    "DictEncodedStringColumn",
    "StringHeap",
    "DeltaEncoding",
    "DeltaEncodedColumn",
    "RleEncoding",
    "RleEncodedColumn",
    "FrequencyEncoding",
    "FrequencyEncodedColumn",
    "FsstEncoding",
    "FsstEncodedColumn",
    "SymbolTable",
    "train_symbol_table",
    "BestOfSelector",
    "SelectionResult",
    "all_schemes",
    "default_random_access_schemes",
    "scheme_by_name",
]
