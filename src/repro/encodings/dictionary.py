"""Dictionary encoding for integer and string columns.

The second half of the paper's single-column baseline.  Distinct values are
collected into a dictionary; each row stores a bit-packed code indexing that
dictionary.  For strings, the distinct values are packed into a *flattened*
character array with an offsets array ("we use Dict encoding and pack the
distinct strings into a flattened array"), mirroring the paper's setup.

Random access stays O(1): fetch the packed code, then one dictionary lookup.

Both dictionary columns additionally expose a *code-space* API used by the
query layer for dictionary-domain predicate evaluation: :meth:`codes` returns
the raw per-row dictionary codes, :meth:`lookup_codes` translates a small
set of candidate values into the codes they map to (values absent from the
dictionary simply translate to nothing), and :meth:`lookup_code_range` maps
an inclusive value range to the contiguous half-open code interval covering
it.  Because the dictionaries are kept sorted, every translation is a binary
search — for strings this touches ``O(log n_distinct)`` heap entries per
candidate/bound and never materialises the per-row strings, which is what
lets ``Eq``/``In``/``Between`` predicates run as integer kernels over packed
codes without decoding the :class:`StringHeap`.
"""

from __future__ import annotations

import bisect
import math
from typing import Sequence

import numpy as np

from ..bitpack import BitPackedArray, required_bits
from ..dtypes import DataType
from ..errors import DecodingError, EncodingError
from .base import ColumnEncoding, EncodedColumn, ensure_int_array, ensure_strings

__all__ = [
    "DictionaryEncoding",
    "DictEncodedIntColumn",
    "DictEncodedStringColumn",
    "StringHeap",
]

#: Per-column fixed metadata: counts, bit width, dictionary length.
_METADATA_BYTES = 16


class StringHeap:
    """Distinct strings stored as one flattened UTF-8 buffer plus offsets.

    This is the physical layout the paper uses for string dictionaries; its
    size (payload + one 4-byte offset per distinct string) is charged to the
    compressed column size.
    """

    def __init__(self, distinct: Sequence[str]):
        self._strings = list(distinct)
        payload = bytearray()
        offsets = [0]
        for s in self._strings:
            payload.extend(s.encode("utf-8"))
            offsets.append(len(payload))
        self._payload = bytes(payload)
        self._offsets = np.asarray(offsets, dtype=np.int64)

    def __len__(self) -> int:
        return len(self._strings)

    def __getitem__(self, index: int) -> str:
        return self.key_bytes(index).decode("utf-8")

    def key_bytes(self, index: int) -> bytes:
        """The raw UTF-8 payload slice of one entry, without decoding it.

        UTF-8 byte order equals code-point order, so these slices compare
        and hash exactly like the decoded strings — hash aggregation can
        group on them and defer the actual string materialisation to one
        decode per distinct group.
        """
        start, end = self._offsets[index], self._offsets[index + 1]
        return self._payload[start:end]

    def lookup_many(self, indices: np.ndarray) -> list[str]:
        """Materialise the strings at the given dictionary indices."""
        return [self[int(i)] for i in np.asarray(indices)]

    def find(self, value: str) -> int | None:
        """Binary-search the heap for ``value``; its index or ``None``.

        Requires the heap to have been built over sorted distinct strings
        (which :class:`DictEncodedStringColumn` guarantees).  Only the
        ``O(log n)`` probed entries are decoded — the heap is never
        materialised in full.
        """
        index = self.bisect_left(value)
        if index < len(self._strings) and self[index] == value:
            return index
        return None

    def bisect_left(self, value: str) -> int:
        """Index of the first entry ``>= value`` (requires a sorted heap).

        The heap implements the sequence protocol, so the stdlib search
        probes (and decodes) only ``O(log n)`` entries.
        """
        return bisect.bisect_left(self, value)

    def bisect_right(self, value: str) -> int:
        """Index one past the last entry ``<= value`` (requires a sorted heap)."""
        return bisect.bisect_right(self, value)

    @property
    def size_bytes(self) -> int:
        # Payload plus a 4-byte offset per entry (plus the terminating offset).
        return len(self._payload) + 4 * (len(self._strings) + 1)

    def all_strings(self) -> list[str]:
        return [self[i] for i in range(len(self._strings))]


class DictEncodedIntColumn(EncodedColumn):
    """Dictionary-encoded integer-like column: codes + int64 dictionary."""

    encoding_name = "dictionary"

    def __init__(self, values: np.ndarray):
        vals = ensure_int_array(values)
        self._dictionary, codes = np.unique(vals, return_inverse=True)
        width = required_bits(len(self._dictionary) - 1) if len(self._dictionary) else 0
        self._codes = BitPackedArray.from_values(codes.astype(np.int64), width)

    @property
    def dictionary(self) -> np.ndarray:
        return self._dictionary

    @property
    def bit_width(self) -> int:
        return self._codes.bit_width

    @property
    def n_values(self) -> int:
        return self._codes.n_values

    @property
    def size_bytes(self) -> int:
        return self._codes.size_bytes + self._dictionary.size * 8 + _METADATA_BYTES

    def decode(self) -> np.ndarray:
        return self._dictionary[self._codes.to_numpy()]

    def gather(self, positions: np.ndarray) -> np.ndarray:
        return self._dictionary[self._codes.gather(positions)]

    def gather_codes(self, positions: np.ndarray) -> np.ndarray:
        """Positional access to the raw dictionary codes (used by Corra)."""
        return self._codes.gather(positions)

    def decode_codes(self) -> np.ndarray:
        """Legacy alias of :meth:`codes`."""
        return self.codes()

    # -- code-space API (dictionary-domain predicate evaluation) --------------

    def codes(self) -> np.ndarray:
        """The raw per-row dictionary codes as an int64 array."""
        return self._codes.to_numpy()

    def lookup_codes(self, values: Sequence) -> np.ndarray:
        """Codes of the candidate ``values`` present in the dictionary.

        Candidates compare *numerically*, exactly like the decoded NumPy
        kernels: ``5.0`` and ``True`` find the rows storing ``5`` and ``1``,
        while non-integral floats, strings and values outside the dictionary
        translate to nothing.  The dictionary is sorted (``np.unique``), so
        each candidate costs one binary search.
        """
        candidates = []
        for v in values:
            # bool and np.bool_ compare numerically in NumPy: True == 1.
            if isinstance(v, (int, np.integer, np.bool_)):
                candidate = int(v)
            elif isinstance(v, (float, np.floating)) and float(v).is_integer():
                candidate = int(v)
            else:
                continue
            # An int64 dictionary cannot contain values outside the int64
            # range; dropping them (instead of letting np.asarray overflow)
            # matches the decoded kernel, which finds no such row either.
            if -(2 ** 63) <= candidate < 2 ** 63:
                candidates.append(candidate)
        if not candidates or self._dictionary.size == 0:
            return np.empty(0, dtype=np.int64)
        cand = np.asarray(candidates, dtype=np.int64)
        pos = np.searchsorted(self._dictionary, cand)
        in_range = pos < self._dictionary.size
        hits = pos[in_range][self._dictionary[pos[in_range]] == cand[in_range]]
        return np.unique(hits).astype(np.int64)

    def lookup_code_range(self, low, high) -> tuple[int, int] | None:
        """Half-open code interval ``[lo, hi)`` of values within ``[low, high]``.

        The dictionary is sorted, so an inclusive range predicate maps to a
        contiguous run of codes found with two binary searches; ``None``
        bounds leave that side open.  Bounds compare numerically, exactly
        like the decoded kernel (floats compare as floats, NaN and string
        bounds match nothing); an unsupported bound type returns ``None``
        so the caller falls back to decoded evaluation.
        """
        numeric = (int, np.integer, bool, np.bool_, float, np.floating)
        for bound in (low, high):
            if bound is None:
                continue
            if isinstance(bound, str):
                # The decoded kernel degrades a mistyped bound to all-false.
                return (0, 0)
            if not isinstance(bound, numeric):
                return None
            if isinstance(bound, (float, np.floating)) and math.isnan(bound):
                return (0, 0)
        lo = 0 if low is None else int(np.searchsorted(self._dictionary, low, side="left"))
        hi = (
            self._dictionary.size
            if high is None
            else int(np.searchsorted(self._dictionary, high, side="right"))
        )
        return (lo, hi)


class DictEncodedStringColumn(EncodedColumn):
    """Dictionary-encoded string column: codes + flattened string heap."""

    encoding_name = "dictionary"

    def __init__(self, values: Sequence[str]):
        strings = ensure_strings(values)
        distinct = sorted(set(strings))
        index = {s: i for i, s in enumerate(distinct)}
        codes = np.fromiter(
            (index[s] for s in strings), dtype=np.int64, count=len(strings)
        )
        self._heap = StringHeap(distinct)
        width = required_bits(len(distinct) - 1) if distinct else 0
        self._codes = BitPackedArray.from_values(codes, width)

    @property
    def dictionary(self) -> list[str]:
        return self._heap.all_strings()

    @property
    def heap(self) -> StringHeap:
        return self._heap

    @property
    def bit_width(self) -> int:
        return self._codes.bit_width

    @property
    def n_values(self) -> int:
        return self._codes.n_values

    @property
    def size_bytes(self) -> int:
        return self._codes.size_bytes + self._heap.size_bytes + _METADATA_BYTES

    def decode(self) -> list[str]:
        return self._heap.lookup_many(self._codes.to_numpy())

    def gather(self, positions: np.ndarray) -> list[str]:
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size and pos.max() >= self.n_values:
            raise DecodingError("gather positions out of range")
        return self._heap.lookup_many(self._codes.gather(pos))

    def gather_codes(self, positions: np.ndarray) -> np.ndarray:
        """Positional access to the raw dictionary codes (used by Corra)."""
        return self._codes.gather(positions)

    def decode_codes(self) -> np.ndarray:
        """Legacy alias of :meth:`codes`."""
        return self.codes()

    # -- code-space API (dictionary-domain predicate evaluation) --------------

    def codes(self) -> np.ndarray:
        """The raw per-row dictionary codes as an int64 array."""
        return self._codes.to_numpy()

    def lookup_codes(self, values: Sequence) -> np.ndarray:
        """Codes of the candidate ``values`` present in the dictionary.

        Each string candidate is compared once against ``O(log n_distinct)``
        heap entries via :meth:`StringHeap.find`; the per-row strings are
        never materialised.  Non-string candidates and strings absent from
        the dictionary translate to nothing.
        """
        found = {
            code for code in (
                self._heap.find(v) for v in values if isinstance(v, str)
            ) if code is not None
        }
        return np.asarray(sorted(found), dtype=np.int64)

    def lookup_code_range(self, low, high) -> tuple[int, int]:
        """Half-open code interval ``[lo, hi)`` of values within ``[low, high]``.

        The heap holds the distinct strings sorted, so an inclusive range
        predicate maps to a contiguous run of codes found with two binary
        searches (each touching ``O(log n_distinct)`` heap entries); ``None``
        bounds leave that side open and non-string bounds match nothing,
        mirroring the decoded kernel's degrade-to-empty semantics.
        """
        for bound in (low, high):
            if bound is not None and not isinstance(bound, str):
                return (0, 0)
        lo = 0 if low is None else self._heap.bisect_left(low)
        hi = len(self._heap) if high is None else self._heap.bisect_right(high)
        return (lo, hi)


class DictionaryEncoding(ColumnEncoding):
    """Scheme wrapper: dictionary + bit-packed codes for any logical type."""

    name = "dictionary"

    def encode(self, values, dtype: DataType) -> EncodedColumn:
        if dtype.is_string:
            column: EncodedColumn = DictEncodedStringColumn(values)
        elif dtype.is_integer_like:
            column = DictEncodedIntColumn(values)
        else:
            raise EncodingError(
                f"dictionary encoding does not support {dtype.name} columns"
            )
        column.encoding_name = self.name
        return column

    def supports(self, dtype: DataType) -> bool:
        return dtype.is_string or dtype.is_integer_like
