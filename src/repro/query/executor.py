"""A small query executor over compressed relations.

The executor runs filter + project queries through the structured scan
pipeline: predicates are IR nodes (:mod:`repro.query.predicates`) that the
:class:`~repro.query.scan.ScanPlanner` tests against every block's zone map,
so blocks that provably contain no qualifying row are skipped without
decoding a single value and blocks that provably qualify in full are
answered from metadata alone.  Only the remaining blocks have their
predicate columns decoded (block by block, so memory stays bounded by the
block size) and the vectorized predicate kernel applied.

Every predicate scan produces a :class:`~repro.query.scan.ScanMetrics`
describing how much work the zone maps saved; the most recent one is
available as :attr:`QueryExecutor.last_scan_metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import UnknownColumnError, ValidationError
from ..storage.block import CompressedBlock
from ..storage.relation import Relation
from .predicates import Predicate
from .scan import (
    BlockDecision,
    QueryOutput,
    ScanMetrics,
    ScanPlanner,
    materialize_block_columns,
    materialize_columns,
)
from .selection import SelectionVector

__all__ = ["Predicate", "QueryExecutor", "QueryResult"]


@dataclass
class QueryResult:
    """Materialised projection plus the row ids that qualified."""

    row_ids: np.ndarray
    columns: QueryOutput
    metrics: ScanMetrics | None = None

    @property
    def n_rows(self) -> int:
        return int(self.row_ids.size)

    def column(self, name: str):
        if name not in self.columns:
            raise UnknownColumnError(name, tuple(self.columns))
        return self.columns[name]


class QueryExecutor:
    """Filter + project queries over a compressed relation.

    ``use_statistics=False`` disables zone-map pruning, restoring the
    decode-everything scan (used as the baseline in the pruning benchmark).
    """

    def __init__(self, relation: Relation, use_statistics: bool = True):
        self._relation = relation
        self._planner = ScanPlanner(relation, use_statistics=use_statistics)
        self._last_metrics: ScanMetrics | None = None

    @property
    def relation(self) -> Relation:
        return self._relation

    @property
    def last_scan_metrics(self) -> ScanMetrics | None:
        """Metrics of the most recent ``filter``/``select``/``count`` call."""
        return self._last_metrics

    # -- positional access ----------------------------------------------------

    def materialize(self, columns: Sequence[str],
                    selection: SelectionVector | np.ndarray) -> QueryOutput:
        """Materialise a projection at explicitly selected rows."""
        return materialize_columns(self._relation, columns, selection)

    # -- predicate scans -------------------------------------------------------

    def _check_predicate(self, predicate: Predicate) -> None:
        for name in predicate.columns():
            if name not in self._relation.schema:
                raise UnknownColumnError(name, self._relation.schema.names)

    def _block_mask(self, block, predicate: Predicate) -> np.ndarray:
        """Decode the predicate columns of one block and evaluate the kernel."""
        positions = np.arange(block.n_rows, dtype=np.int64)
        values = materialize_block_columns(block, predicate.columns(), positions)
        mask = np.asarray(predicate.evaluate(values), dtype=bool)
        if mask.shape != (block.n_rows,):
            raise ValidationError(
                "predicate evaluation must return one boolean per row"
            )
        return mask

    def _plan_scan(self, predicate: Predicate) -> tuple[
            list[tuple[CompressedBlock, str, int]], ScanMetrics]:
        """Shared planning step of ``scan``/``count``.

        Returns ``(block, decision, row offset)`` triples plus a
        :class:`ScanMetrics` pre-filled with the block-level accounting
        (``rows_matched`` is left for the caller); the metrics object is
        installed as :attr:`last_scan_metrics`.
        """
        self._check_predicate(predicate)
        plan = self._planner.plan(predicate)
        metrics = ScanMetrics(n_blocks=plan.n_blocks, rows_total=self._relation.n_rows)
        decided = []
        offset = 0
        for block, decision in zip(self._relation, plan.decisions):
            if decision == BlockDecision.PRUNE:
                metrics.blocks_pruned += 1
            elif decision == BlockDecision.FULL:
                metrics.blocks_full += 1
            else:
                metrics.blocks_scanned += 1
                metrics.rows_decoded += block.n_rows
            decided.append((block, decision, offset))
            offset += block.n_rows
        self._last_metrics = metrics
        return decided, metrics

    def scan(self, predicate: Predicate) -> tuple[np.ndarray, ScanMetrics]:
        """Global row ids satisfying ``predicate`` plus the scan metrics."""
        decided, metrics = self._plan_scan(predicate)
        qualifying: list[np.ndarray] = []
        for block, decision, offset in decided:
            if decision == BlockDecision.FULL:
                metrics.rows_matched += block.n_rows
                qualifying.append(
                    np.arange(offset, offset + block.n_rows, dtype=np.int64)
                )
            elif decision == BlockDecision.SCAN:
                mask = self._block_mask(block, predicate)
                matched = np.flatnonzero(mask)
                metrics.rows_matched += int(matched.size)
                if matched.size:
                    qualifying.append(matched + offset)
        if not qualifying:
            return np.zeros(0, dtype=np.int64), metrics
        return np.concatenate(qualifying), metrics

    def filter(self, predicate: Predicate) -> np.ndarray:
        """Global row ids of the rows satisfying ``predicate``."""
        row_ids, _ = self.scan(predicate)
        return row_ids

    def select(self, columns: Sequence[str],
               predicate: Predicate | None = None) -> QueryResult:
        """SELECT ``columns`` [WHERE ``predicate``] over the whole relation."""
        if predicate is None:
            row_ids = np.arange(self._relation.n_rows, dtype=np.int64)
            metrics = None
            self._last_metrics = None
        else:
            row_ids, metrics = self.scan(predicate)
        output = materialize_columns(self._relation, columns, row_ids)
        return QueryResult(row_ids=row_ids, columns=output, metrics=metrics)

    def count(self, predicate: Predicate) -> int:
        """Number of rows satisfying ``predicate``.

        Answered from block statistics plus per-block predicate masks; no row
        ids are concatenated and no projection output is ever allocated.
        """
        decided, metrics = self._plan_scan(predicate)
        total = 0
        for block, decision, _ in decided:
            if decision == BlockDecision.FULL:
                total += block.n_rows
            elif decision == BlockDecision.SCAN:
                total += int(np.count_nonzero(self._block_mask(block, predicate)))
        metrics.rows_matched = total
        return total
