"""A small query executor over compressed relations.

The paper's evaluation only needs positional materialisation, but a
reproduction that downstream users can adopt also needs the usual selection
path: filter a column by a predicate, then materialise a projection at the
qualifying rows.  :class:`QueryExecutor` provides exactly that on top of
:mod:`repro.query.scan`, decoding predicate columns block by block so memory
stays bounded by the block size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import UnknownColumnError, ValidationError
from ..storage.relation import Relation
from .scan import QueryOutput, materialize_block_columns, materialize_columns
from .selection import SelectionVector

__all__ = ["Predicate", "QueryExecutor", "QueryResult"]


@dataclass(frozen=True)
class Predicate:
    """A single-column predicate evaluated on decoded values."""

    column: str
    condition: Callable[[np.ndarray], np.ndarray]
    description: str = ""

    @classmethod
    def equals(cls, column: str, value) -> "Predicate":
        return cls(column, lambda v: np.asarray(v) == value, f"{column} == {value!r}")

    @classmethod
    def between(cls, column: str, low, high) -> "Predicate":
        return cls(
            column,
            lambda v: (np.asarray(v) >= low) & (np.asarray(v) <= high),
            f"{low!r} <= {column} <= {high!r}",
        )

    @classmethod
    def is_in(cls, column: str, values: Sequence) -> "Predicate":
        wanted = set(values)
        return cls(
            column,
            lambda v: np.asarray([x in wanted for x in (v.tolist() if isinstance(v, np.ndarray) else v)]),
            f"{column} IN {sorted(map(repr, wanted))}",
        )


@dataclass
class QueryResult:
    """Materialised projection plus the row ids that qualified."""

    row_ids: np.ndarray
    columns: QueryOutput

    @property
    def n_rows(self) -> int:
        return int(self.row_ids.size)

    def column(self, name: str):
        if name not in self.columns:
            raise UnknownColumnError(name, tuple(self.columns))
        return self.columns[name]


class QueryExecutor:
    """Filter + project queries over a compressed relation."""

    def __init__(self, relation: Relation):
        self._relation = relation

    @property
    def relation(self) -> Relation:
        return self._relation

    # -- positional access ----------------------------------------------------

    def materialize(self, columns: Sequence[str],
                    selection: SelectionVector | np.ndarray) -> QueryOutput:
        """Materialise a projection at explicitly selected rows."""
        return materialize_columns(self._relation, columns, selection)

    # -- predicate scans --------------------------------------------------------

    def filter(self, predicate: Predicate) -> np.ndarray:
        """Global row ids of the rows satisfying ``predicate``."""
        if predicate.column not in self._relation.schema:
            raise UnknownColumnError(predicate.column, self._relation.schema.names)
        qualifying: list[np.ndarray] = []
        offset = 0
        for block in self._relation:
            positions = np.arange(block.n_rows, dtype=np.int64)
            values = materialize_block_columns(block, [predicate.column], positions)
            mask = np.asarray(predicate.condition(values[predicate.column]), dtype=bool)
            if mask.shape != (block.n_rows,):
                raise ValidationError(
                    "predicate condition must return one boolean per row"
                )
            qualifying.append(np.flatnonzero(mask) + offset)
            offset += block.n_rows
        if not qualifying:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(qualifying)

    def select(self, columns: Sequence[str], predicate: Predicate | None = None) -> QueryResult:
        """SELECT ``columns`` [WHERE ``predicate``] over the whole relation."""
        if predicate is None:
            row_ids = np.arange(self._relation.n_rows, dtype=np.int64)
        else:
            row_ids = self.filter(predicate)
        output = materialize_columns(self._relation, columns, row_ids)
        return QueryResult(row_ids=row_ids, columns=output)

    def count(self, predicate: Predicate) -> int:
        """Number of rows satisfying ``predicate``."""
        return int(self.filter(predicate).size)
