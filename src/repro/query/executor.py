"""Imperative query facade over the lazy logical-plan pipeline.

:class:`QueryExecutor` is the pre-plan API (``scan``/``filter``/``select``/
``count``) kept as a thin compatibility facade: every call now builds a
small logical plan (:mod:`repro.query.plan`) and hands it to the shared
:class:`~repro.query.plan.QueryCompiler`, which lowers it onto the
structured scan pipeline — the memoizing
:class:`~repro.query.scan.ScanPlanner` prunes blocks against their zone
maps, the morsel-driven :class:`~repro.query.parallel.ParallelEngine`
evaluates the surviving blocks (``workers=1`` inline, ``workers > 1`` on a
persistent thread pool, bit-identical either way), and ``count`` is lowered
to an :class:`~repro.query.plan.Aggregate` node so fully-covered blocks are
answered from metadata alone.

New code should prefer the fluent lazy API
(:meth:`~repro.storage.relation.Relation.query`), which exposes the same
pipeline plus aggregation, group-by, limits and ``explain()``.

Every predicate scan produces a :class:`~repro.query.scan.ScanMetrics`
describing how much work the zone maps and the code-space paths saved; the
most recent one is available as :attr:`QueryExecutor.last_scan_metrics`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import UnknownColumnError, ValidationError
from ..storage.relation import Relation
from .engine import EngineConfig
from .plan import Aggregate, Count, Filter, LogicalNode, Project, QueryCompiler, Scan
from .predicates import Predicate
from .scan import QueryOutput, ScanMetrics, materialize_columns
from .selection import SelectionVector

__all__ = ["Predicate", "QueryExecutor", "QueryResult"]

#: Distinguishes "caller passed the old default explicitly" from "caller
#: did not pass the keyword at all" — only the former deserves a warning.
_UNSET = object()


def warn_legacy_query_kwargs(site: str, legacy: dict) -> None:
    """One shared ``DeprecationWarning`` for the pre-EngineConfig keywords."""
    names = ", ".join(sorted(legacy))
    warnings.warn(
        f"{site}({names}=...) is deprecated; pass config=EngineConfig(...) "
        "or bind the query to a shared repro.query.Engine instead "
        "(behaviour is unchanged)",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass
class QueryResult:
    """Materialised projection plus the row ids that qualified."""

    row_ids: np.ndarray
    columns: QueryOutput
    metrics: ScanMetrics | None = None

    @property
    def n_rows(self) -> int:
        return int(self.row_ids.size)

    def column(self, name: str):
        if name not in self.columns:
            raise UnknownColumnError(name, tuple(self.columns))
        return self.columns[name]


class QueryExecutor:
    """Filter + project queries over a compressed relation.

    Configuration now lives on :class:`~repro.query.engine.EngineConfig`
    (``config=``), or comes from a shared :class:`~repro.query.engine.
    Engine` (``engine=``), whose memoized compiler and worker pool the
    executor then adopts.  The pre-Engine keywords (``use_statistics``,
    ``workers``, ``use_dictionary``, ``use_kernels``) keep working
    bit-identically but emit a ``DeprecationWarning``:
    ``use_statistics=False`` disables zone-map pruning and stat-answered
    aggregation (the decode-everything baseline), ``workers`` sets the
    morsel-driven parallelism (``None``/``0`` = all cores, ``1`` inline),
    ``use_dictionary=False`` forces decode-then-compare instead of
    dictionary code space, and ``use_kernels=False`` disables the
    compressed-domain kernels (:mod:`repro.query.kernels`).
    """

    def __init__(
        self,
        relation: Relation,
        use_statistics=_UNSET,
        workers=_UNSET,
        use_dictionary=_UNSET,
        use_kernels=_UNSET,
        engine=None,
        config: EngineConfig | None = None,
    ):
        legacy = {
            name: value
            for name, value in (
                ("use_statistics", use_statistics),
                ("workers", workers),
                ("use_dictionary", use_dictionary),
                ("use_kernels", use_kernels),
            )
            if value is not _UNSET
        }
        if legacy and (engine is not None or config is not None):
            raise ValidationError(
                "pass either the deprecated keywords or engine=/config=, not both"
            )
        if legacy:
            warn_legacy_query_kwargs("QueryExecutor", legacy)
        self._relation = relation
        if engine is not None:
            self._compiler = engine.compiler_for(relation)
        else:
            cfg = (config if config is not None else EngineConfig()).with_overrides(**legacy)
            self._compiler = QueryCompiler(
                relation,
                use_statistics=cfg.use_statistics,
                workers=cfg.workers,
                use_dictionary=cfg.use_dictionary,
                use_kernels=cfg.use_kernels,
            )
        # Shared with the compiler; kept as attributes for callers (and
        # tests) that reach for the physical pipeline directly.
        self._planner = self._compiler.planner
        self._engine = self._compiler.engine
        self._last_metrics: ScanMetrics | None = None

    @property
    def relation(self) -> Relation:
        return self._relation

    @property
    def workers(self) -> int:
        return self._compiler.workers

    @property
    def compiler(self) -> QueryCompiler:
        """The shared plan compiler (memoized planner + worker pool)."""
        return self._compiler

    def close(self) -> None:
        """Release the engine's worker threads (no-op when serial).

        The executor stays usable; the next parallel query starts a fresh
        pool.  Long-lived processes that create many executors should call
        this (or use the executor as a context manager) instead of relying
        on interpreter shutdown to join the idle workers.
        """
        self._compiler.close()

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def last_scan_metrics(self) -> ScanMetrics | None:
        """Metrics of the most recent ``filter``/``select``/``count`` call."""
        return self._last_metrics

    # -- positional access ----------------------------------------------------

    def materialize(
        self, columns: Sequence[str], selection: SelectionVector | np.ndarray
    ) -> QueryOutput:
        """Materialise a projection at explicitly selected rows."""
        return materialize_columns(self._relation, columns, selection)

    # -- predicate scans -------------------------------------------------------

    def _filter_plan(self, predicate: Predicate) -> LogicalNode:
        return Filter(Scan(self._relation), predicate)

    def scan(self, predicate: Predicate) -> tuple[np.ndarray, ScanMetrics]:
        """Global row ids satisfying ``predicate`` plus the scan metrics."""
        # A plan without a Project node materialises nothing but row ids.
        result = self._compiler.execute(self._filter_plan(predicate))
        self._last_metrics = result.metrics
        return result.row_ids, result.metrics

    def filter(self, predicate: Predicate) -> np.ndarray:
        """Global row ids of the rows satisfying ``predicate``."""
        row_ids, _ = self.scan(predicate)
        return row_ids

    def select(self, columns: Sequence[str], predicate: Predicate | None = None) -> QueryResult:
        """SELECT ``columns`` [WHERE ``predicate``] over the whole relation."""
        plan: LogicalNode = Scan(self._relation)
        if predicate is not None:
            plan = Filter(plan, predicate)
        plan = Project(plan, tuple(columns))
        result = self._compiler.execute(plan)
        self._last_metrics = result.metrics
        return QueryResult(row_ids=result.row_ids, columns=result.columns, metrics=result.metrics)

    def count(self, predicate: Predicate) -> int:
        """Number of rows satisfying ``predicate``.

        Lowered to an ``Aggregate`` plan: blocks the zone maps prove fully
        covered are counted from metadata, scanned blocks contribute their
        predicate-mask cardinality, and no row ids or projection output are
        ever allocated.
        """
        plan = Aggregate(self._filter_plan(predicate), aggregates=(("count", Count()),))
        result = self._compiler.execute(plan)
        self._last_metrics = result.metrics
        return int(result.scalar("count"))
