"""A small query executor over compressed relations.

The executor runs filter + project queries through the structured scan
pipeline: predicates are IR nodes (:mod:`repro.query.predicates`) that the
:class:`~repro.query.scan.ScanPlanner` tests against every block's zone map,
so blocks that provably contain no qualifying row are skipped without
decoding a single value and blocks that provably qualify in full are
answered from metadata alone.  Only the remaining blocks have their
predicate kernels evaluated (block by block, so memory stays bounded by the
block size).

Execution is delegated to one code path — the morsel-driven
:class:`~repro.query.parallel.ParallelEngine` — at every worker count:
``workers=1`` (the default) evaluates morsels inline on the calling thread,
``workers > 1`` fans them across a persistent thread pool, and the results
are bit-identical either way.  Predicate kernels run through
:func:`~repro.query.scan.evaluate_block_predicate`, so ``Eq``/``In`` leaves
over dictionary-encoded columns are answered in code space without
materialising a value.

Every predicate scan produces a :class:`~repro.query.scan.ScanMetrics`
describing how much work the zone maps and the code-space path saved; the
most recent one is available as :attr:`QueryExecutor.last_scan_metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import UnknownColumnError
from ..storage.relation import Relation
from .parallel import ParallelEngine, resolve_workers
from .predicates import Predicate
from .scan import QueryOutput, ScanMetrics, ScanPlanner, materialize_columns
from .selection import SelectionVector

__all__ = ["Predicate", "QueryExecutor", "QueryResult"]


@dataclass
class QueryResult:
    """Materialised projection plus the row ids that qualified."""

    row_ids: np.ndarray
    columns: QueryOutput
    metrics: ScanMetrics | None = None

    @property
    def n_rows(self) -> int:
        return int(self.row_ids.size)

    def column(self, name: str):
        if name not in self.columns:
            raise UnknownColumnError(name, tuple(self.columns))
        return self.columns[name]


class QueryExecutor:
    """Filter + project queries over a compressed relation.

    ``use_statistics=False`` disables zone-map pruning, restoring the
    decode-everything scan (used as the baseline in the pruning benchmark).
    ``workers`` sets the morsel-driven parallelism (``None``/``0`` = all
    cores; the default of 1 evaluates inline on the calling thread).
    ``use_dictionary=False`` disables dictionary-domain predicate
    evaluation, forcing the decode-then-compare path the benchmarks use as
    a baseline.
    """

    def __init__(self, relation: Relation, use_statistics: bool = True,
                 workers: int | None = 1, use_dictionary: bool = True):
        self._relation = relation
        self._planner = ScanPlanner(relation, use_statistics=use_statistics)
        self._workers = resolve_workers(workers)
        self._engine = ParallelEngine(
            relation, workers=self._workers, planner=self._planner,
            use_dictionary=use_dictionary,
        )
        self._last_metrics: ScanMetrics | None = None

    @property
    def relation(self) -> Relation:
        return self._relation

    @property
    def workers(self) -> int:
        return self._workers

    def close(self) -> None:
        """Release the engine's worker threads (no-op when serial).

        The executor stays usable; the next parallel query starts a fresh
        pool.  Long-lived processes that create many executors should call
        this (or use the executor as a context manager) instead of relying
        on interpreter shutdown to join the idle workers.
        """
        self._engine.close()

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def last_scan_metrics(self) -> ScanMetrics | None:
        """Metrics of the most recent ``filter``/``select``/``count`` call."""
        return self._last_metrics

    # -- positional access ----------------------------------------------------

    def materialize(self, columns: Sequence[str],
                    selection: SelectionVector | np.ndarray) -> QueryOutput:
        """Materialise a projection at explicitly selected rows."""
        return materialize_columns(self._relation, columns, selection)

    # -- predicate scans -------------------------------------------------------

    def _check_predicate(self, predicate: Predicate) -> None:
        for name in predicate.columns():
            if name not in self._relation.schema:
                raise UnknownColumnError(name, self._relation.schema.names)

    def scan(self, predicate: Predicate) -> tuple[np.ndarray, ScanMetrics]:
        """Global row ids satisfying ``predicate`` plus the scan metrics."""
        self._check_predicate(predicate)
        row_ids, metrics = self._engine.scan(predicate)
        self._last_metrics = metrics
        return row_ids, metrics

    def filter(self, predicate: Predicate) -> np.ndarray:
        """Global row ids of the rows satisfying ``predicate``."""
        row_ids, _ = self.scan(predicate)
        return row_ids

    def select(self, columns: Sequence[str],
               predicate: Predicate | None = None) -> QueryResult:
        """SELECT ``columns`` [WHERE ``predicate``] over the whole relation."""
        if predicate is None:
            row_ids = np.arange(self._relation.n_rows, dtype=np.int64)
            metrics = None
            self._last_metrics = None
        else:
            row_ids, metrics = self.scan(predicate)
        output = materialize_columns(self._relation, columns, row_ids)
        return QueryResult(row_ids=row_ids, columns=output, metrics=metrics)

    def count(self, predicate: Predicate) -> int:
        """Number of rows satisfying ``predicate``.

        Answered from block statistics plus per-block predicate masks; no
        row ids are concatenated and no projection output is allocated.
        """
        self._check_predicate(predicate)
        total, metrics = self._engine.count(predicate)
        self._last_metrics = metrics
        return total
