"""Selection vector generation.

The paper measures query latency by generating "10 uniform random selection
vectors for each individual selectivity (as done, e.g., in Lang et al.)" and
decompressing/materialising the values at the selected positions.  This
module reproduces that: a selection vector is a sorted array of distinct row
ids drawn uniformly at random, sized ``round(selectivity * n_rows)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..errors import ValidationError

__all__ = [
    "SelectionVector",
    "generate_selection_vector",
    "generate_selection_vectors",
    "PAPER_SELECTIVITIES",
    "PAPER_ZOOM_SELECTIVITIES",
]

#: The selectivities of Fig. 5 / Fig. 8 ({0.001, 0.002, ..., 0.9, 1.0} is
#: plotted with these labelled ticks).
PAPER_SELECTIVITIES = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0)

#: The zoom-in selectivities of Fig. 6 / Fig. 7.
PAPER_ZOOM_SELECTIVITIES = (0.005, 0.01, 0.05, 0.1)


@dataclass(frozen=True)
class SelectionVector:
    """A sorted vector of selected row ids plus its nominal selectivity."""

    row_ids: np.ndarray
    selectivity: float
    n_rows: int

    @property
    def n_selected(self) -> int:
        return int(self.row_ids.size)

    @property
    def actual_selectivity(self) -> float:
        return self.n_selected / self.n_rows if self.n_rows else 0.0

    def __len__(self) -> int:
        return self.n_selected


def generate_selection_vector(
    n_rows: int, selectivity: float, rng: np.random.Generator | None = None
) -> SelectionVector:
    """Draw one uniform random selection vector.

    Row ids are distinct, drawn without replacement, and returned sorted (the
    order a scan would produce them in).
    """
    if n_rows < 0:
        raise ValidationError("n_rows must be non-negative")
    if not 0.0 <= selectivity <= 1.0:
        raise ValidationError(f"selectivity must be within [0, 1], got {selectivity}")
    rng = rng if rng is not None else np.random.default_rng()
    n_selected = int(round(selectivity * n_rows))
    n_selected = min(max(n_selected, 0), n_rows)
    if n_selected == n_rows:
        row_ids = np.arange(n_rows, dtype=np.int64)
    else:
        row_ids = np.sort(rng.choice(n_rows, size=n_selected, replace=False).astype(np.int64))
    return SelectionVector(row_ids=row_ids, selectivity=selectivity, n_rows=n_rows)


def generate_selection_vectors(
    n_rows: int, selectivity: float, count: int = 10, seed: int | None = 42
) -> list[SelectionVector]:
    """Draw ``count`` independent selection vectors (10 in the paper)."""
    if count < 1:
        raise ValidationError("count must be at least 1")
    rng = np.random.default_rng(seed)
    return [generate_selection_vector(n_rows, selectivity, rng) for _ in range(count)]


def sweep_selectivities(
    n_rows: int,
    selectivities: Sequence[float] = PAPER_SELECTIVITIES,
    count: int = 10,
    seed: int | None = 42,
) -> Iterator[tuple[float, list[SelectionVector]]]:
    """Yield ``(selectivity, vectors)`` pairs across a selectivity sweep."""
    for selectivity in selectivities:
        yield selectivity, generate_selection_vectors(n_rows, selectivity, count, seed)
