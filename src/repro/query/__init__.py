"""Query engine over compressed relations: lazy plans on a pruned, parallel scan.

The front door is the **lazy query API**: describe a query as a logical
plan, then execute it — nothing is decoded while the query is being
composed.  Start a chain with
:meth:`Relation.query() <repro.storage.relation.Relation.query>`::

    result = (
        relation.query()
        .where(Between("ship", 8_100, 8_200) & ~Eq("flag", "R"))
        .agg(n=Count(), total=Sum("fare"), last=Max("receipt"))
        .execute()
    )
    print(result.scalar("total"), result.metrics.describe())

    by_tag = relation.query().group_by("tag").agg(n=Count()).execute()
    print(relation.query().where(Eq("tag", "a")).explain())

Layers, bottom to top:

* **Predicate IR** (:mod:`~repro.query.predicates`) — ``Eq``/``Between``/
  ``In``/``And``/``Or``/``Not`` nodes that compile to vectorized kernels
  *and* test against per-block zone maps.
* **Scan pipeline** (:mod:`~repro.query.scan`) — the memoizing
  :class:`ScanPlanner` classifies every block as pruned / fully covered /
  scan; surviving blocks evaluate ``Eq``/``In``/``Between`` leaves over
  dictionary-encoded columns in *code space* (integer kernels over packed
  codes, zero string-heap materialisation).  :class:`ScanMetrics` reports
  what both layers saved.
* **Compressed-domain kernels** (:mod:`~repro.query.kernels`) — a
  :class:`KernelRegistry` the scan consults per (encoding, predicate) pair
  before falling back to decode-then-compare::

      predicate subtree over column c
        │
        ├─ c is dictionary-encoded ──────────▶ code space (predicates.py)
        │
        └─ KernelRegistry[encoding_name(c)]
             ├─ rle ────────▶ run space: evaluate per (value, length) run,
             │                fan out with np.repeat; run-weighted
             │                aggregates and run-space group-by
             ├─ for_bitpack ─▶ word space: shift constants by the frame,
             │                compare the packed words (zero-copy lane
             │                views for 8/16/32/64-bit widths)
             ├─ delta ───────▶ checkpoint space: two binary searches over
             │                the checkpoint index (monotonic columns)
             ├─ frequency ───▶ hot-value space: verdicts over the hot
             │                values + exceptions fan out through codes
             └─ (no kernel, or kernel declines) ─▶ decode then compare

  Every kernel is exact — bit-identical to the decode baseline — and
  ``use_kernels=False`` (CLI ``--no-kernels``) disables the registry.
* **Morsel-driven parallelism** (:mod:`~repro.query.parallel`) — post-
  pruning blocks are dealt into per-worker deques over a persistent thread
  pool, and drained workers steal from the back of a sibling's deque, so
  skewed workloads rebalance; the NumPy kernels release the GIL, and
  results are bit-identical to serial execution.
* **Logical plans** (:mod:`~repro.query.plan`) — ``Scan``/``Filter``/
  ``Project``/``Aggregate``/``Sort``/``TopK``/``Limit`` nodes, the fluent
  :class:`LazyQuery` builder, and the :class:`QueryCompiler`, which pushes
  work down before anything is materialised: projections decode only
  referenced columns, ``count``/``min``/``max``/``sum`` over fully-covered
  blocks are answered from
  :class:`~repro.storage.statistics.ColumnStatistics` without decoding
  a row, group-by on dictionary columns aggregates in code space (one heap
  decode per distinct group), limits truncate row ids before
  materialisation, and ``order_by().limit(k)`` fuses into a zone-map-driven
  top-k that stops visiting (and fetching) blocks early.
* **Imperative facade** (:mod:`~repro.query.executor`) —
  :class:`QueryExecutor` keeps the pre-plan ``scan``/``filter``/``select``/
  ``count`` surface as a thin layer that builds the equivalent plans.
* **Shared engine** (:mod:`~repro.query.engine`) — :class:`Engine` owns
  all cross-query state (one worker pool, one prefetch pool, one block
  cache, one kernel registry, one memoized compiler/planner per relation)
  behind an immutable :class:`EngineConfig`; ``LazyQuery``, the executor
  and the query service (:mod:`repro.server`) are thin adapters over it.

:mod:`~repro.query.selection` and :mod:`~repro.query.latency` carry the
paper's selection-vector workload and its latency harness unchanged.
"""

from .engine import Engine, EngineConfig
from .executor import QueryExecutor, QueryResult
from .kernels import (
    DEFAULT_KERNELS,
    ColumnKernel,
    DeltaKernel,
    ForKernel,
    FrequencyKernel,
    KernelRegistry,
    RleKernel,
)
from .latency import (
    LatencyMeasurement,
    LatencySweep,
    latency_ratio,
    measure_query_latency,
    sweep_query_latency,
)
from .parallel import Morsel, ParallelEngine, parallel_map, resolve_workers
from .plan import (
    Aggregate,
    AggregateFunction,
    Avg,
    CompiledQuery,
    Count,
    Filter,
    LazyQuery,
    Limit,
    LogicalNode,
    Max,
    Min,
    PlanResult,
    Project,
    QueryCompiler,
    Scan,
    Sort,
    Std,
    Sum,
    TopK,
    Var,
    render_plan,
)
from .predicates import And, Between, ColumnPredicate, Eq, In, Not, Or, Predicate
from .scan import (
    BlockDecision,
    ScanMetrics,
    ScanPlan,
    ScanPlanner,
    evaluate_block_predicate,
    materialize_block_columns,
    materialize_columns,
    resolve_block,
)
from .selection import (
    PAPER_SELECTIVITIES,
    PAPER_ZOOM_SELECTIVITIES,
    SelectionVector,
    generate_selection_vector,
    generate_selection_vectors,
    sweep_selectivities,
)

__all__ = [
    "SelectionVector",
    "generate_selection_vector",
    "generate_selection_vectors",
    "sweep_selectivities",
    "PAPER_SELECTIVITIES",
    "PAPER_ZOOM_SELECTIVITIES",
    "materialize_columns",
    "materialize_block_columns",
    "evaluate_block_predicate",
    "resolve_block",
    "Engine",
    "EngineConfig",
    "QueryExecutor",
    "QueryResult",
    "Predicate",
    "Eq",
    "Between",
    "In",
    "And",
    "Or",
    "Not",
    "ColumnPredicate",
    "BlockDecision",
    "ScanMetrics",
    "ScanPlan",
    "ScanPlanner",
    "ColumnKernel",
    "RleKernel",
    "ForKernel",
    "DeltaKernel",
    "FrequencyKernel",
    "KernelRegistry",
    "DEFAULT_KERNELS",
    "Morsel",
    "ParallelEngine",
    "parallel_map",
    "resolve_workers",
    "AggregateFunction",
    "Count",
    "Sum",
    "Min",
    "Max",
    "Avg",
    "Var",
    "Std",
    "LogicalNode",
    "Scan",
    "Filter",
    "Project",
    "Aggregate",
    "Sort",
    "TopK",
    "Limit",
    "render_plan",
    "CompiledQuery",
    "PlanResult",
    "QueryCompiler",
    "LazyQuery",
    "LatencyMeasurement",
    "LatencySweep",
    "measure_query_latency",
    "sweep_query_latency",
    "latency_ratio",
]
