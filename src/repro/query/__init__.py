"""Query engine over compressed relations: lazy plans on a pruned, parallel scan.

The front door is the **lazy query API**: describe a query as a logical
plan, then execute it — nothing is decoded while the query is being
composed.  Start a chain with
:meth:`Relation.query() <repro.storage.relation.Relation.query>`::

    result = (
        relation.query()
        .where(Between("ship", 8_100, 8_200) & ~Eq("flag", "R"))
        .agg(n=Count(), total=Sum("fare"), last=Max("receipt"))
        .execute()
    )
    print(result.scalar("total"), result.metrics.describe())

    by_tag = relation.query().group_by("tag").agg(n=Count()).execute()
    print(relation.query().where(Eq("tag", "a")).explain())

Layers, bottom to top:

* **Predicate IR** (:mod:`~repro.query.predicates`) — ``Eq``/``Between``/
  ``In``/``And``/``Or``/``Not`` nodes that compile to vectorized kernels
  *and* test against per-block zone maps.
* **Scan pipeline** (:mod:`~repro.query.scan`) — the memoizing
  :class:`ScanPlanner` classifies every block as pruned / fully covered /
  scan; surviving blocks evaluate ``Eq``/``In``/``Between`` leaves over
  dictionary-encoded columns in *code space* (integer kernels over packed
  codes, zero string-heap materialisation).  :class:`ScanMetrics` reports
  what both layers saved.
* **Morsel-driven parallelism** (:mod:`~repro.query.parallel`) — post-
  pruning blocks fan out over a persistent thread pool; the NumPy kernels
  release the GIL, and results are bit-identical to serial execution.
* **Logical plans** (:mod:`~repro.query.plan`) — ``Scan``/``Filter``/
  ``Project``/``Aggregate``/``Limit`` nodes, the fluent :class:`LazyQuery`
  builder, and the :class:`QueryCompiler`, which pushes work down before
  anything is materialised: projections decode only referenced columns,
  ``count``/``min``/``max``/``sum`` over fully-covered blocks are answered
  from :class:`~repro.storage.statistics.ColumnStatistics` without decoding
  a row, group-by on dictionary columns aggregates in code space (one heap
  decode per distinct group), and limits truncate row ids before
  materialisation.
* **Imperative facade** (:mod:`~repro.query.executor`) —
  :class:`QueryExecutor` keeps the pre-plan ``scan``/``filter``/``select``/
  ``count`` surface as a thin layer that builds the equivalent plans.

:mod:`~repro.query.selection` and :mod:`~repro.query.latency` carry the
paper's selection-vector workload and its latency harness unchanged.
"""

from .executor import QueryExecutor, QueryResult
from .latency import (
    LatencyMeasurement,
    LatencySweep,
    latency_ratio,
    measure_query_latency,
    sweep_query_latency,
)
from .parallel import Morsel, ParallelEngine, parallel_map, resolve_workers
from .plan import (
    Aggregate,
    AggregateFunction,
    Avg,
    CompiledQuery,
    Count,
    Filter,
    LazyQuery,
    Limit,
    LogicalNode,
    Max,
    Min,
    PlanResult,
    Project,
    QueryCompiler,
    Scan,
    Sum,
    render_plan,
)
from .predicates import And, Between, ColumnPredicate, Eq, In, Not, Or, Predicate
from .scan import (
    BlockDecision,
    ScanMetrics,
    ScanPlan,
    ScanPlanner,
    evaluate_block_predicate,
    materialize_block_columns,
    materialize_columns,
    resolve_block,
)
from .selection import (
    PAPER_SELECTIVITIES,
    PAPER_ZOOM_SELECTIVITIES,
    SelectionVector,
    generate_selection_vector,
    generate_selection_vectors,
    sweep_selectivities,
)

__all__ = [
    "SelectionVector",
    "generate_selection_vector",
    "generate_selection_vectors",
    "sweep_selectivities",
    "PAPER_SELECTIVITIES",
    "PAPER_ZOOM_SELECTIVITIES",
    "materialize_columns",
    "materialize_block_columns",
    "evaluate_block_predicate",
    "resolve_block",
    "QueryExecutor",
    "QueryResult",
    "Predicate",
    "Eq",
    "Between",
    "In",
    "And",
    "Or",
    "Not",
    "ColumnPredicate",
    "BlockDecision",
    "ScanMetrics",
    "ScanPlan",
    "ScanPlanner",
    "Morsel",
    "ParallelEngine",
    "parallel_map",
    "resolve_workers",
    "AggregateFunction",
    "Count",
    "Sum",
    "Min",
    "Max",
    "Avg",
    "LogicalNode",
    "Scan",
    "Filter",
    "Project",
    "Aggregate",
    "Limit",
    "render_plan",
    "CompiledQuery",
    "PlanResult",
    "QueryCompiler",
    "LazyQuery",
    "LatencyMeasurement",
    "LatencySweep",
    "measure_query_latency",
    "sweep_query_latency",
    "latency_ratio",
]
