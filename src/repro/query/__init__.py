"""Query engine: predicate IR, scan planner, selection vectors, executor,
latency harness."""

from .executor import QueryExecutor, QueryResult
from .latency import (
    LatencyMeasurement,
    LatencySweep,
    latency_ratio,
    measure_query_latency,
    sweep_query_latency,
)
from .predicates import And, Between, ColumnPredicate, Eq, In, Or, Predicate
from .scan import (
    BlockDecision,
    ScanMetrics,
    ScanPlan,
    ScanPlanner,
    materialize_block_columns,
    materialize_columns,
)
from .selection import (
    PAPER_SELECTIVITIES,
    PAPER_ZOOM_SELECTIVITIES,
    SelectionVector,
    generate_selection_vector,
    generate_selection_vectors,
    sweep_selectivities,
)

__all__ = [
    "SelectionVector",
    "generate_selection_vector",
    "generate_selection_vectors",
    "sweep_selectivities",
    "PAPER_SELECTIVITIES",
    "PAPER_ZOOM_SELECTIVITIES",
    "materialize_columns",
    "materialize_block_columns",
    "QueryExecutor",
    "QueryResult",
    "Predicate",
    "Eq",
    "Between",
    "In",
    "And",
    "Or",
    "ColumnPredicate",
    "BlockDecision",
    "ScanMetrics",
    "ScanPlan",
    "ScanPlanner",
    "LatencyMeasurement",
    "LatencySweep",
    "measure_query_latency",
    "sweep_query_latency",
    "latency_ratio",
]
