"""Query engine: predicate IR, scan planner, selection vectors, executor,
latency harness, and the morsel-driven parallel engine.

Parallel execution
------------------

Scans are parallelised with a *morsel-driven* design
(:mod:`repro.query.parallel`): the memoizing
:class:`~repro.query.scan.ScanPlanner` first prunes blocks against their zone
maps, the surviving *scan* blocks are split into morsels, and a thread pool
evaluates the per-block predicate kernels concurrently — the kernels are
NumPy code (bit-unpacking, comparisons, ``np.isin``), which releases the GIL,
so threads scale near-linearly with cores.  Per-worker
:class:`~repro.query.scan.ScanMetrics` are merged back into one object and
row ids are reassembled in block order, making parallel results
bit-identical to serial execution.  Use it either directly::

    engine = ParallelEngine(relation, workers=4)
    row_ids, metrics = engine.scan(Eq("flag", "Y"))

or through the executor, which stays serial by default::

    executor = QueryExecutor(relation, workers=4)
    count = executor.count(Between("l_shipdate", 8100, 8200))

Predicates over dictionary-encoded columns take a second shortcut:
``Eq``/``In`` constants are translated to dictionary codes (string compares
happen once per distinct candidate, against the sorted dictionary) and the
kernel runs over the packed codes, so no string heap is ever materialised —
``ScanMetrics.rows_dict_evaluated`` and ``ScanMetrics.string_heap_decodes``
report both effects.
"""

from .executor import QueryExecutor, QueryResult
from .latency import (
    LatencyMeasurement,
    LatencySweep,
    latency_ratio,
    measure_query_latency,
    sweep_query_latency,
)
from .parallel import Morsel, ParallelEngine, parallel_map, resolve_workers
from .predicates import And, Between, ColumnPredicate, Eq, In, Or, Predicate
from .scan import (
    BlockDecision,
    ScanMetrics,
    ScanPlan,
    ScanPlanner,
    evaluate_block_predicate,
    materialize_block_columns,
    materialize_columns,
)
from .selection import (
    PAPER_SELECTIVITIES,
    PAPER_ZOOM_SELECTIVITIES,
    SelectionVector,
    generate_selection_vector,
    generate_selection_vectors,
    sweep_selectivities,
)

__all__ = [
    "SelectionVector",
    "generate_selection_vector",
    "generate_selection_vectors",
    "sweep_selectivities",
    "PAPER_SELECTIVITIES",
    "PAPER_ZOOM_SELECTIVITIES",
    "materialize_columns",
    "materialize_block_columns",
    "evaluate_block_predicate",
    "QueryExecutor",
    "QueryResult",
    "Predicate",
    "Eq",
    "Between",
    "In",
    "And",
    "Or",
    "ColumnPredicate",
    "BlockDecision",
    "ScanMetrics",
    "ScanPlan",
    "ScanPlanner",
    "Morsel",
    "ParallelEngine",
    "parallel_map",
    "resolve_workers",
    "LatencyMeasurement",
    "LatencySweep",
    "measure_query_latency",
    "sweep_query_latency",
    "latency_ratio",
]
