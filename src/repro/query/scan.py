"""Scan and materialisation operators over compressed relations.

The paper's query workload is: given a selection vector, "decompress and
materialize the values at the specified positions, which we refer to as the
query output".  Two variants are measured — querying only the diff-encoded
column, and querying both the diff-encoded and the reference column(s) —
because when both are queried, fetching the reference costs nothing extra.

:func:`materialize_columns` implements that workload over a
:class:`~repro.storage.relation.Relation`; the reference columns needed by a
horizontal column are fetched once and shared with the output when they are
part of the projection.

On top of the materialisation kernels sits the structured scan pipeline:
:class:`ScanPlanner` tests a predicate against every block's zone map
(:class:`~repro.storage.statistics.BlockStatistics`) and classifies each
block as *pruned* (provably no qualifying row — skipped without decoding),
*full* (provably all rows qualify — answered from metadata alone), or
*scan* (decode the predicate columns and evaluate the vectorized kernel).
:class:`ScanMetrics` reports what the planner achieved per query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..errors import UnknownColumnError
from ..storage.block import CompressedBlock
from ..storage.relation import Relation
from .predicates import Predicate
from .selection import SelectionVector

__all__ = [
    "materialize_columns",
    "materialize_block_columns",
    "QueryOutput",
    "BlockDecision",
    "ScanMetrics",
    "ScanPlan",
    "ScanPlanner",
]


QueryOutput = dict[str, "np.ndarray | list[str]"]


def _gather_block(block: CompressedBlock, names: Sequence[str],
                  positions: np.ndarray) -> QueryOutput:
    """Materialise the requested columns of one block at block-local positions.

    Reference columns are fetched at most once: if a horizontal column's
    reference is also in the projection (the paper's "query on both columns"
    case), the already-fetched values are reused instead of decoded twice.
    """
    fetched: dict[str, np.ndarray | list] = {}

    def fetch(name: str):
        if name in fetched:
            return fetched[name]
        dependency = block.dependency(name)
        if dependency is None:
            values = block.column(name).gather(positions)
        else:
            reference_values = {ref: fetch(ref) for ref in dependency.references}
            values = block.column(name).gather_with_reference(  # type: ignore[attr-defined]
                positions, reference_values
            )
        fetched[name] = values
        return values

    return {name: fetch(name) for name in names}


def materialize_block_columns(block: CompressedBlock, names: Sequence[str],
                              positions: np.ndarray) -> QueryOutput:
    """Materialise ``names`` at block-local ``positions`` of a single block."""
    for name in names:
        if name not in block.columns:
            raise UnknownColumnError(name, block.column_names)
    return _gather_block(block, names, np.asarray(positions, dtype=np.int64))


def materialize_columns(relation: Relation, names: Sequence[str],
                        selection: SelectionVector | np.ndarray) -> QueryOutput:
    """Materialise ``names`` at the globally-selected rows of a relation.

    The output preserves the selection vector's row order.
    """
    row_ids = selection.row_ids if isinstance(selection, SelectionVector) else np.asarray(selection)
    names = list(names)
    for name in names:
        if name not in relation.schema:
            raise UnknownColumnError(name, relation.schema.names)

    n = int(np.asarray(row_ids).size)
    outputs: QueryOutput = {}
    string_columns = {
        name for name in names if relation.schema.dtype(name).is_string
    }
    for name in names:
        if name in string_columns:
            outputs[name] = [""] * n
        else:
            outputs[name] = np.empty(n, dtype=np.int64)

    for block_index, local_positions, output_positions in relation.locate(row_ids):
        block = relation.block(block_index)
        block_output = _gather_block(block, names, local_positions)
        for name in names:
            values = block_output[name]
            if name in string_columns:
                target_list = outputs[name]
                for out_pos, value in zip(output_positions, values):
                    target_list[int(out_pos)] = value
            else:
                outputs[name][output_positions] = np.asarray(values)
    return outputs


# ---------------------------------------------------------------------------
# structured scan pipeline: planner + metrics
# ---------------------------------------------------------------------------

class BlockDecision:
    """Per-block verdict of the planner."""

    SCAN = "scan"      #: decode predicate columns and evaluate the kernel
    PRUNE = "prune"    #: statistics prove no row can qualify
    FULL = "full"      #: statistics prove every row qualifies


@dataclass
class ScanMetrics:
    """What one predicate scan actually did, block by block.

    ``rows_decoded`` counts the rows whose predicate columns were
    materialised; pruned and fully-covered blocks contribute nothing to it,
    which is exactly the work the zone maps saved.
    """

    n_blocks: int = 0
    blocks_scanned: int = 0
    blocks_pruned: int = 0
    blocks_full: int = 0
    rows_total: int = 0
    rows_decoded: int = 0
    rows_matched: int = 0

    @property
    def pruned_fraction(self) -> float:
        """Fraction of blocks skipped or answered from statistics alone."""
        if self.n_blocks == 0:
            return 0.0
        return (self.blocks_pruned + self.blocks_full) / self.n_blocks

    @property
    def decoded_fraction(self) -> float:
        """Fraction of rows whose predicate columns were actually decoded."""
        if self.rows_total == 0:
            return 0.0
        return self.rows_decoded / self.rows_total

    def describe(self) -> str:
        return (
            f"{self.blocks_scanned}/{self.n_blocks} blocks scanned "
            f"({self.blocks_pruned} pruned, {self.blocks_full} fully covered); "
            f"{self.rows_decoded:,}/{self.rows_total:,} rows decoded, "
            f"{self.rows_matched:,} matched"
        )


@dataclass(frozen=True)
class ScanPlan:
    """The planner's per-block decisions for one predicate."""

    predicate: Predicate | None
    decisions: tuple[str, ...]

    @property
    def n_blocks(self) -> int:
        return len(self.decisions)

    def count_of(self, decision: str) -> int:
        return sum(1 for d in self.decisions if d == decision)


class ScanPlanner:
    """Classify every block of a relation against a predicate's zone-map tests.

    ``use_statistics=False`` degrades to the pre-zone-map behaviour (every
    block is scanned), which the benchmarks use as the full-decode baseline.
    """

    def __init__(self, relation: Relation, use_statistics: bool = True):
        self._relation = relation
        self._use_statistics = use_statistics

    @property
    def relation(self) -> Relation:
        return self._relation

    def plan(self, predicate: Predicate | None) -> ScanPlan:
        decisions = []
        for block in self._relation:
            if predicate is None:
                decisions.append(BlockDecision.FULL)
                continue
            if not self._use_statistics:
                decisions.append(BlockDecision.SCAN)
                continue
            statistics = block.statistics
            if block.n_rows == 0 or not predicate.might_match(statistics):
                decisions.append(BlockDecision.PRUNE)
            elif predicate.matches_all(statistics):
                decisions.append(BlockDecision.FULL)
            else:
                decisions.append(BlockDecision.SCAN)
        return ScanPlan(predicate=predicate, decisions=tuple(decisions))
