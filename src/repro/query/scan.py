"""Scan and materialisation operators over compressed relations.

The paper's query workload is: given a selection vector, "decompress and
materialize the values at the specified positions, which we refer to as the
query output".  Two variants are measured — querying only the diff-encoded
column, and querying both the diff-encoded and the reference column(s) —
because when both are queried, fetching the reference costs nothing extra.

:func:`materialize_columns` implements that workload over a
:class:`~repro.storage.relation.Relation`; the reference columns needed by a
horizontal column are fetched once and shared with the output when they are
part of the projection.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..errors import UnknownColumnError
from ..storage.block import CompressedBlock
from ..storage.relation import Relation
from .selection import SelectionVector

__all__ = ["materialize_columns", "materialize_block_columns", "QueryOutput"]


QueryOutput = dict[str, "np.ndarray | list[str]"]


def _gather_block(block: CompressedBlock, names: Sequence[str],
                  positions: np.ndarray) -> QueryOutput:
    """Materialise the requested columns of one block at block-local positions.

    Reference columns are fetched at most once: if a horizontal column's
    reference is also in the projection (the paper's "query on both columns"
    case), the already-fetched values are reused instead of decoded twice.
    """
    fetched: dict[str, np.ndarray | list] = {}

    def fetch(name: str):
        if name in fetched:
            return fetched[name]
        dependency = block.dependency(name)
        if dependency is None:
            values = block.column(name).gather(positions)
        else:
            reference_values = {ref: fetch(ref) for ref in dependency.references}
            values = block.column(name).gather_with_reference(  # type: ignore[attr-defined]
                positions, reference_values
            )
        fetched[name] = values
        return values

    return {name: fetch(name) for name in names}


def materialize_block_columns(block: CompressedBlock, names: Sequence[str],
                              positions: np.ndarray) -> QueryOutput:
    """Materialise ``names`` at block-local ``positions`` of a single block."""
    for name in names:
        if name not in block.columns:
            raise UnknownColumnError(name, block.column_names)
    return _gather_block(block, names, np.asarray(positions, dtype=np.int64))


def materialize_columns(relation: Relation, names: Sequence[str],
                        selection: SelectionVector | np.ndarray) -> QueryOutput:
    """Materialise ``names`` at the globally-selected rows of a relation.

    The output preserves the selection vector's row order.
    """
    row_ids = selection.row_ids if isinstance(selection, SelectionVector) else np.asarray(selection)
    names = list(names)
    for name in names:
        if name not in relation.schema:
            raise UnknownColumnError(name, relation.schema.names)

    n = int(np.asarray(row_ids).size)
    outputs: QueryOutput = {}
    string_columns = {
        name for name in names if relation.schema.dtype(name).is_string
    }
    for name in names:
        if name in string_columns:
            outputs[name] = [""] * n
        else:
            outputs[name] = np.empty(n, dtype=np.int64)

    for block_index, local_positions, output_positions in relation.locate(row_ids):
        block = relation.block(block_index)
        block_output = _gather_block(block, names, local_positions)
        for name in names:
            values = block_output[name]
            if name in string_columns:
                target_list = outputs[name]
                for out_pos, value in zip(output_positions, values):
                    target_list[int(out_pos)] = value
            else:
                outputs[name][output_positions] = np.asarray(values)
    return outputs
