"""Scan and materialisation operators over compressed relations.

The paper's query workload is: given a selection vector, "decompress and
materialize the values at the specified positions, which we refer to as the
query output".  Two variants are measured — querying only the diff-encoded
column, and querying both the diff-encoded and the reference column(s) —
because when both are queried, fetching the reference costs nothing extra.

:func:`materialize_columns` implements that workload over a
:class:`~repro.storage.relation.Relation`; the reference columns needed by a
horizontal column are fetched once and shared with the output when they are
part of the projection.

On top of the materialisation kernels sits the structured scan pipeline:
:class:`ScanPlanner` tests a predicate against every block's zone map
(:class:`~repro.storage.statistics.BlockStatistics`) and classifies each
block as *pruned* (provably no qualifying row — skipped without decoding),
*full* (provably all rows qualify — answered from metadata alone), or
*scan* (evaluate the predicate kernel against the block).  The planner
memoizes its per-(block, predicate-fingerprint) decisions, so repeated
queries with equal predicates skip the zone-map tests entirely.

Blocks classified *scan* are evaluated by :func:`evaluate_block_predicate`,
which routes ``Eq``/``In``/``Between`` leaves over dictionary-encoded
columns through the *code space*: the predicate constants are translated to
dictionary codes once (string compares against the sorted dictionary only)
and an integer kernel runs over the packed codes — no string heap is ever
materialised.  Every other leaf decodes its column and evaluates the
generic kernel.  :class:`ScanMetrics` reports what the planner and the
code-space routing achieved per query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..encodings.dictionary import DictEncodedStringColumn
from ..errors import UnknownColumnError, ValidationError
from ..storage.block import CompressedBlock
from ..storage.relation import Relation
from .kernels import DEFAULT_KERNELS, KernelRegistry
from .predicates import And, Not, Or, Predicate
from .selection import SelectionVector
from .tracing import current_tracer

__all__ = [
    "materialize_columns",
    "materialize_block_columns",
    "evaluate_block_predicate",
    "resolve_block",
    "QueryOutput",
    "BlockDecision",
    "ScanMetrics",
    "ScanPlan",
    "ScanPlanner",
]


QueryOutput = dict[str, "np.ndarray | list[str]"]


def resolve_block(
    block: CompressedBlock, columns: "Sequence[str] | None" = None
) -> CompressedBlock:
    """Materialise an out-of-core block proxy once, ahead of hot-path access.

    Disk-backed relations hand the planner lazy proxies whose every
    data-access is a cache round-trip (see
    :class:`~repro.storage.disk.LazyBlock`).  Worker bodies that are about
    to decode call this first so one logical operation loads the block
    exactly once — even when the cache budget is too small to retain it
    between operations.  ``columns`` names the columns the operation will
    touch: a column-granular table (format v3) then fetches only those
    columns' sub-segments (plus their dependency closure) instead of the
    whole block.  In-memory blocks pass through untouched.
    """
    if columns is not None:
        loader = getattr(block, "load_columns", None)
        if loader is not None:
            return loader(columns)
    loader = getattr(block, "load", None)
    return loader() if loader is not None else block


def _gather_block(
    block: CompressedBlock, names: Sequence[str], positions: np.ndarray
) -> QueryOutput:
    """Materialise the requested columns of one block at block-local positions.

    Reference columns are fetched at most once: if a horizontal column's
    reference is also in the projection (the paper's "query on both columns"
    case), the already-fetched values are reused instead of decoded twice.
    """
    fetched: dict[str, np.ndarray | list] = {}

    def fetch(name: str):
        if name in fetched:
            return fetched[name]
        dependency = block.dependency(name)
        if dependency is None:
            values = block.column(name).gather(positions)
        else:
            reference_values = {ref: fetch(ref) for ref in dependency.references}
            values = block.column(name).gather_with_reference(  # type: ignore[attr-defined]
                positions, reference_values
            )
        fetched[name] = values
        return values

    return {name: fetch(name) for name in names}


def materialize_block_columns(
    block: CompressedBlock, names: Sequence[str], positions: np.ndarray
) -> QueryOutput:
    """Materialise ``names`` at block-local ``positions`` of a single block."""
    block = resolve_block(block, columns=names)
    for name in names:
        if name not in block.columns:
            raise UnknownColumnError(name, block.column_names)
    return _gather_block(block, names, np.asarray(positions, dtype=np.int64))


def materialize_columns(
    relation: Relation,
    names: Sequence[str],
    selection: SelectionVector | np.ndarray,
    workers: int = 1,
) -> QueryOutput:
    """Materialise ``names`` at the globally-selected rows of a relation.

    The output preserves the selection vector's row order.  ``workers > 1``
    gathers the per-block groups concurrently: each block writes a disjoint
    slice of the preallocated outputs, so no merge step is needed.
    """
    row_ids = (
        selection.row_ids if isinstance(selection, SelectionVector) else np.asarray(selection)
    )
    names = list(names)
    for name in names:
        if name not in relation.schema:
            raise UnknownColumnError(name, relation.schema.names)

    n = int(np.asarray(row_ids).size)
    outputs: QueryOutput = {}
    string_columns = {name for name in names if relation.schema.dtype(name).is_string}
    for name in names:
        if name in string_columns:
            outputs[name] = [""] * n
        else:
            outputs[name] = np.empty(n, dtype=np.int64)

    groups = relation.locate(row_ids)

    def gather_group(group) -> None:
        block_index, local_positions, output_positions = group
        block = resolve_block(relation.block(block_index), columns=names)
        block_output = _gather_block(block, names, local_positions)
        for name in names:
            values = block_output[name]
            if name in string_columns:
                target_list = outputs[name]
                for out_pos, value in zip(output_positions, values):
                    target_list[int(out_pos)] = value
            else:
                outputs[name][output_positions] = np.asarray(values)

    with current_tracer().span("gather", rows=n, columns=len(names), blocks=len(groups)):
        if workers != 1 and len(groups) > 1:
            # Imported lazily: repro.query.parallel itself imports this module.
            from .parallel import parallel_map

            parallel_map(gather_group, groups, workers=workers)
            return outputs

        prefetch = getattr(relation, "prefetch_block_columns", None)
        for position, group in enumerate(groups):
            if prefetch is not None and position + 1 < len(groups):
                # Read-ahead: schedule the next block's projection columns while
                # this block's gather kernels run.
                prefetch(groups[position + 1][0], names)
            gather_group(group)
        return outputs


# ---------------------------------------------------------------------------
# structured scan pipeline: planner + metrics
# ---------------------------------------------------------------------------


class BlockDecision:
    """Per-block verdict of the planner."""

    SCAN = "scan"  #: decode predicate columns and evaluate the kernel
    PRUNE = "prune"  #: statistics prove no row can qualify
    FULL = "full"  #: statistics prove all rows qualify


@dataclass
class ScanMetrics:
    """What one predicate scan actually did, block by block.

    ``rows_decoded`` counts the rows whose predicate columns were
    materialised; pruned and fully-covered blocks contribute nothing to it
    (the work the zone maps saved), and neither do scanned blocks answered
    entirely in dictionary code space (the work the code-space path saved).
    ``rows_gathered`` counts the qualifying rows whose aggregate or
    group-by input columns were materialised — zero when every aggregate
    was answered from block statistics or in code space.

    ``rows_dict_evaluated`` counts rows answered in dictionary code space
    (one increment of ``block.n_rows`` per ``Eq``/``In``/``Between`` leaf
    routed over packed codes), and ``string_heap_decodes`` counts string
    values that *were* materialised from a dictionary string heap — per-row
    values during predicate evaluation or projection, plus one entry per
    distinct group when a group-by is answered in code space.  It is the
    quantity the code-space paths drive to (near) zero.

    The kernel counters account the remaining compressed-domain paths:
    ``rows_rle_evaluated`` rows answered in RLE run space (with
    ``runs_evaluated`` the runs actually compared — the work really done),
    ``rows_for_evaluated`` rows answered by FOR/delta word-space
    comparisons, and ``rows_kernel_aggregated`` selected rows whose
    aggregate, group-by or top-k was computed run-weighted instead of
    gathered.  ``kernel_declines`` counts predicate subtrees a kernel was
    offered but declined — an outlier-bearing diff column that cannot
    dispatch, a non-monotonic delta column, a non-integer constant — i.e.
    why a block fell off the fast path and decoded instead.

    The scheduler counters account the work-stealing morsel scheduler:
    ``steal_attempts`` counts probes of another worker's deque by a
    drained worker, ``morsels_stolen`` the probes that actually took a
    morsel.  Both stay zero under serial execution or a perfectly
    balanced parallel scan.
    """

    n_blocks: int = 0
    blocks_scanned: int = 0
    blocks_pruned: int = 0
    blocks_full: int = 0
    rows_total: int = 0
    rows_decoded: int = 0
    rows_matched: int = 0
    rows_dict_evaluated: int = 0
    string_heap_decodes: int = 0
    rows_gathered: int = 0
    rows_rle_evaluated: int = 0
    runs_evaluated: int = 0
    rows_for_evaluated: int = 0
    rows_kernel_aggregated: int = 0
    kernel_declines: int = 0
    morsels_stolen: int = 0
    steal_attempts: int = 0

    def merge(self, other: "ScanMetrics") -> "ScanMetrics":
        """Fold another metrics object (covering disjoint work) into this one.

        Used by the parallel engine to combine per-morsel worker metrics;
        every counter is summed, so each block/row must be accounted for by
        exactly one of the merged objects.
        """
        self.n_blocks += other.n_blocks
        self.blocks_scanned += other.blocks_scanned
        self.blocks_pruned += other.blocks_pruned
        self.blocks_full += other.blocks_full
        self.rows_total += other.rows_total
        self.rows_decoded += other.rows_decoded
        self.rows_matched += other.rows_matched
        self.rows_dict_evaluated += other.rows_dict_evaluated
        self.string_heap_decodes += other.string_heap_decodes
        self.rows_gathered += other.rows_gathered
        self.rows_rle_evaluated += other.rows_rle_evaluated
        self.runs_evaluated += other.runs_evaluated
        self.rows_for_evaluated += other.rows_for_evaluated
        self.rows_kernel_aggregated += other.rows_kernel_aggregated
        self.kernel_declines += other.kernel_declines
        self.morsels_stolen += other.morsels_stolen
        self.steal_attempts += other.steal_attempts
        return self

    @property
    def pruned_fraction(self) -> float:
        """Fraction of blocks skipped or answered from statistics alone."""
        if self.n_blocks == 0:
            return 0.0
        return (self.blocks_pruned + self.blocks_full) / self.n_blocks

    @property
    def decoded_fraction(self) -> float:
        """Fraction of rows whose predicate columns were actually decoded."""
        if self.rows_total == 0:
            return 0.0
        return self.rows_decoded / self.rows_total

    def describe(self) -> str:
        return (
            f"{self.blocks_scanned}/{self.n_blocks} blocks scanned "
            f"({self.blocks_pruned} pruned, {self.blocks_full} fully covered); "
            f"{self.rows_decoded:,}/{self.rows_total:,} rows decoded, "
            f"{self.rows_dict_evaluated:,} dict-evaluated, "
            f"{self.rows_rle_evaluated:,} rle-evaluated, "
            f"{self.rows_for_evaluated:,} for-evaluated, "
            f"{self.rows_matched:,} matched; "
            f"{self.kernel_declines:,} kernel declines, "
            f"{self.morsels_stolen:,}/{self.steal_attempts:,} morsels stolen/steal attempts"
        )


# ---------------------------------------------------------------------------
# per-block predicate evaluation (dictionary-domain aware)
# ---------------------------------------------------------------------------


class _CodesView:
    """A code-space column view that memoizes the packed-code unpack.

    ``codes()`` is a full O(n_rows) bit-unpack; a compound predicate with
    several leaves on the same dictionary column would otherwise repeat it
    per leaf.  Everything else delegates to the underlying encoded column.
    """

    def __init__(self, column):
        self._column = column
        self._codes: np.ndarray | None = None

    def codes(self) -> np.ndarray:
        if self._codes is None:
            self._codes = self._column.codes()
        return self._codes

    def __getattr__(self, name):
        return getattr(self._column, name)


def evaluate_block_predicate(
    block: CompressedBlock,
    predicate: Predicate,
    metrics: ScanMetrics | None = None,
    use_dictionary: bool = True,
    use_kernels: bool = True,
    kernels: KernelRegistry | None = None,
) -> np.ndarray:
    """Evaluate ``predicate`` over one block, returning a boolean row mask.

    The predicate tree is walked leaf by leaf.  Before recursing into any
    node, a single-column subtree is offered to the compressed-domain
    :class:`~repro.query.kernels.KernelRegistry` (``kernels``, defaulting to
    the standard registry): RLE columns answer whole element-wise subtrees
    in run space, FOR/delta columns answer constant comparisons in word
    space, frequency columns in hot-value space.  A leaf whose column is
    dictionary-encoded in this block and which can translate itself to code
    space (``Eq``/``In``/``Between``) is answered from the packed codes
    without decoding any value; ``Not`` nodes negate their child's mask, so
    a negated code-space leaf stays in code space.  Remaining leaves decode
    their column once per block (a shared cache deduplicates columns used by
    several leaves) and apply the generic vectorized kernel.
    ``use_dictionary=False`` forces the decode path past the dictionary
    route, ``use_kernels=False`` past the kernel registry — together they
    restore the decode-then-compare baseline the benchmarks measure against.
    ``metrics``, when given, receives the ``rows_decoded``,
    ``rows_dict_evaluated``, kernel-counter and ``string_heap_decodes``
    accounting (``rows_decoded`` is charged once per block, on the first
    column actually materialised; blocks answered purely in an encoded
    domain add nothing).  An out-of-core proxy is materialised with the
    predicate's column set only — on a column-granular table the
    non-predicate columns' bytes are never fetched.
    """
    tracer = current_tracer()
    with tracer.span("predicate") as span:
        block = resolve_block(block, columns=predicate.columns())
        registry = (kernels if kernels is not None else DEFAULT_KERNELS) if use_kernels else None
        decoded_cache: dict[str, "np.ndarray | list[str]"] = {}
        encoded_cache: dict[str, _CodesView] = {}
        all_positions: np.ndarray | None = None
        rows_charged = False
        paths: set[str] = set()

        def decode(name: str):
            # Resolves horizontal dependencies through this same cache, so a
            # compound predicate touching both a diff-encoded column and its
            # reference decodes the reference once per block, not per leaf.
            if name not in decoded_cache:
                nonlocal all_positions, rows_charged
                if metrics is not None:
                    if not rows_charged:
                        # First materialisation for this block: these rows are
                        # actually decoded (code-space-only blocks never are).
                        rows_charged = True
                        metrics.rows_decoded += block.n_rows
                    if isinstance(block.columns.get(name), DictEncodedStringColumn):
                        metrics.string_heap_decodes += block.n_rows
                if all_positions is None:
                    all_positions = np.arange(block.n_rows, dtype=np.int64)
                dependency = block.dependency(name)
                if dependency is None:
                    values = block.column(name).gather(all_positions)
                else:
                    references = {ref: decode(ref) for ref in dependency.references}
                    values = block.column(name).gather_with_reference(  # type: ignore[attr-defined]
                        all_positions, references
                    )
                decoded_cache[name] = values
            return decoded_cache[name]

        def walk(node: Predicate) -> np.ndarray:
            if registry is not None:
                kernel_names = node.columns()
                if len(kernel_names) == 1:
                    # Kernel-first: RLE answers compound single-column subtrees in
                    # run space, so the offer happens before any recursion; the
                    # other kernels simply decline non-leaf nodes.
                    kernel_mask = registry.predicate_mask(block, kernel_names[0], node, metrics)
                    if kernel_mask is not None:
                        if tracer.enabled:
                            paths.add("kernel")
                        return kernel_mask
            if isinstance(node, Not):
                return ~walk(node.child)
            if isinstance(node, (And, Or)):
                mask = walk(node.children[0])
                for child in node.children[1:]:
                    if isinstance(node, And):
                        mask = mask & walk(child)
                    else:
                        mask = mask | walk(child)
                return mask
            names = node.columns()
            if use_dictionary and len(names) == 1:
                encoded = encoded_cache.get(names[0])
                if encoded is None:
                    column = block.code_space_column(names[0])
                    if column is not None:
                        encoded = encoded_cache[names[0]] = _CodesView(column)
                if encoded is not None:
                    statistics = (
                        block.statistics.column(names[0])
                        if block.statistics is not None
                        else None
                    )
                    mask = node.evaluate_encoded(encoded, statistics)
                    if mask is not None:
                        if metrics is not None:
                            metrics.rows_dict_evaluated += block.n_rows
                        if tracer.enabled:
                            paths.add("dict")
                        return np.asarray(mask, dtype=bool)
            if tracer.enabled:
                paths.add("decode")
            return np.asarray(node.evaluate({name: decode(name) for name in names}), dtype=bool)

        mask = walk(predicate)
        if mask.shape != (block.n_rows,):
            raise ValidationError("predicate evaluation must return one boolean per row")
        if tracer.enabled:
            span.annotate(
                rows=block.n_rows,
                matched=int(np.count_nonzero(mask)),
                path="+".join(sorted(paths)),
            )
        return mask


@dataclass(frozen=True)
class ScanPlan:
    """The planner's per-block decisions for one predicate."""

    predicate: Predicate | None
    decisions: tuple[str, ...]

    @property
    def n_blocks(self) -> int:
        return len(self.decisions)

    @property
    def required_columns(self) -> tuple[str, ...]:
        """Columns a *scan* block must materialise to evaluate the predicate.

        This is the per-block required-column set the execution layer
        threads down to the fetch layer: a column-granular table then reads
        (and prefetches) only these columns' sub-segments for the blocks
        classified :data:`BlockDecision.SCAN`.
        """
        return self.predicate.columns() if self.predicate is not None else ()

    def count_of(self, decision: str) -> int:
        return sum(1 for d in self.decisions if d == decision)


class ScanPlanner:
    """Classify every block of a relation against a predicate's zone-map tests.

    ``use_statistics=False`` degrades to the pre-zone-map behaviour (every
    block is scanned), which the benchmarks use as the full-decode baseline.

    Decisions are memoized per ``(block, predicate fingerprint)``: repeated
    queries with equal predicates (the common dashboard/refresh pattern) skip
    the zone-map tests entirely.  Predicates without a stable fingerprint
    (:class:`~repro.query.predicates.ColumnPredicate`) are never cached, and
    the memo is dropped whenever the planner observes a different relation
    (tracked via :attr:`~repro.storage.relation.Relation.cache_token`).
    """

    #: Memo entries kept before the cache is wholesale dropped — bounds the
    #: memory of a long-lived planner fed ever-changing predicate constants
    #: (each distinct fingerprint adds one entry per block).
    MAX_CACHED_DECISIONS = 65_536

    def __init__(self, relation: Relation, use_statistics: bool = True):
        self._relation = relation
        self._use_statistics = use_statistics
        self._decisions: dict[tuple[int, str], str] = {}
        self._cache_token = relation.cache_token

    @property
    def relation(self) -> Relation:
        return self._relation

    @relation.setter
    def relation(self, relation: Relation) -> None:
        self._relation = relation

    def invalidate(self) -> None:
        """Drop every memoized decision."""
        self._decisions.clear()

    @property
    def cached_decisions(self) -> int:
        """Number of memoized (block, predicate) decisions currently held."""
        return len(self._decisions)

    def plan(self, predicate: Predicate | None) -> ScanPlan:
        tracer = current_tracer()
        with tracer.span("plan") as span:
            if self._relation.cache_token != self._cache_token:
                self.invalidate()
                self._cache_token = self._relation.cache_token
            if len(self._decisions) >= self.MAX_CACHED_DECISIONS:
                # Epoch eviction: cheaper than LRU bookkeeping on the hot path,
                # and repeated predicates re-warm within one plan() call each.
                self.invalidate()
            fingerprint = predicate.fingerprint() if predicate is not None else None
            decisions = []
            for index, block in enumerate(self._relation):
                if predicate is None:
                    decisions.append(BlockDecision.FULL)
                    continue
                if not self._use_statistics:
                    decisions.append(BlockDecision.SCAN)
                    continue
                key = None if fingerprint is None else (index, fingerprint)
                if key is not None and key in self._decisions:
                    decisions.append(self._decisions[key])
                    continue
                statistics = block.statistics
                if block.n_rows == 0 or not predicate.might_match(statistics):
                    decision = BlockDecision.PRUNE
                elif predicate.matches_all(statistics):
                    decision = BlockDecision.FULL
                else:
                    decision = BlockDecision.SCAN
                if key is not None:
                    self._decisions[key] = decision
                decisions.append(decision)
            plan = ScanPlan(predicate=predicate, decisions=tuple(decisions))
            if tracer.enabled:
                span.annotate(
                    blocks=plan.n_blocks,
                    pruned=plan.count_of(BlockDecision.PRUNE),
                    full=plan.count_of(BlockDecision.FULL),
                    scanned=plan.count_of(BlockDecision.SCAN),
                )
            return plan
