"""Query tracing: timed spans, stage histograms and trace documents.

Counters (:class:`~repro.query.scan.ScanMetrics`,
:class:`~repro.storage.cache.IOMetrics`) say *what* the engine did; this
module says *where the time went*.  A :class:`Tracer` collects
:class:`Span` records — monotonic-clock intervals with parent/child
nesting — from every layer of a query: the planner's prune/full/scan
classification, per-block predicate evaluation (kernel vs dictionary vs
decode), cache and file I/O, gather and aggregation, and the server's
admission/parse/execute/serialize stages.  A finished tracer renders as a
:class:`QueryTrace` JSON document or an ``EXPLAIN ANALYZE`` table, and
feeds per-stage :class:`LatencyHistogram` buckets for ``/metrics``.

A traced disk-backed aggregate looks like this (one ``predicate`` /
``aggregate`` pair per scanned block, ``fetch`` under whichever span
first touched the cache, worker spans adopted across threads)::

    request                                  ... server admission + lifecycle
    ├─ parse
    ├─ admission
    ├─ execute                               ... QueryCompiler.execute
    │  ├─ plan        blocks=8 pruned=5
    │  ├─ aggregate   block=3   ┐ worker thread corra-engine_0
    │  │  ├─ predicate rows=4096 path=kernel
    │  │  │  └─ fetch  outcome=miss bytes=16384
    │  │  │     └─ io  bytes=16384
    │  │  └─ gather   rows=512
    │  └─ aggregate   block=6   ┐ worker thread corra-engine_1
    │     └─ ...
    └─ serialize

Design rules:

* **Ambient, not threaded.**  The active tracer lives in a thread-local
  set by :func:`activate`; deep layers (the block cache, the table
  reader) call :func:`current_tracer` instead of growing a parameter.
  Worker threads join the caller's trace via :meth:`Tracer.adopt`, which
  installs both the tracer and the parent span on the worker.
* **Disabled means free.**  :data:`TRACE_DISABLED` is a shared
  :class:`NullTracer` whose :meth:`~NullTracer.span` returns one global
  no-op span — no allocation, no lock, no clock read — so instrumented
  hot paths cost a thread-local read and a no-op ``with`` when tracing
  is off.
* **Spans only open via ``with``.**  The ``span-discipline`` analyzer
  rule (``corra check``) enforces it, so a span can never leak open past
  an early ``return`` or an exception.
* **Fixed histogram buckets.**  :data:`HISTOGRAM_BUCKETS` is a log-2
  ladder (``2**-16`` ≈ 15 µs up to 8 s) shared by every stage and every
  process, so histograms merge across workers and scrapes align across
  restarts.
"""

from __future__ import annotations

import json
import threading
import time
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping

__all__ = [
    "HISTOGRAM_BUCKETS",
    "LatencyHistogram",
    "NullTracer",
    "QueryTrace",
    "Span",
    "StageHistograms",
    "TRACE_DISABLED",
    "Tracer",
    "activate",
    "current_tracer",
]

#: Log-2 latency bucket upper bounds in seconds: ``2**-16`` (~15 µs) up to
#: ``2**3`` (8 s), plus an implicit ``+Inf`` overflow.  Powers of two keep
#: the ladder fixed across stages, workers and process restarts, so bucket
#: counts merge exactly — a prerequisite for Prometheus histograms.
HISTOGRAM_BUCKETS: tuple[float, ...] = tuple(2.0**exp for exp in range(-16, 4))


class Span:
    """One timed interval in a trace; a context manager.

    Created by :meth:`Tracer.span` and *only* entered via ``with`` (the
    ``span-discipline`` analyzer rule enforces this), so the interval
    always closes, even on early return or exception.  ``attrs`` carries
    stage payloads (rows, bytes, cache outcome) added via
    :meth:`annotate` from inside the body.
    """

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "thread", "attrs", "_tracer")

    def __init__(self, tracer: "Tracer", span_id: int, name: str, attrs: dict[str, Any]):
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id: int | None = None
        self.name = name
        self.start = 0.0
        self.end = 0.0
        self.thread = ""
        self.attrs = attrs

    @property
    def duration(self) -> float:
        return self.end - self.start

    def annotate(self, **attrs: Any) -> "Span":
        """Attach stage payload (``rows=…``, ``bytes=…``) to the span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        return self

    def __exit__(self, *exc: object) -> None:
        self._tracer._exit(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration * 1e3:.3f} ms, attrs={self.attrs!r})"


class _NullSpan:
    """The shared do-nothing span :data:`TRACE_DISABLED` hands out.

    One module-level instance serves every ``with tracer.span(...)`` site
    when tracing is off: entering, exiting and annotating are no-ops, so
    the disabled path allocates nothing and reads no clock.
    """

    __slots__ = ()

    name = ""
    attrs: Mapping[str, Any] = {}

    def annotate(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer with every operation stubbed out; see :data:`TRACE_DISABLED`."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def adopt(self, parent: object = None) -> _NullSpan:
        return _NULL_SPAN

    def current(self) -> None:
        return None

    def annotate(self, **attrs: Any) -> None:
        return None

    def spans(self) -> tuple[Span, ...]:
        return ()


#: The ambient default: tracing off, every instrumented site a no-op.
TRACE_DISABLED = NullTracer()


class Tracer:
    """Collects spans for one query, across threads.

    Each thread keeps its own open-span stack (parenting is per-thread);
    finished spans land in one lock-guarded list.  Worker threads join
    the trace with :meth:`adopt`, inheriting the caller's current span as
    parent so fan-out work nests under the span that launched it.  An
    optional :class:`StageHistograms` sink observes every finished span's
    duration under its stage name.
    """

    enabled = True

    def __init__(self, histograms: "StageHistograms | None" = None):
        self._lock = threading.Lock()
        self._finished: list[Span] = []
        self._next_id = 1
        self._local = threading.local()
        self._histograms = histograms

    # -- span lifecycle ---------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """A new span; open it with ``with``, never by hand."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return Span(self, span_id, name, attrs)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _enter(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            span.parent_id = stack[-1].span_id
        span.thread = threading.current_thread().name
        stack.append(span)
        span.start = time.perf_counter()

    def _exit(self, span: Span) -> None:
        span.end = time.perf_counter()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            self._finished.append(span)
        if self._histograms is not None:
            self._histograms.observe(span.name, span.end - span.start)

    # -- cross-thread propagation -----------------------------------------------

    def adopt(self, parent: Span | None) -> "_Adoption":
        """Join this trace from a worker thread, nesting under ``parent``.

        Used (with ``with``) around fan-out worker bodies: installs this
        tracer as the thread's ambient tracer and pushes ``parent`` so
        spans the worker opens become its children.
        """
        return _Adoption(self, parent)

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def annotate(self, **attrs: Any) -> None:
        """Annotate the innermost open span on this thread, if any."""
        span = self.current()
        if span is not None:
            span.attrs.update(attrs)

    # -- results ----------------------------------------------------------------

    def spans(self) -> tuple[Span, ...]:
        """Finished spans so far, in completion order."""
        with self._lock:
            return tuple(self._finished)


class _Adoption:
    """Context installing a tracer + parent span on a worker thread."""

    __slots__ = ("_tracer", "_parent", "_previous")

    def __init__(self, tracer: Tracer, parent: Span | None):
        self._tracer = tracer
        self._parent = parent
        self._previous: object = None

    def __enter__(self) -> "_Adoption":
        self._previous = getattr(_ACTIVE, "tracer", None)
        _ACTIVE.tracer = self._tracer
        if self._parent is not None:
            self._tracer._stack().append(self._parent)
        return self

    def __exit__(self, *exc: object) -> None:
        if self._parent is not None:
            stack = self._tracer._stack()
            if stack and stack[-1] is self._parent:
                stack.pop()
        if self._previous is None:
            del _ACTIVE.tracer
        else:
            _ACTIVE.tracer = self._previous


# -- ambient tracer -------------------------------------------------------------

_ACTIVE = threading.local()


def current_tracer() -> "Tracer | NullTracer":
    """The thread's active tracer, or :data:`TRACE_DISABLED`.

    Deep layers (block cache, table reader) call this instead of taking
    a tracer parameter; :func:`activate` and :meth:`Tracer.adopt` set it.
    """
    tracer = getattr(_ACTIVE, "tracer", None)
    return tracer if tracer is not None else TRACE_DISABLED


class _Activation:
    """Context installing ``tracer`` as the thread's ambient tracer."""

    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: "Tracer | NullTracer"):
        self._tracer = tracer
        self._previous: object = None

    def __enter__(self) -> "Tracer | NullTracer":
        self._previous = getattr(_ACTIVE, "tracer", None)
        _ACTIVE.tracer = self._tracer
        return self._tracer

    def __exit__(self, *exc: object) -> None:
        if self._previous is None:
            del _ACTIVE.tracer
        else:
            _ACTIVE.tracer = self._previous


def activate(tracer: "Tracer | NullTracer") -> _Activation:
    """``with activate(tracer): ...`` scopes the ambient tracer."""
    return _Activation(tracer)


def run_adopted(
    tracer: Tracer, parent: Span | None, fn: Callable[[Any], Any], item: Any
) -> Any:
    """Run ``fn(item)`` on a worker thread inside ``tracer``'s context."""
    with tracer.adopt(parent):
        return fn(item)


# -- histograms -----------------------------------------------------------------


class LatencyHistogram:
    """Fixed-bucket latency histogram (see :data:`HISTOGRAM_BUCKETS`).

    Thread-safe; ``observe`` is a bisect plus two adds under one lock.
    The snapshot carries *cumulative* bucket counts in Prometheus ``le``
    convention, ready for text exposition.
    """

    __slots__ = ("_lock", "_counts", "_sum", "_count")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * (len(HISTOGRAM_BUCKETS) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, seconds: float) -> None:
        index = bisect_left(HISTOGRAM_BUCKETS, seconds)
        with self._lock:
            self._counts[index] += 1
            self._sum += seconds
            self._count += 1

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other`` in; exact because every histogram shares buckets."""
        with other._lock:
            counts = list(other._counts)
            total, count = other._sum, other._count
        with self._lock:
            for index, value in enumerate(counts):
                self._counts[index] += value
            self._sum += total
            self._count += count

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            total, count = self._sum, self._count
        buckets: list[tuple[str, int]] = []
        cumulative = 0
        for bound, bucket in zip(list(HISTOGRAM_BUCKETS) + [float("inf")], counts):
            cumulative += bucket
            label = "+Inf" if bound == float("inf") else repr(bound)
            buckets.append((label, cumulative))
        return {"count": count, "sum_seconds": total, "buckets": buckets}


class StageHistograms:
    """Per-stage latency histograms, fed by tracers as spans close."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stages: dict[str, LatencyHistogram] = {}

    def observe(self, stage: str, seconds: float) -> None:
        with self._lock:
            histogram = self._stages.get(stage)
            if histogram is None:
                histogram = self._stages[stage] = LatencyHistogram()
        histogram.observe(seconds)

    def stages(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._stages))

    def snapshot(self) -> dict[str, dict[str, Any]]:
        with self._lock:
            stages = dict(self._stages)
        return {name: histogram.snapshot() for name, histogram in sorted(stages.items())}


# -- trace documents ------------------------------------------------------------

#: Attribute keys summed into the per-stage table of a trace document.
_SUMMED_ATTRS = ("rows", "bytes")


@dataclass(frozen=True)
class QueryTrace:
    """A finished trace: the span set plus a query label, renderable.

    ``to_dict`` is the JSON document ``QueryService`` returns for
    ``"trace": true`` requests and ``corra query --trace`` appends to a
    JSONL sink; ``render_tree`` / ``stage_summary`` feed
    ``EXPLAIN ANALYZE``.  Span times are rebased to seconds since the
    earliest span so documents are stable across processes.
    """

    query: str
    spans: tuple[Span, ...]

    @classmethod
    def from_tracer(cls, tracer: "Tracer | NullTracer", query: str = "") -> "QueryTrace":
        return cls(query=query, spans=tracer.spans())

    @property
    def duration_seconds(self) -> float:
        if not self.spans:
            return 0.0
        base = min(span.start for span in self.spans)
        return max(span.end for span in self.spans) - base

    def stage_summary(self) -> dict[str, dict[str, Any]]:
        """Per-stage totals: call count, seconds, summed rows/bytes attrs."""
        stages: dict[str, dict[str, Any]] = {}
        for span in self.spans:
            stage = stages.setdefault(
                span.name, {"calls": 0, "seconds": 0.0, "rows": 0, "bytes": 0}
            )
            stage["calls"] += 1
            stage["seconds"] += span.duration
            for key in _SUMMED_ATTRS:
                value = span.attrs.get(key)
                if isinstance(value, (int, float)):
                    stage[key] += int(value)
        return stages

    def to_dict(self) -> dict[str, Any]:
        base = min((span.start for span in self.spans), default=0.0)
        return {
            "query": self.query,
            "duration_seconds": self.duration_seconds,
            "n_spans": len(self.spans),
            "stages": self.stage_summary(),
            "spans": [
                {
                    "id": span.span_id,
                    "parent": span.parent_id,
                    "name": span.name,
                    "start_seconds": span.start - base,
                    "duration_seconds": span.duration,
                    "thread": span.thread,
                    "attrs": dict(span.attrs),
                }
                for span in sorted(self.spans, key=lambda s: (s.start, s.span_id))
            ],
        }

    def to_json_line(self) -> str:
        """One compact JSON line for a ``corra query --trace`` JSONL sink."""
        return json.dumps(self.to_dict(), separators=(",", ":"), default=str)

    def _children(self) -> dict[int | None, list[Span]]:
        known = {span.span_id for span in self.spans}
        children: dict[int | None, list[Span]] = {}
        for span in sorted(self.spans, key=lambda s: (s.start, s.span_id)):
            parent = span.parent_id if span.parent_id in known else None
            children.setdefault(parent, []).append(span)
        return children

    def render_tree(self) -> str:
        """Indented span tree with durations and attrs, for humans."""
        children = self._children()
        lines: list[str] = []

        def walk(parent: int | None, depth: int) -> Iterator[str]:
            for span in children.get(parent, ()):
                attrs = " ".join(f"{key}={value}" for key, value in sorted(span.attrs.items()))
                label = f"{'  ' * depth}{span.name:<{max(24 - 2 * depth, 1)}}"
                suffix = f"  [{attrs}]" if attrs else ""
                yield f"{label} {span.duration * 1e3:>9.3f} ms{suffix}"
                yield from walk(span.span_id, depth + 1)

        lines.extend(walk(None, 0))
        return "\n".join(lines)
