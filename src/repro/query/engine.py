"""The shared query engine: one object owning all cross-query state.

Before this module, every entry point (``QueryExecutor``, a
``relation.query()`` chain, the CLI) re-created its own planner memo,
worker pool, prefetch threads and cache on every call, and configured them
through a sprawl of repeated keyword arguments.  :class:`Engine` inverts
that: it owns **one** of each shared resource —

* one worker :class:`~concurrent.futures.ThreadPoolExecutor` fanning every
  query's morsels and aggregation tasks;
* one read-ahead pool shared by every open table;
* one :class:`~repro.storage.cache.BlockCache` bounding the combined
  resident bytes of every table (tenant round-robin eviction arbitrates
  the budget between them);
* one :class:`~repro.query.kernels.KernelRegistry`;
* one memoized :class:`~repro.query.plan.QueryCompiler` per relation —
  and through it one :class:`~repro.query.scan.ScanPlanner` memo table —
  so N concurrent queries share warm zone-map decisions

— configured once through an immutable :class:`EngineConfig`.  Queries
start from :meth:`Engine.query` (a :class:`~repro.query.plan.LazyQuery`
bound to the engine) or :meth:`Engine.executor`; tables open by name via
:meth:`Engine.table` when the engine fronts a
:class:`~repro.storage.catalog.Catalog`.  The engine is thread-safe: the
query service calls it from many request threads at once, and results are
bit-identical to serial, per-call execution.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..errors import ValidationError
from ..storage.cache import DEFAULT_CACHE_BYTES, BlockCache, CacheStats
from ..storage.catalog import Catalog
from ..storage.relation import Relation
from .kernels import DEFAULT_KERNELS, KernelRegistry
from .plan import LazyQuery, QueryCompiler
from .scan import ScanPlanner
from .tracing import StageHistograms, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .executor import QueryExecutor

__all__ = ["Engine", "EngineConfig"]

#: Read-ahead threads of an engine's shared prefetch pool.
DEFAULT_PREFETCH_WORKERS = 2


@dataclass(frozen=True)
class EngineConfig:
    """The engine's knobs, consolidated from the legacy keyword sprawl.

    One immutable object replaces the ``workers``/``use_statistics``/
    ``use_dictionary``/``use_kernels``/``cache_bytes``/``prefetch_workers``
    keywords that used to be repeated (inconsistently) across
    ``QueryExecutor``, ``Relation.query``, ``DiskRelation`` and the CLI.
    """

    #: Morsel-driven parallelism per query (``None``/``0`` = all cores).
    workers: int | None = 1
    #: Zone-map pruning and stat-answered aggregates.
    use_statistics: bool = True
    #: Dictionary code-space predicate evaluation and group-by.
    use_dictionary: bool = True
    #: Compressed-domain kernels (RLE run space, FOR/delta word space, ...).
    use_kernels: bool = True
    #: Byte budget of the shared block cache (``None`` = unbounded).
    cache_bytes: int | None = DEFAULT_CACHE_BYTES
    #: Threads of the shared read-ahead pool (``0`` disables prefetch).
    prefetch_workers: int = DEFAULT_PREFETCH_WORKERS

    def resolved_workers(self) -> int:
        from .parallel import resolve_workers

        return resolve_workers(self.workers)

    def with_overrides(self, **overrides: Any) -> "EngineConfig":
        """A copy with the given fields replaced (unknown names rejected)."""
        known = {f.name for f in fields(self)}
        unknown = set(overrides) - known
        if unknown:
            raise ValidationError(f"unknown EngineConfig field(s): {sorted(unknown)}")
        return replace(self, **overrides)


class Engine:
    """Shared, thread-safe query-execution state over one or many relations.

    Parameters
    ----------
    config:
        The :class:`EngineConfig` every query through this engine runs
        under (defaults apply when omitted).
    catalog:
        A :class:`~repro.storage.catalog.Catalog` (or its root directory)
        to serve :meth:`table` lookups from.  The catalog's block cache is
        adopted as the engine's; a directory is wrapped in a fresh catalog
        budgeted at ``config.cache_bytes``.
    cache:
        An explicit shared :class:`BlockCache` (wins over the catalog's).
    kernels:
        The compressed-domain kernel registry (default registry otherwise).
    """

    #: Memoized compilers kept per relation; bounded so a service scanning
    #: many short-lived relations cannot grow planner memos without limit.
    MAX_CACHED_COMPILERS = 64

    def __init__(
        self,
        config: EngineConfig | None = None,
        catalog: "Catalog | str | os.PathLike[str] | None" = None,
        cache: BlockCache | None = None,
        kernels: KernelRegistry | None = None,
    ) -> None:
        self._config = config if config is not None else EngineConfig()
        self._kernels = kernels if kernels is not None else DEFAULT_KERNELS
        if catalog is not None and not isinstance(catalog, Catalog):
            catalog = Catalog(
                Path(catalog), cache=cache, cache_bytes=self._config.cache_bytes
            )
        self._catalog: Catalog | None = catalog
        if cache is not None:
            self._cache = cache
        elif catalog is not None:
            self._cache = catalog.cache
        else:
            self._cache = BlockCache(self._config.cache_bytes)
        self._lock = threading.RLock()
        self._pool: ThreadPoolExecutor | None = None
        self._prefetch_pool: ThreadPoolExecutor | None = None
        self._compilers: "OrderedDict[int, QueryCompiler]" = OrderedDict()
        self._tables: dict[str, Relation] = {}
        self._stage_latency = StageHistograms()
        self._closed = False

    # -- shared resources ------------------------------------------------------

    @property
    def config(self) -> EngineConfig:
        return self._config

    @property
    def cache(self) -> BlockCache:
        """The block cache every table opened by this engine shares."""
        return self._cache

    @property
    def cache_stats(self) -> CacheStats:
        return self._cache.stats

    @property
    def kernels(self) -> KernelRegistry:
        return self._kernels

    @property
    def catalog(self) -> Catalog | None:
        return self._catalog

    def _worker_pool(self) -> ThreadPoolExecutor | None:
        """The shared morsel/aggregation pool (``None`` when serial).

        Created lazily under the engine lock; every compiler's
        ``ParallelEngine`` receives it as an external pool, so concurrent
        queries across relations share one set of worker threads.
        """
        if self._config.resolved_workers() <= 1:
            return None
        with self._lock:
            self._check_open()
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._config.resolved_workers(),
                    thread_name_prefix="corra-engine",
                )
            return self._pool

    def _shared_prefetch_pool(self) -> ThreadPoolExecutor | None:
        if self._config.prefetch_workers <= 0:
            return None
        with self._lock:
            self._check_open()
            if self._prefetch_pool is None:
                self._prefetch_pool = ThreadPoolExecutor(
                    max_workers=self._config.prefetch_workers,
                    thread_name_prefix="corra-prefetch",
                )
            return self._prefetch_pool

    def _check_open(self) -> None:
        if self._closed:
            raise ValidationError("engine is closed")

    # -- compilers -------------------------------------------------------------

    def compiler_for(self, relation: Relation) -> QueryCompiler:
        """The memoized compiler (planner memo + shared pool) for ``relation``.

        Keyed by the relation's ``cache_token``, so repeated queries over
        the same relation — from any thread — share one planner memo table.
        A bounded LRU of compilers caps the memo footprint; evicted
        compilers cost only re-planning, never correctness.
        """
        cfg = self._config
        with self._lock:
            self._check_open()
            token = relation.cache_token
            compiler = self._compilers.get(token)
            if compiler is not None:
                self._compilers.move_to_end(token)
                return compiler
            compiler = QueryCompiler(
                relation,
                use_statistics=cfg.use_statistics,
                workers=cfg.workers,
                use_dictionary=cfg.use_dictionary,
                use_kernels=cfg.use_kernels,
                kernels=self._kernels,
                pool=self._worker_pool(),
            )
            self._compilers[token] = compiler
            while len(self._compilers) > self.MAX_CACHED_COMPILERS:
                # close() only releases compiler-owned pools; the shared
                # engine pool the evicted compiler was using stays up.
                _, evicted = self._compilers.popitem(last=False)
                evicted.close()
            return compiler

    def planner_for(self, relation: Relation) -> ScanPlanner:
        """The memoized zone-map planner for ``relation``."""
        return self.compiler_for(relation).planner

    # -- query entry points ----------------------------------------------------

    def query(self, relation: Relation) -> LazyQuery:
        """Start a lazy query chain bound to this engine's shared state."""
        self._check_open()
        return LazyQuery(relation, engine=self)

    # -- tracing ---------------------------------------------------------------

    @property
    def stage_latency(self) -> StageHistograms:
        """Per-stage latency histograms accumulated across traced queries.

        Every tracer created via :meth:`tracer` feeds its spans' durations
        in here, so the histograms aggregate the engine's whole traced
        lifetime — this is what ``/metrics?format=prometheus`` exposes.
        """
        return self._stage_latency

    def tracer(self) -> Tracer:
        """A fresh per-query tracer wired to this engine's stage histograms.

        Pass it to :meth:`~repro.query.plan.LazyQuery.execute` (or let the
        query service create one per request): the query's span tree is
        collected on the tracer while each span's duration also lands in
        the shared :attr:`stage_latency` buckets.
        """
        return Tracer(histograms=self._stage_latency)

    def executor(self, relation: Relation) -> "QueryExecutor":
        """An imperative :class:`~repro.query.executor.QueryExecutor` adapter."""
        from .executor import QueryExecutor

        return QueryExecutor(relation, engine=self)

    # -- catalog tables --------------------------------------------------------

    def table(self, name: str) -> Relation:
        """Open (once) and return the catalogued table ``name``.

        The relation is opened with the engine's shared cache and prefetch
        pool and memoized, so every query against the same name shares one
        footer parse, one set of lazy blocks and one cache tenant.
        """
        if self._catalog is None:
            raise ValidationError("engine has no catalog attached; pass catalog= to Engine")
        with self._lock:
            self._check_open()
            relation = self._tables.get(name)
            if relation is None:
                relation = self._catalog.open(
                    name,
                    prefetch_workers=self._config.prefetch_workers,
                    prefetch_pool=self._shared_prefetch_pool(),
                )
                self._tables[name] = relation
            return relation

    def tables(self) -> dict[str, Relation]:
        """The currently open tables, by name (a snapshot copy)."""
        with self._lock:
            return dict(self._tables)

    def refresh_table(self, name: str) -> Relation:
        """Re-open a table (after an overwrite), dropping its stale state."""
        with self._lock:
            self._check_open()
            stale = self._tables.pop(name, None)
            if stale is not None:
                self._compilers.pop(stale.cache_token, None)
                close = getattr(stale, "close", None)
                if close is not None:
                    close()
            return self.table(name)

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release every owned resource (idempotent).

        Open tables, memoized compilers, the shared worker pool and the
        prefetch pool are all shut down; the block cache's entries are
        dropped so a closed engine holds no memory.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            tables = list(self._tables.values())
            self._tables.clear()
            compilers = list(self._compilers.values())
            self._compilers.clear()
            pool = self._pool
            self._pool = None
            prefetch_pool = self._prefetch_pool
            self._prefetch_pool = None
        for relation in tables:
            close = getattr(relation, "close", None)
            if close is not None:
                close()
        for compiler in compilers:
            compiler.close()
        if pool is not None:
            pool.shutdown(wait=True)
        if prefetch_pool is not None:
            prefetch_pool.shutdown(wait=True)
        self._cache.clear()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        catalog = "none" if self._catalog is None else str(self._catalog.root)
        return (
            f"Engine(workers={self._config.resolved_workers()}, catalog={catalog}, "
            f"tables={len(self._tables)}, compilers={len(self._compilers)})"
        )
