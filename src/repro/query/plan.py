"""Lazy logical query plans: builder, compiler, and aggregate pushdown.

This is the composable front door of the query engine.  Instead of calling
the imperative :class:`~repro.query.executor.QueryExecutor` methods, a query
is *described* first — as a small tree of logical nodes (:class:`Scan`,
:class:`Filter`, :class:`Project`, :class:`Aggregate`, :class:`Sort`,
:class:`TopK`, :class:`Limit`) built with the fluent :class:`LazyQuery`
API::

    result = (
        relation.query()
        .where(Between("ship", 8_100, 8_200))
        .agg(n=Count(), total=Sum("fare"))
        .execute()
    )

— and only executed when a terminal (:meth:`LazyQuery.execute`,
:meth:`LazyQuery.count`) runs.  Nothing is decoded while the query is being
composed, which is what lets the :class:`QueryCompiler` push work *down*
before any value is materialised:

* **predicate pushdown** — the filter is handed to the existing
  :class:`~repro.query.scan.ScanPlanner` / morsel-driven
  :class:`~repro.query.parallel.ParallelEngine` pipeline, so zone maps
  prune blocks and dictionary leaves run in code space exactly as in the
  imperative path;
* **projection pushdown** — only the columns a node actually references
  are ever decoded; a plan without a projection materialises nothing but
  row ids;
* **aggregation pushdown** — ``count``/``min``/``max``/``sum`` over blocks
  the planner proves *fully covered* are answered from the per-block
  :class:`~repro.storage.statistics.ColumnStatistics` without decoding a
  single row, and a group-by on a dictionary-encoded column aggregates in
  code space, deferring the string-heap materialisation to one decode per
  distinct group;
* **limit pushdown** — ``limit(k)`` truncates the row-id stream *before*
  the projection is materialised;
* **top-k pushdown** — ``order_by(col).limit(k)`` compiles to a fused
  :class:`TopK` that keeps a bounded set of ``k`` candidates per block
  (RLE columns answer in run space) and visits blocks in zone-map bound
  order, stopping as soon as no remaining block's bound can beat the
  current ``k``-th candidate — on a clustered column most blocks are
  never touched, and on a :class:`~repro.storage.disk.DiskRelation`
  never even fetched.

:meth:`LazyQuery.explain` renders the logical tree together with the
planner's per-block prune/full/scan decisions, so the effect of every
pushdown is visible before (or without) running the query.
"""

from __future__ import annotations

import heapq
import math
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from ..encodings.dictionary import DictEncodedIntColumn, DictEncodedStringColumn
from ..errors import UnknownColumnError, ValidationError
from ..storage.block import CompressedBlock
from ..storage.relation import Relation
from .kernels import DEFAULT_KERNELS, KernelRegistry
from .parallel import ParallelEngine, resolve_workers
from .predicates import And, Predicate
from .scan import (
    BlockDecision,
    ScanMetrics,
    ScanPlanner,
    evaluate_block_predicate,
    materialize_block_columns,
    materialize_columns,
    resolve_block,
)
from .tracing import NullTracer, QueryTrace, Tracer, activate, current_tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .engine import Engine

__all__ = [
    "AggregateFunction",
    "Count",
    "Sum",
    "Min",
    "Max",
    "Avg",
    "Var",
    "Std",
    "LogicalNode",
    "Scan",
    "Filter",
    "Project",
    "Aggregate",
    "Sort",
    "TopK",
    "Limit",
    "render_plan",
    "CompiledQuery",
    "PlanResult",
    "QueryCompiler",
    "LazyQuery",
]


# ---------------------------------------------------------------------------
# aggregate functions
# ---------------------------------------------------------------------------


class AggregateFunction:
    """Base of the aggregate function descriptors.

    ``kind`` names the reduction (``count``/``sum``/``min``/``max``/``avg``)
    and ``column`` the input column (``None`` for ``count``, which reduces
    the qualifying rows themselves).  Instances are immutable descriptors;
    the compiler decides per block whether the reduction is answered from
    statistics, in dictionary code space, or by gather-and-reduce.
    """

    kind: str = ""
    column: str | None = None

    def describe(self) -> str:
        return f"{self.kind}({self.column if self.column is not None else '*'})"

    def __repr__(self) -> str:
        return self.describe()


@dataclass(frozen=True, repr=False)
class Count(AggregateFunction):
    """``count(*)`` — the number of qualifying rows."""

    kind = "count"


class _ColumnAggregate(AggregateFunction):
    def __post_init__(self) -> None:
        if not self.column:
            raise ValidationError(f"{self.kind} needs a non-empty input column name")


@dataclass(frozen=True, repr=False)
class Sum(_ColumnAggregate):
    """``sum(column)`` over the qualifying rows (integer columns only)."""

    column: str
    kind = "sum"


@dataclass(frozen=True, repr=False)
class Min(_ColumnAggregate):
    """``min(column)`` over the qualifying rows."""

    column: str
    kind = "min"


@dataclass(frozen=True, repr=False)
class Max(_ColumnAggregate):
    """``max(column)`` over the qualifying rows."""

    column: str
    kind = "max"


@dataclass(frozen=True, repr=False)
class Avg(_ColumnAggregate):
    """``avg(column)`` over the qualifying rows (float result).

    Internally carried as an exact ``(sum, count)`` integer pair and divided
    only at output time, so parallel merges lose no precision and a
    fully-covered block is answered from its ``sum_value``/row-count
    statistics exactly like ``sum`` — including diff-encoded columns, whose
    sums are derived from the reference and the stored deltas.  An empty
    selection yields ``None``.
    """

    column: str
    kind = "avg"


@dataclass(frozen=True, repr=False)
class Var(_ColumnAggregate):
    """``var(column)`` — population variance over the qualifying rows.

    Carried as an exact ``(count, sum, sum of squares)`` integer triple
    that merges across blocks and morsels by plain addition, and finalised
    as ``(n·Σx² − (Σx)²) / n²`` only at output time — the inputs are
    integers, so every partial is exact and parallel merge order cannot
    change the result.  An empty selection yields ``None``.
    """

    column: str
    kind = "var"


@dataclass(frozen=True, repr=False)
class Std(_ColumnAggregate):
    """``std(column)`` — population standard deviation (√ of :class:`Var`).

    Shares :class:`Var`'s exact ``(count, sum, sum of squares)`` partials;
    only the final square root is floating point.
    """

    column: str
    kind = "std"


#: (output name, function) pairs, in output order.
AggregateSpec = tuple[tuple[str, AggregateFunction], ...]


# ---------------------------------------------------------------------------
# logical plan nodes
# ---------------------------------------------------------------------------


class LogicalNode:
    """A node of the logical plan tree (a linear chain ending in a Scan)."""

    def describe(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.describe()


@dataclass(frozen=True, repr=False)
class Scan(LogicalNode):
    """Leaf: read a compressed relation."""

    relation: Relation

    def describe(self) -> str:
        relation = self.relation
        return (
            f"Scan [{len(relation.schema.names)} columns x {relation.n_rows:,} rows "
            f"in {relation.n_blocks} block(s)]"
        )


@dataclass(frozen=True, repr=False)
class Filter(LogicalNode):
    """Keep the child's rows satisfying a predicate."""

    child: LogicalNode
    predicate: Predicate

    def describe(self) -> str:
        return f"Filter [{self.predicate.describe()}]"


@dataclass(frozen=True, repr=False)
class Project(LogicalNode):
    """Materialise only the named columns of the child's rows."""

    child: LogicalNode
    columns: tuple[str, ...]

    def describe(self) -> str:
        return f"Project [{', '.join(self.columns)}]"


@dataclass(frozen=True, repr=False)
class Aggregate(LogicalNode):
    """Reduce the child's rows to named aggregates, optionally per group."""

    child: LogicalNode
    aggregates: AggregateSpec
    group_by: tuple[str, ...] = ()

    def describe(self) -> str:
        parts = ", ".join(f"{name}={fn.describe()}" for name, fn in self.aggregates)
        if self.group_by:
            return f"Aggregate [{parts} group by {', '.join(self.group_by)}]"
        return f"Aggregate [{parts}]"


@dataclass(frozen=True, repr=False)
class Sort(LogicalNode):
    """Order the child's output rows by one column.

    Ordering is total and deterministic: equal keys keep ascending global
    row id, so every execution strategy (serial, work-stealing parallel,
    out-of-core) produces bit-identical output.
    """

    child: LogicalNode
    column: str
    descending: bool = False

    def describe(self) -> str:
        return f"Sort [{self.column} {'desc' if self.descending else 'asc'}]"


@dataclass(frozen=True, repr=False)
class TopK(LogicalNode):
    """:class:`Sort` fused with :class:`Limit`: the ``k`` best rows by one column.

    Semantically identical to ``Limit(Sort(...), k)`` but executed as a
    bounded per-block candidate set merged across blocks, with zone-map
    bounds ordering the block visits and terminating the scan early.
    """

    child: LogicalNode
    column: str
    k: int
    descending: bool = False

    def describe(self) -> str:
        direction = "desc" if self.descending else "asc"
        return f"TopK [{self.column} {direction}, k={self.k}]"


@dataclass(frozen=True, repr=False)
class Limit(LogicalNode):
    """Keep at most ``n`` of the child's output rows."""

    child: LogicalNode
    n: int

    def describe(self) -> str:
        return f"Limit [{self.n}]"


def render_plan(node: LogicalNode) -> str:
    """The logical tree as an indented multi-line string (root first)."""
    lines: list[str] = []
    depth = 0
    current: LogicalNode | None = node
    while current is not None:
        lines.append("  " * depth + current.describe())
        current = getattr(current, "child", None)
        depth += 1
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# compiled form and results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CompiledQuery:
    """A validated, flattened logical plan ready for physical execution.

    ``projection=None`` means no :class:`Project` node was present: the
    query materialises nothing but row ids (the lazy default for
    ``filter``-style calls).
    """

    relation: Relation
    predicate: Predicate | None
    projection: tuple[str, ...] | None
    group_by: tuple[str, ...]
    aggregates: AggregateSpec
    limit: int | None
    #: HAVING predicate, evaluated over the *aggregated* output rows — its
    #: column names are aggregation output names, not physical columns.
    having: Predicate | None = None
    #: Sort column (physical), ``None`` for unordered plans.  With a
    #: ``limit`` the pair executes as a fused zone-map-driven top-k.
    order_by: str | None = None
    descending: bool = False

    def referenced_columns(self) -> tuple[str, ...]:
        """Every column the physical query will read, in first-use order.

        The HAVING predicate is deliberately absent: it references
        aggregation *output* names, which are validated separately.
        """
        seen: list[str] = []
        sources: list[str] = []
        if self.predicate is not None:
            sources.extend(self.predicate.columns())
        sources.extend(self.group_by)
        for _, fn in self.aggregates:
            if fn.column is not None:
                sources.append(fn.column)
        if self.order_by is not None:
            sources.append(self.order_by)
        sources.extend(self.projection or ())
        for name in sources:
            if name not in seen:
                seen.append(name)
        return tuple(seen)

    def gather_columns(self) -> tuple[str, ...]:
        """The group-by and aggregate input columns, in first-use order.

        This is the per-block required-column set of the *gather* side of an
        aggregation — what a block must materialise beyond the predicate
        columns.  A column-granular table fetches only these columns'
        sub-segments for blocks whose aggregates statistics cannot answer.
        """
        seen: list[str] = []
        for name in self.group_by:
            if name not in seen:
                seen.append(name)
        for _, fn in self.aggregates:
            if fn.column is not None and fn.column not in seen:
                seen.append(fn.column)
        return tuple(seen)

    def fingerprint(self) -> str | None:
        """A stable cache key for the whole plan, or ``None``.

        Combines the (canonical) predicate fingerprint with the projection,
        grouping, aggregate and limit shape of the plan.  Two plans with
        equal fingerprints over the same relation state (same
        ``cache_token``) produce bit-identical results, which is what lets
        the query service key its result cache on
        ``(table, plan fingerprint)``.  ``None`` when the predicate has no
        stable fingerprint (opaque :class:`ColumnPredicate`) — such plans
        must never be cached.
        """
        if self.predicate is None:
            pred = ""
        else:
            pred = self.predicate.fingerprint()
            if pred is None:
                return None
        if self.having is None:
            having = ""
        else:
            having = self.having.fingerprint()
            if having is None:
                return None
        projection = "*none*" if self.projection is None else ",".join(self.projection)
        aggregates = ";".join(
            f"{name}:{fn.kind}:{fn.column or ''}" for name, fn in self.aggregates
        )
        order = (
            ""
            if self.order_by is None
            else f"{self.order_by}:{'desc' if self.descending else 'asc'}"
        )
        return (
            f"Plan[pred={pred}|proj={projection}|group={','.join(self.group_by)}"
            f"|aggs={aggregates}|having={having}|order={order}"
            f"|limit={'' if self.limit is None else self.limit}]"
        )


@dataclass
class PlanResult:
    """The output of one executed plan.

    ``columns`` maps output names to value sequences: materialised column
    arrays/lists for projections, per-group key and aggregate value lists
    for aggregations (one entry per group, sorted by group key; exactly one
    entry when there is no group-by).  ``row_ids`` carries the qualifying
    global row ids for non-aggregate plans (``None`` after an aggregation —
    rows were reduced away); they are ascending except under a
    :class:`Sort`/:class:`TopK`, where they follow the requested order.
    """

    columns: dict[str, "np.ndarray | list"]
    row_ids: np.ndarray | None = None
    metrics: ScanMetrics | None = None

    @property
    def n_rows(self) -> int:
        if self.row_ids is not None:
            return int(self.row_ids.size)
        if self.columns:
            return len(next(iter(self.columns.values())))
        return 0

    def column(self, name: str) -> "np.ndarray | list":
        if name not in self.columns:
            raise UnknownColumnError(name, tuple(self.columns))
        return self.columns[name]

    def scalar(self, name: str) -> Any:
        """The single value of an ungrouped aggregate output."""
        values = self.column(name)
        if len(values) != 1:
            raise ValidationError(
                f"column {name!r} holds {len(values)} values, not a scalar; "
                "scalar() is for ungrouped aggregates"
            )
        return values[0]


# ---------------------------------------------------------------------------
# physical execution
# ---------------------------------------------------------------------------

#: Sentinel marking "no rows seen" in min/max partials.
_NO_VALUE = None


def _combine_filters(predicates: list[Predicate]) -> Predicate | None:
    """Stacked Filter nodes (root -> leaf order) as one conjunction.

    Bottom-up order is kept, matching how the filters would have applied.
    """
    if not predicates:
        return None
    if len(predicates) == 1:
        return predicates[0]
    return And(*reversed(predicates))


def _merge_partial(kind: str, a: Any, b: Any) -> Any:
    """Fold two per-block partial aggregate values (either may be None).

    ``avg`` partials are exact ``(sum, count)`` pairs and ``var``/``std``
    partials exact ``(count, sum, sum of squares)`` triples; the division
    (and square root) happens once, at output time.
    """
    if b is None:
        return a
    if a is None:
        return b
    if kind in ("count", "sum"):
        return a + b
    if kind == "avg":
        return (a[0] + b[0], a[1] + b[1])
    if kind in ("var", "std"):
        return (a[0] + b[0], a[1] + b[1], a[2] + b[2])
    if kind == "min":
        return a if a <= b else b
    return a if a >= b else b


def _reduce_values(kind: str, values: "np.ndarray | list") -> "int | str | tuple | None":
    """Reduce gathered values (an int64 array or a string list) directly."""
    if len(values) == 0:
        return 0 if kind in ("count", "sum") else _NO_VALUE
    if isinstance(values, np.ndarray):
        if kind == "sum":
            return int(np.sum(values, dtype=np.int64))
        if kind == "avg":
            return (int(np.sum(values, dtype=np.int64)), int(values.size))
        if kind in ("var", "std"):
            as_int64 = values.astype(np.int64, copy=False)
            return (
                int(values.size),
                int(np.sum(as_int64, dtype=np.int64)),
                int(np.sum(as_int64 * as_int64, dtype=np.int64)),
            )
        if kind == "min":
            return int(values.min())
        return int(values.max())
    if kind == "min":
        return min(values)
    if kind == "max":
        return max(values)
    raise ValidationError(f"cannot {kind} a string column")


def _finalize_partial(kind: str, value: Any) -> Any:
    """Turn a merged partial into its output value (divides avg pairs,
    resolves var/std triples)."""
    if kind == "avg":
        return None if value is None or value[1] == 0 else value[0] / value[1]
    if kind in ("var", "std"):
        if value is None or value[0] == 0:
            return None
        n, total, total_sq = value
        # All-integer numerator keeps the computation exact until the one
        # final division; the max() guards the float rounding of that
        # division from producing a tiny negative variance.
        variance = max((n * total_sq - total * total) / (n * n), 0.0)
        return variance if kind == "var" else math.sqrt(variance)
    if value is None and kind in ("count", "sum"):
        return 0
    return value


class QueryCompiler:
    """Lower logical plans onto the ScanPlanner/ParallelEngine pipeline.

    The compiler owns (or shares) the memoizing planner and the morsel
    engine, so repeated queries reuse zone-map decisions and the worker
    pool.  ``use_statistics=False`` disables both pruning and stat-answered
    aggregates (the decode-and-reduce baseline); ``use_dictionary=False``
    disables every code-space path; ``use_kernels=False`` disables the
    compressed-domain kernel registry (RLE run space, FOR/delta word space,
    run-weighted aggregates and run-space group-by).
    """

    def __init__(
        self,
        relation: Relation,
        use_statistics: bool = True,
        workers: int | None = 1,
        use_dictionary: bool = True,
        planner: ScanPlanner | None = None,
        engine: ParallelEngine | None = None,
        use_kernels: bool = True,
        kernels: KernelRegistry | None = None,
        pool: ThreadPoolExecutor | None = None,
    ) -> None:
        self._relation = relation
        self._use_statistics = use_statistics
        self._use_dictionary = use_dictionary
        self._use_kernels = use_kernels
        self._kernels = kernels if kernels is not None else DEFAULT_KERNELS
        self._workers = resolve_workers(workers)
        self._planner = (
            planner if planner is not None else ScanPlanner(relation, use_statistics=use_statistics)
        )
        self._engine = (
            engine
            if engine is not None
            else ParallelEngine(
                relation,
                workers=self._workers,
                planner=self._planner,
                use_dictionary=use_dictionary,
                use_kernels=use_kernels,
                kernels=kernels,
                pool=pool,
            )
        )

    @property
    def relation(self) -> Relation:
        return self._relation

    @property
    def planner(self) -> ScanPlanner:
        return self._planner

    @property
    def engine(self) -> ParallelEngine:
        return self._engine

    @property
    def workers(self) -> int:
        return self._workers

    def close(self) -> None:
        """Release the engine's worker threads (no-op when serial)."""
        self._engine.close()

    def __enter__(self) -> "QueryCompiler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- compilation -----------------------------------------------------------

    def compile(self, plan: LogicalNode) -> CompiledQuery:
        """Flatten and validate a logical plan against this relation."""
        schema = self._relation.schema
        where: list[Predicate] = []
        having_parts: list[Predicate] = []
        projection: tuple[str, ...] | None = None
        group_by: tuple[str, ...] = ()
        aggregates: AggregateSpec = ()
        limit: int | None = None
        order_by: str | None = None
        descending = False
        order_limit: int | None = None

        # Flatten the chain root -> leaf first: a Filter's meaning depends
        # on whether it sits above or below the Aggregate (HAVING over the
        # aggregated rows vs WHERE over the stored rows), which a single
        # forward walk cannot know yet.
        nodes: list[LogicalNode] = []
        node: LogicalNode = plan
        while not isinstance(node, Scan):
            nodes.append(node)
            child = getattr(node, "child", None)
            if child is None:
                raise ValidationError(f"unsupported logical node {type(node).__name__}")
            node = child
        aggregate_position = next(
            (i for i, n in enumerate(nodes) if isinstance(n, Aggregate)), None
        )

        # Walking root -> leaf, node kinds must come in canonical order —
        # Limit(Sort|TopK(Filter*(Aggregate|Project(Filter*(Scan))))) — so
        # the flattened form executes exactly the semantics the tree
        # expresses.  Out-of-order chains (a Limit below an Aggregate, a
        # Sort below a Project) would silently mean something else, so
        # they are rejected.
        ranks = {Limit: 5, Sort: 4, TopK: 4, Aggregate: 2, Project: 2}
        previous_rank = 6
        for position, current in enumerate(nodes):
            if isinstance(current, Filter):
                is_having = aggregate_position is not None and position < aggregate_position
                rank = 3 if is_having else 1
            else:
                is_having = False
                maybe_rank = ranks.get(type(current))
                if maybe_rank is None:
                    raise ValidationError(
                        f"unsupported logical node {type(current).__name__}"
                    )
                rank = maybe_rank
            if rank > previous_rank:
                raise ValidationError(
                    "logical nodes must nest as "
                    "Limit(Sort|TopK(Filter*(Aggregate|Project(Filter*(Scan))))); "
                    f"found {type(current).__name__} below a node it must enclose"
                )
            previous_rank = rank
            if isinstance(current, Limit):
                if limit is not None:
                    raise ValidationError("a plan may contain at most one Limit node")
                if current.n < 0:
                    raise ValidationError("limit must be non-negative")
                limit = current.n
            elif isinstance(current, (Sort, TopK)):
                if order_by is not None:
                    raise ValidationError("a plan may contain at most one Sort or TopK node")
                order_by = current.column
                descending = current.descending
                if isinstance(current, TopK):
                    if current.k < 0:
                        raise ValidationError("top-k needs a non-negative k")
                    order_limit = current.k
            elif isinstance(current, Aggregate):
                if aggregates:
                    raise ValidationError("a plan may contain at most one Aggregate node")
                if not current.aggregates:
                    raise ValidationError("Aggregate needs at least one aggregate function")
                aggregates = current.aggregates
                group_by = current.group_by
            elif isinstance(current, Project):
                if projection is not None:
                    raise ValidationError("a plan may contain at most one Project node")
                projection = current.columns
            else:
                assert isinstance(current, Filter)
                (having_parts if is_having else where).append(current.predicate)
        if node.relation is not self._relation:
            raise ValidationError("plan scans a different relation than the compiler was built for")
        if aggregates and projection is not None:
            raise ValidationError("Project and Aggregate cannot appear in the same plan")
        if group_by and not aggregates:
            raise ValidationError("group_by needs at least one aggregate")
        if order_by is not None and aggregates:
            raise ValidationError(
                "Sort/TopK cannot be combined with aggregation; order the grouped "
                "output in the caller"
            )
        if order_limit is not None:
            # A TopK is a fused Sort+Limit; an additional enclosing Limit
            # keeps whichever bound is tighter.
            limit = order_limit if limit is None else min(limit, order_limit)

        predicate = _combine_filters(where)
        having = _combine_filters(having_parts)

        compiled = CompiledQuery(
            relation=self._relation,
            predicate=predicate,
            projection=projection,
            group_by=group_by,
            aggregates=aggregates,
            limit=limit,
            having=having,
            order_by=order_by,
            descending=descending,
        )
        for name in compiled.referenced_columns():
            if name not in schema:
                raise UnknownColumnError(name, schema.names)
        output_names = list(group_by)
        for name, fn in aggregates:
            if name in output_names:
                raise ValidationError(f"duplicate output column {name!r} in aggregation")
            output_names.append(name)
            if fn.kind in ("sum", "avg", "var", "std") and schema.dtype(fn.column).is_string:
                raise ValidationError(
                    f"{fn.kind}() needs an integer column, {fn.column!r} is a string"
                )
        if having is not None:
            for name in having.columns():
                if name not in output_names:
                    raise ValidationError(
                        f"having references {name!r}, which is not an output column "
                        "of the aggregation"
                    )
        return compiled

    # -- execution -------------------------------------------------------------

    def execute(
        self, plan: "LogicalNode | CompiledQuery", tracer: "Tracer | None" = None
    ) -> PlanResult:
        """Run a (logical or already compiled) plan and materialise its output.

        ``tracer``, when given, becomes the ambient tracer for the whole
        execution (planner, workers, storage fetches included) and records
        the root ``execute`` span; otherwise the caller's ambient tracer —
        usually :data:`~repro.query.tracing.TRACE_DISABLED` — is kept.
        """
        compiled = plan if isinstance(plan, CompiledQuery) else self.compile(plan)
        active: "Tracer | NullTracer" = tracer if tracer is not None else current_tracer()
        with activate(active):
            with active.span("execute") as root:
                if compiled.aggregates:
                    result = self._execute_aggregate(compiled)
                else:
                    result = self._execute_select(compiled)
                if active.enabled:
                    root.annotate(rows=result.n_rows)
                return result

    def explain(self, plan: LogicalNode, analyze: bool = False) -> str:
        """Render ``plan`` plus the planner's per-block decisions.

        The physical section lists the columns the query could decode at
        most (projection pushdown), the combined predicate, and one line
        per block with its prune/full/scan verdict and global row range.
        ``analyze=True`` additionally *runs* the query under a fresh
        :class:`~repro.query.tracing.Tracer` and appends per-stage wall
        time, rows and bytes plus the recorded span tree — the classic
        ``EXPLAIN ANALYZE``.
        """
        compiled = self.compile(plan)
        lines = ["== logical plan ==", render_plan(plan), "", "== physical scan =="]
        referenced = compiled.referenced_columns()
        lines.append(
            f"columns decoded at most: {', '.join(referenced) if referenced else '(none)'}"
        )
        if compiled.predicate is None:
            lines.append("predicate: (none — every block fully covered)")
        else:
            lines.append(f"predicate: {compiled.predicate.describe()}")
        scan_plan = self._planner.plan(compiled.predicate)
        pruned = scan_plan.count_of(BlockDecision.PRUNE)
        full = scan_plan.count_of(BlockDecision.FULL)
        scanned = scan_plan.count_of(BlockDecision.SCAN)
        lines.append(
            f"blocks: {scan_plan.n_blocks} total — {pruned} pruned, "
            f"{full} fully covered, {scanned} scanned"
        )
        offset = 0
        for index, decision in enumerate(scan_plan.decisions):
            n_rows = self._relation.block(index).n_rows
            end = offset + max(n_rows - 1, 0)
            lines.append(f"  block {index:>4} rows {offset:>10,}..{end:<10,} {decision}")
            offset += n_rows
        if analyze:
            lines.extend(self._explain_analyze(compiled))
        return "\n".join(lines)

    #: Stage display order for ``EXPLAIN ANALYZE``; unknown stages follow
    #: alphabetically, so custom span names still show up.
    _STAGE_ORDER = (
        "execute",
        "plan",
        "scan",
        "steal",
        "predicate",
        "fetch",
        "io",
        "gather",
        "aggregate",
        "sort",
        "topk",
    )

    def _explain_analyze(self, compiled: CompiledQuery) -> list[str]:
        """Run ``compiled`` traced and render the per-stage analysis section."""
        tracer = Tracer()
        result = self.execute(compiled, tracer=tracer)
        trace = QueryTrace.from_tracer(tracer)
        summary = trace.stage_summary()
        lines = ["", "== execution (analyze) =="]
        lines.append(f"wall time: {trace.duration_seconds * 1e3:.3f} ms")
        lines.append(f"rows out: {result.n_rows:,}")
        if result.metrics is not None:
            lines.append(f"scan: {result.metrics.describe()}")
        lines.append(f"{'stage':<12} {'calls':>7} {'time (ms)':>12} {'rows':>14} {'bytes':>14}")
        ordered = [name for name in self._STAGE_ORDER if name in summary]
        ordered += sorted(set(summary) - set(self._STAGE_ORDER))
        for name in ordered:
            stage = summary[name]
            lines.append(
                f"{name:<12} {stage['calls']:>7} {stage['seconds'] * 1e3:>12.3f} "
                f"{stage['rows']:>14,} {stage['bytes']:>14,}"
            )
        lines.extend(["", "== span tree =="])
        lines.append(trace.render_tree())
        return lines

    def _execute_select(self, compiled: CompiledQuery) -> PlanResult:
        metrics: ScanMetrics | None
        if compiled.order_by is not None and compiled.limit is not None:
            # Fused top-k: bounded per-block candidate sets, block visits in
            # zone-map bound order, early exit — the full sort never runs.
            row_ids, metrics = self._topk_row_ids(compiled)
        else:
            if compiled.predicate is None:
                row_ids = np.arange(self._relation.n_rows, dtype=np.int64)
                metrics = None
            else:
                row_ids, metrics = self._engine.scan(compiled.predicate)
            if compiled.order_by is not None:
                row_ids = self._sorted_row_ids(compiled, row_ids)
            if compiled.limit is not None:
                # Limit pushdown: truncate the row-id stream before any value
                # of the projection is materialised.
                row_ids = row_ids[: compiled.limit]
        if compiled.projection is None:
            columns: dict[str, "np.ndarray | list"] = {}
        else:
            columns = materialize_columns(
                self._relation, compiled.projection, row_ids, workers=self._workers
            )
        return PlanResult(columns=columns, row_ids=row_ids, metrics=metrics)

    # -- ordering and top-k ------------------------------------------------------

    def _sorted_row_ids(self, compiled: CompiledQuery, row_ids: np.ndarray) -> np.ndarray:
        """``row_ids`` reordered by the sort column (full materialise-and-sort).

        The order criterion is total: equal keys keep ascending global row
        id, which every stable sort below preserves because the gathered
        keys arrive in ascending row-id order.
        """
        if row_ids.size <= 1:
            return row_ids
        with current_tracer().span("sort", rows=int(row_ids.size)):
            assert compiled.order_by is not None
            keys = materialize_columns(
                self._relation, (compiled.order_by,), row_ids, workers=self._workers
            )[compiled.order_by]
            if isinstance(keys, np.ndarray):
                sort_keys = -keys if compiled.descending else keys
                return row_ids[np.argsort(sort_keys, kind="stable")]
            # String keys: Python's sort is stable and ``reverse=True`` does
            # not reorder equal elements, so ties stay in row-id order.
            order = sorted(
                range(len(keys)), key=lambda i: keys[i], reverse=compiled.descending
            )
            return row_ids[np.asarray(order, dtype=np.int64)]

    def _topk_row_ids(self, compiled: CompiledQuery) -> tuple[np.ndarray, ScanMetrics]:
        """The ``k`` best row ids by the sort column, zone-map-driven.

        Blocks are visited in order of the sort column's min (ascending) or
        max (descending) zone-map bound, one worker-sized wave at a time;
        each visited block contributes at most ``k`` ``(key, row id)``
        candidates (RLE columns in run space, everything else gathered).
        The scan stops as soon as no remaining block's bound can *strictly*
        beat the current ``k``-th candidate — a tie could still displace it
        on the ascending-row-id tie-break, so ties keep scanning.  Blocks
        never visited are re-classified as pruned: on an out-of-core
        relation their data was never fetched.
        """
        column = compiled.order_by
        assert column is not None
        k = compiled.limit if compiled.limit is not None else 0
        tracer = current_tracer()
        with tracer.span("topk", column=column, k=k) as span:
            scan_items, full_items, metrics = self._engine.classify(compiled.predicate)
            entries = sorted(
                [(index, offset, False) for index, offset in scan_items]
                + [(index, offset, True) for index, offset in full_items]
            )
            if k == 0 or not entries:
                for index, _, full in entries:
                    self._reclassify_pruned(metrics, full)
                return np.zeros(0, dtype=np.int64), metrics

            def bound(index: int) -> "int | str | None":
                """The block's best-possible key, or ``None`` (always visit)."""
                if not self._use_statistics:
                    return None
                stats = self._relation.block(index).column_statistics(column)
                if stats is None:
                    return None
                # Derived (non-exact) bounds still *contain* the true range,
                # so ordering/stopping on them is safe — merely less tight.
                return stats.max_value if compiled.descending else stats.min_value

            bounds = [bound(index) for index, _, _ in entries]
            # Unknown bounds first (they must always be visited), then most
            # promising first.  The sign flip makes "promising" uniform.
            sign = -1 if compiled.descending else 1

            def visit_key(position: int) -> "tuple[int, Any]":
                b = bounds[position]
                if b is None:
                    return (0, 0)
                return (1, sign * b) if not isinstance(b, str) else (1, b)

            if compiled.descending and any(isinstance(b, str) for b in bounds):
                # String bounds cannot be sign-flipped; sort descending ones
                # separately (None-first is preserved by the stable sort).
                order = sorted(
                    range(len(entries)),
                    key=lambda p: (bounds[p] is not None, bounds[p] or ""),
                )
                known = [p for p in order if bounds[p] is not None]
                order = [p for p in order if bounds[p] is None] + known[::-1]
            else:
                order = sorted(range(len(entries)), key=visit_key)

            wave = max(1, min(self._workers, len(entries)))
            candidates: list[tuple[Any, int]] = []
            position = 0
            while position < len(order):
                if len(candidates) == k:
                    next_bound = bounds[order[position]]
                    kth_key = candidates[-1][0]
                    if next_bound is not None and (
                        next_bound < kth_key if compiled.descending else next_bound > kth_key
                    ):
                        break
                batch = order[position : position + wave]
                position += len(batch)
                results = self._engine.map_items(
                    [entries[p] for p in batch],
                    lambda entry: self._topk_block(
                        compiled, entry[0], entry[1], entry[2], k
                    ),
                )
                for pairs, partial in results:
                    metrics.merge(partial)
                    candidates.extend(pairs)
                candidates = _topk_pairs(candidates, k, compiled.descending)
            for p in order[position:]:
                self._reclassify_pruned(metrics, entries[p][2])
            if tracer.enabled:
                span.annotate(
                    rows=len(candidates),
                    blocks=position,
                    skipped=len(order) - position,
                )
            return (
                np.asarray([row_id for _, row_id in candidates], dtype=np.int64),
                metrics,
            )

    @staticmethod
    def _reclassify_pruned(metrics: ScanMetrics, full: bool) -> None:
        """Account a block the top-k early exit never visited as pruned."""
        if full:
            metrics.blocks_full -= 1
        else:
            metrics.blocks_scanned -= 1
        metrics.blocks_pruned += 1

    def _topk_block(
        self,
        compiled: CompiledQuery,
        index: int,
        offset: int,
        full: bool,
        k: int,
    ) -> tuple[list[tuple[Any, int]], ScanMetrics]:
        """Worker body: one block's ``k`` best ``(key, global row id)`` pairs.

        The pairs come back already in final rank order.  An RLE sort
        column answers in run space — each run contributes its value once
        and only the winning runs' positions are expanded; otherwise the
        key column is gathered at the selected positions and ranked with a
        stable bounded sort.
        """
        block = self._relation.block(index)
        partial = ScanMetrics()
        mask, n_selected = self._block_selection(block, compiled.predicate, full, partial)
        if n_selected == 0:
            return [], partial
        column = compiled.order_by
        assert column is not None
        if self._use_kernels:
            resolved = resolve_block(block, columns=(column,))
            kernel_mask = mask if mask is not None else np.ones(resolved.n_rows, dtype=bool)
            run_space = self._kernels.topk(
                resolved, column, kernel_mask, k, compiled.descending
            )
            if run_space is not None:
                values, positions = run_space
                partial.rows_kernel_aggregated += n_selected
                return (
                    [(int(v), int(offset + p)) for v, p in zip(values, positions)],
                    partial,
                )
            block = resolved
        positions = np.arange(block.n_rows) if mask is None else np.flatnonzero(mask)
        gathered = self._gather_inputs(block, (column,), positions, partial)
        keys = gathered[column]
        if isinstance(keys, np.ndarray):
            sort_keys = -keys if compiled.descending else keys
            best = np.argsort(sort_keys, kind="stable")[:k]
            return (
                [(int(keys[i]), int(offset + positions[i])) for i in best],
                partial,
            )
        pairs = list(zip(keys, (positions + offset).tolist()))
        if compiled.descending:
            # ``nlargest`` with a key is documented equivalent to a stable
            # reverse sort, so ties keep ascending (row) input order.
            return heapq.nlargest(k, pairs, key=lambda pair: pair[0]), partial
        return heapq.nsmallest(k, pairs), partial

    # -- aggregate execution ---------------------------------------------------

    def _classify_blocks(
        self, predicate: Predicate | None
    ) -> tuple[list[tuple[int, bool]], ScanMetrics]:
        """Plan the scan: ``(block index, fully covered)`` tasks + metrics.

        Delegates to the engine's shared classification step, so the
        aggregate path's block decisions and metrics pre-fill can never
        diverge from the scan path's.
        """
        scan_items, full_items, metrics = self._engine.classify(predicate)
        tasks = sorted(
            [(index, False) for index, _ in scan_items]
            + [(index, True) for index, _ in full_items]
        )
        return tasks, metrics

    def _block_selection(
        self, block: CompressedBlock, predicate: Predicate | None, full: bool, partial: ScanMetrics
    ) -> tuple[np.ndarray | None, int]:
        """The block's qualifying-row mask (``None`` = all rows) and count."""
        if full or predicate is None:
            partial.rows_matched += block.n_rows
            return None, block.n_rows
        mask = evaluate_block_predicate(
            block,
            predicate,
            metrics=partial,
            use_dictionary=self._use_dictionary,
            use_kernels=self._use_kernels,
        )
        n_selected = int(np.count_nonzero(mask))
        partial.rows_matched += n_selected
        return mask, n_selected

    def _gather_inputs(
        self,
        block: CompressedBlock,
        names: Sequence[str],
        positions: np.ndarray,
        partial: ScanMetrics,
    ) -> "dict[str, np.ndarray | list]":
        """Materialise aggregate/group inputs at the selected positions.

        Charged to ``rows_gathered`` (``rows_decoded`` stays a pure
        predicate-decode counter) plus ``string_heap_decodes`` per
        dictionary-encoded string column actually materialised.  An
        out-of-core proxy materialises only ``names`` (plus dependency
        closure) — column-granular on format-v3 tables.
        """
        with current_tracer().span("gather", rows=int(positions.size), columns=len(names)):
            block = resolve_block(block, columns=names)
            partial.rows_gathered += int(positions.size)
            for name in names:
                if isinstance(block.columns.get(name), DictEncodedStringColumn):
                    partial.string_heap_decodes += int(positions.size)
            return materialize_block_columns(block, names, positions)

    def _make_prefetcher(
        self, compiled: CompiledQuery, tasks: list[tuple[int, bool]]
    ) -> "Callable[[int], None] | None":
        """A per-block read-ahead hint for the aggregate path, or ``None``.

        Each task's worker body calls the hint with its block index; the
        hint prefetches the *next scan-classified* block's required columns
        (predicate + gather inputs) while the current block's kernel runs.
        Fully-covered blocks are skipped as targets — statistics usually
        answer them without any data, so prefetching them would waste reads.
        """
        prefetch = getattr(self._relation, "prefetch_block_columns", None)
        if prefetch is None or len(tasks) < 2:
            return None
        columns: list[str] = []
        if compiled.predicate is not None:
            columns.extend(compiled.predicate.columns())
        for name in compiled.gather_columns():
            if name not in columns:
                columns.append(name)
        required = tuple(columns)
        next_scan: dict[int, int | None] = {}
        following: int | None = None
        for index, full in reversed(tasks):
            next_scan[index] = following
            if not full:
                following = index

        def hint(index: int) -> None:
            target = next_scan.get(index)
            if target is not None:
                prefetch(target, required)

        return hint

    def _execute_aggregate(self, compiled: CompiledQuery) -> PlanResult:
        tasks, metrics = self._classify_blocks(compiled.predicate)
        prefetcher = self._make_prefetcher(compiled, tasks)
        if compiled.group_by:
            return self._run_grouped(compiled, tasks, metrics, prefetcher)
        return self._run_ungrouped(compiled, tasks, metrics, prefetcher)

    # .. ungrouped ..............................................................

    def _run_ungrouped(
        self,
        compiled: CompiledQuery,
        tasks: list[tuple[int, bool]],
        metrics: ScanMetrics,
        prefetcher: "Callable[[int], None] | None" = None,
    ) -> PlanResult:
        aggs = compiled.aggregates
        results = self._engine.map_items(
            tasks, lambda task: self._ungrouped_block(compiled, task[0], task[1], prefetcher)
        )
        totals: list = [None] * len(aggs)
        for state, partial in results:
            metrics.merge(partial)
            for slot, (_, fn) in enumerate(aggs):
                totals[slot] = _merge_partial(fn.kind, totals[slot], state[slot])
        columns: dict[str, "np.ndarray | list"] = {}
        for slot, (name, fn) in enumerate(aggs):
            columns[name] = [_finalize_partial(fn.kind, totals[slot])]
        if compiled.having is not None:
            # HAVING filters the aggregated output — here a single row.
            columns = _apply_having(columns, compiled.having)
        if compiled.limit is not None:
            columns = {name: values[: compiled.limit] for name, values in columns.items()}
        return PlanResult(columns=columns, row_ids=None, metrics=metrics)

    def _ungrouped_block(
        self,
        compiled: CompiledQuery,
        index: int,
        full: bool,
        prefetcher: "Callable[[int], None] | None" = None,
    ) -> tuple[list, ScanMetrics]:
        """Worker body: one block's partial aggregate values plus metrics."""
        tracer = current_tracer()
        with tracer.span("aggregate", block=index) as span:
            state, partial = self._ungrouped_block_inner(compiled, index, full, prefetcher)
            if tracer.enabled:
                span.annotate(rows=partial.rows_matched)
            return state, partial

    def _ungrouped_block_inner(
        self,
        compiled: CompiledQuery,
        index: int,
        full: bool,
        prefetcher: "Callable[[int], None] | None" = None,
    ) -> tuple[list, ScanMetrics]:
        if prefetcher is not None:
            prefetcher(index)
        block = self._relation.block(index)
        partial = ScanMetrics()
        mask, n_selected = self._block_selection(block, compiled.predicate, full, partial)
        aggs = compiled.aggregates
        state: list = [None] * len(aggs)
        pending: list[int] = []
        for slot, (_, fn) in enumerate(aggs):
            if fn.kind == "count":
                state[slot] = n_selected
            elif n_selected == 0:
                state[slot] = 0 if fn.kind == "sum" else _NO_VALUE
            elif full and self._use_statistics:
                # Aggregation pushdown: a fully-covered block aggregates all
                # of its rows, so exact zone-map statistics answer the
                # reduction without decoding anything.  An avg is the block's
                # exact sum paired with its row count.
                stats = block.column_statistics(fn.column)
                if fn.kind == "avg":
                    total = stats.aggregate_value("sum") if stats is not None else None
                    value = None if total is None else (total, stats.row_count)
                else:
                    value = stats.aggregate_value(fn.kind) if stats is not None else None
                state[slot] = value
                if value is None:
                    pending.append(slot)
            else:
                pending.append(slot)
        if pending and self._use_kernels:
            # Run-weighted aggregation: an RLE input column answers each
            # pending reduction as Σ value·selected_count over its runs —
            # nothing is gathered.  Pending slots always have a non-empty
            # selection, so ``None`` unambiguously means "kernel declined"
            # (0 is a valid sum).
            names = []
            for slot in pending:
                column = aggs[slot][1].column
                if column not in names:
                    names.append(column)
            block = resolve_block(block, columns=names)
            kernel_mask = mask if mask is not None else np.ones(block.n_rows, dtype=bool)
            remaining = []
            for slot in pending:
                fn = aggs[slot][1]
                value = self._kernels.aggregate(block, fn.column, kernel_mask, fn.kind)
                if value is None:
                    remaining.append(slot)
                else:
                    state[slot] = value
                    partial.rows_kernel_aggregated += n_selected
            pending = remaining
        if pending:
            names = []
            for slot in pending:
                column = aggs[slot][1].column
                if column not in names:
                    names.append(column)
            positions = np.arange(block.n_rows) if mask is None else np.flatnonzero(mask)
            gathered = self._gather_inputs(block, names, positions, partial)
            for slot in pending:
                fn = aggs[slot][1]
                state[slot] = _reduce_values(fn.kind, gathered[fn.column])
        return state, partial

    # .. grouped ................................................................

    def _run_grouped(
        self,
        compiled: CompiledQuery,
        tasks: list[tuple[int, bool]],
        metrics: ScanMetrics,
        prefetcher: "Callable[[int], None] | None" = None,
    ) -> PlanResult:
        aggs = compiled.aggregates
        results = self._engine.map_items(
            tasks, lambda task: self._grouped_block(compiled, task[0], task[1], prefetcher)
        )
        merged: dict = {}
        any_code_space = False
        for groups, used_code_space, partial in results:
            metrics.merge(partial)
            any_code_space = any_code_space or used_code_space
            for key, state in groups.items():
                existing = merged.get(key)
                if existing is None:
                    merged[key] = state
                else:
                    for slot, (_, fn) in enumerate(aggs):
                        existing[slot] = _merge_partial(fn.kind, existing[slot], state[slot])

        keys = sorted(merged)
        if compiled.having is None and compiled.limit is not None:
            # Without a HAVING the limit can truncate before any key is
            # decoded; a HAVING must see every group first.
            keys = keys[: compiled.limit]
        single = len(compiled.group_by) == 1
        group_is_string = [
            self._relation.schema.dtype(name).is_string for name in compiled.group_by
        ]
        if single and group_is_string[0] and any_code_space:
            # The group keys travelled as raw heap byte slices; this is the
            # one decode per distinct group the code-space path deferred.
            metrics.string_heap_decodes += len(keys)
        columns: dict[str, "np.ndarray | list"] = {}
        for position, name in enumerate(compiled.group_by):
            if single:
                values = [_output_key(key) for key in keys]
            else:
                values = [_output_key(key[position]) for key in keys]
            columns[name] = values
        for slot, (name, fn) in enumerate(aggs):
            columns[name] = [_finalize_partial(fn.kind, merged[key][slot]) for key in keys]
        if compiled.having is not None:
            columns = _apply_having(columns, compiled.having)
            if compiled.limit is not None:
                columns = {
                    name: values[: compiled.limit] for name, values in columns.items()
                }
        return PlanResult(columns=columns, row_ids=None, metrics=metrics)

    def _grouped_block(
        self,
        compiled: CompiledQuery,
        index: int,
        full: bool,
        prefetcher: "Callable[[int], None] | None" = None,
    ) -> tuple[dict, bool, ScanMetrics]:
        """Worker body: one block's per-group partial states plus metrics."""
        tracer = current_tracer()
        with tracer.span("aggregate", block=index) as span:
            groups, used_code_space, partial = self._grouped_block_inner(
                compiled, index, full, prefetcher
            )
            if tracer.enabled:
                span.annotate(rows=partial.rows_matched, groups=len(groups))
            return groups, used_code_space, partial

    def _grouped_block_inner(
        self,
        compiled: CompiledQuery,
        index: int,
        full: bool,
        prefetcher: "Callable[[int], None] | None" = None,
    ) -> tuple[dict, bool, ScanMetrics]:
        if prefetcher is not None:
            prefetcher(index)
        block = self._relation.block(index)
        partial = ScanMetrics()
        mask, n_selected = self._block_selection(block, compiled.predicate, full, partial)
        if n_selected == 0:
            return {}, False, partial
        # Grouping always touches block data from here on; materialise an
        # out-of-core proxy once — column-granular tables fetch only the
        # group keys and aggregate inputs.
        block = resolve_block(block, columns=compiled.gather_columns())
        aggs = compiled.aggregates
        group_by = compiled.group_by

        # Group keys: a single dictionary-encoded column groups in code
        # space — unique packed codes, keys as raw dictionary entries (byte
        # slices for strings, so no heap entry is decoded here at all).
        encoded = block.code_space_column(group_by[0]) if len(group_by) == 1 else None
        if not self._use_dictionary:
            encoded = None
        used_code_space = False
        keys: list
        if isinstance(encoded, (DictEncodedIntColumn, DictEncodedStringColumn)):
            codes = encoded.codes()
            selected_codes = codes if mask is None else codes[mask]
            unique_codes, inverse = np.unique(selected_codes, return_inverse=True)
            if isinstance(encoded, DictEncodedStringColumn):
                heap = encoded.heap
                keys = [heap.key_bytes(int(code)) for code in unique_codes]
            else:
                keys = [int(value) for value in encoded.dictionary[unique_codes]]
            used_code_space = True
            gather_names: list[str] = []
        else:
            run_groups = None
            if self._use_kernels and len(group_by) == 1:
                # Run-space group-by: an RLE group column's groups are its
                # surviving run values; the per-row inverse comes from
                # repeating each run's group id by its selected count, in
                # the same ascending row order the gather path would use.
                kernel_mask = mask if mask is not None else np.ones(block.n_rows, dtype=bool)
                run_groups = self._kernels.group_keys(block, group_by[0], kernel_mask)
            if run_groups is not None:
                keys, inverse = run_groups
                partial.rows_kernel_aggregated += n_selected
                gather_names = []
            else:
                gather_names = list(group_by)

        value_names = []
        for _, fn in aggs:
            if fn.kind != "count" and fn.column not in gather_names + value_names:
                value_names.append(fn.column)

        gathered = {}
        if gather_names or value_names:
            positions = np.arange(block.n_rows) if mask is None else np.flatnonzero(mask)
            gathered = self._gather_inputs(block, gather_names + value_names, positions, partial)
        if gather_names:
            keys, inverse = _python_group_keys(group_by, gathered)

        n_groups = len(keys)
        states = [[None] * len(aggs) for _ in range(n_groups)]
        for slot, (_, fn) in enumerate(aggs):
            if fn.kind == "count":
                counts = np.bincount(inverse, minlength=n_groups)
                for g in range(n_groups):
                    states[g][slot] = int(counts[g])
                continue
            values = gathered[fn.column]
            if isinstance(values, np.ndarray):
                reduced = _grouped_reduce_ints(fn.kind, values, inverse, n_groups)
                for g in range(n_groups):
                    states[g][slot] = reduced[g]
            else:
                for g, value in zip(inverse, values):
                    states[g][slot] = _merge_partial(fn.kind, states[g][slot], value)
        return dict(zip(keys, states)), used_code_space, partial


def _python_group_keys(group_by: tuple[str, ...], gathered: dict) -> tuple[list, np.ndarray]:
    """Hashable group keys + per-row group index from decoded group columns.

    A single group column is vectorized through ``np.unique``; only
    multi-column grouping falls back to a per-row Python loop over key
    tuples.  Single string columns normalise to UTF-8 bytes so keys merge
    with the byte slices the code-space path produces for other blocks of
    the same relation (per-block encodings may differ).
    """
    if len(group_by) == 1:
        values = gathered[group_by[0]]
        arr = values if isinstance(values, np.ndarray) else np.asarray(values)
        unique, inverse = np.unique(arr, return_inverse=True)
        if arr.dtype.kind in ("U", "S"):
            keys: list = [str(u).encode("utf-8") for u in unique]
        else:
            keys = [int(u) for u in unique]
        return keys, inverse
    columns = [
        gathered[name] if isinstance(gathered[name], np.ndarray) else list(gathered[name])
        for name in group_by
    ]
    mapping: dict = {}
    inverse = np.empty(len(columns[0]), dtype=np.int64)
    for i, key in enumerate(zip(*columns)):
        inverse[i] = mapping.setdefault(key, len(mapping))
    return list(mapping), inverse


def _grouped_reduce_ints(kind: str, values: np.ndarray, inverse: np.ndarray, n_groups: int) -> list:
    """Exact per-group int64 reduction via unbuffered ufunc scatter."""
    if kind == "avg":
        sums = np.zeros(n_groups, dtype=np.int64)
        np.add.at(sums, inverse, values)
        counts = np.bincount(inverse, minlength=n_groups)
        return [(int(s), int(c)) for s, c in zip(sums, counts)]
    if kind in ("var", "std"):
        as_int64 = values.astype(np.int64, copy=False)
        sums = np.zeros(n_groups, dtype=np.int64)
        np.add.at(sums, inverse, as_int64)
        squares = np.zeros(n_groups, dtype=np.int64)
        np.add.at(squares, inverse, as_int64 * as_int64)
        counts = np.bincount(inverse, minlength=n_groups)
        return [(int(c), int(s), int(q)) for c, s, q in zip(counts, sums, squares)]
    if kind == "sum":
        out = np.zeros(n_groups, dtype=np.int64)
        np.add.at(out, inverse, values)
    elif kind == "min":
        out = np.full(n_groups, np.iinfo(np.int64).max)
        np.minimum.at(out, inverse, values)
    else:
        out = np.full(n_groups, np.iinfo(np.int64).min)
        np.maximum.at(out, inverse, values)
    return [int(v) for v in out]


def _topk_pairs(
    pairs: "list[tuple[Any, int]]", k: int, descending: bool
) -> "list[tuple[Any, int]]":
    """The ``k`` best ``(key, row id)`` pairs under the total order criterion.

    Ascending ranks by ``(key, row id)`` directly; descending needs key
    descending but row id still *ascending* on ties, which two stable
    passes deliver for any key type (strings cannot be negated).
    """
    if descending:
        by_row = sorted(pairs, key=lambda pair: pair[1])
        return sorted(by_row, key=lambda pair: pair[0], reverse=True)[:k]
    return sorted(pairs)[:k]


def _apply_having(
    columns: "dict[str, np.ndarray | list]", predicate: Predicate
) -> "dict[str, np.ndarray | list]":
    """Filter aggregated output rows by a HAVING predicate.

    Rows where any referenced output is ``None`` (the empty-selection
    result of min/max/avg/var) are dropped first, mirroring SQL's NULL
    comparison semantics, so the predicate only ever sees real values.
    """
    names = predicate.columns()
    n_rows = len(next(iter(columns.values()))) if columns else 0
    keep = [
        i
        for i in range(n_rows)
        if all(columns[name][i] is not None for name in names)
    ]
    if keep:
        sub = {name: [columns[name][i] for i in keep] for name in names}
        mask = np.asarray(predicate.evaluate(sub), dtype=bool)
        keep = [i for i, flag in zip(keep, mask) if flag]
    return {name: [values[i] for i in keep] for name, values in columns.items()}


def _output_key(key: object) -> object:
    """A merged group key as an output value (bytes decode back to str)."""
    if isinstance(key, bytes):
        return key.decode("utf-8")
    if isinstance(key, np.integer):
        return int(key)
    return key


# ---------------------------------------------------------------------------
# fluent builder
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _QuerySpec:
    """The accumulated state of a fluent chain (immutable between calls)."""

    predicate: Predicate | None = None
    projection: tuple[str, ...] | None = None
    group_keys: tuple[str, ...] = ()
    aggregates: AggregateSpec = ()
    limit: int | None = None
    order_column: str | None = None
    order_desc: bool = False
    having_predicate: Predicate | None = None


class LazyQuery:
    """Fluent, lazy query builder over one compressed relation.

    Every chaining call returns a *new* ``LazyQuery``; nothing touches the
    data until a terminal (:meth:`execute`, :meth:`count`) runs, and
    :meth:`explain` shows the logical tree plus the planner's per-block
    decisions without executing anything.  Typical use::

        top = (
            relation.query()
            .where(Eq("flag", "Y") & Between("ship", 8_100, 8_200))
            .select("ship", "fare")
            .limit(100)
            .execute()
        )
        by_tag = relation.query().group_by("tag").agg(n=Count()).execute()

    ``workers``/``use_statistics``/``use_dictionary``/``use_kernels``
    mirror the :class:`~repro.query.executor.QueryExecutor` knobs and are
    fixed when the chain starts (via
    :meth:`~repro.storage.relation.Relation.query`).  A chain started from
    a shared :class:`~repro.query.engine.Engine` (``engine=``) takes its
    settings — and, crucially, its memoized compiler, worker pool and
    kernel registry — from the engine instead.  The metrics of the most
    recent terminal run on *this* chain link are available as
    :attr:`last_metrics`.
    """

    def __init__(
        self,
        relation: Relation,
        workers: int | None = 1,
        use_statistics: bool = True,
        use_dictionary: bool = True,
        use_kernels: bool = True,
        engine: "Engine | None" = None,
        _spec: _QuerySpec | None = None,
        _compiler_box: "list[QueryCompiler | None] | None" = None,
    ) -> None:
        self._relation = relation
        self._workers = workers
        self._use_statistics = use_statistics
        self._use_dictionary = use_dictionary
        self._use_kernels = use_kernels
        self._engine = engine
        self._spec = _spec if _spec is not None else _QuerySpec()
        #: One compiler per chain, created on the first terminal and shared
        #: by every link derived from the same ``relation.query()`` root
        #: (the single-slot box is what all links alias, so links diverging
        #: before the first terminal still share it): repeated terminals
        #: keep the planner's zone-map memo warm and reuse the engine's
        #: worker pool (idle threads are joined at interpreter shutdown, as
        #: for QueryExecutor).
        self._compiler_box = _compiler_box if _compiler_box is not None else [None]
        self._last_metrics: ScanMetrics | None = None

    # -- fluent chain ----------------------------------------------------------

    def _chain(self, **changes: Any) -> "LazyQuery":
        return LazyQuery(
            self._relation,
            workers=self._workers,
            use_statistics=self._use_statistics,
            use_dictionary=self._use_dictionary,
            use_kernels=self._use_kernels,
            engine=self._engine,
            _spec=replace(self._spec, **changes),
            _compiler_box=self._compiler_box,
        )

    def where(self, *predicates: Predicate) -> "LazyQuery":
        """Add filter predicates (AND-combined with any existing ones)."""
        if not predicates:
            raise ValidationError("where() needs at least one predicate")
        terms = [self._spec.predicate] if self._spec.predicate is not None else []
        terms.extend(predicates)
        combined = terms[0] if len(terms) == 1 else And(*terms)
        return self._chain(predicate=combined)

    def select(self, *columns: str) -> "LazyQuery":
        """Project the named columns (aggregating queries name outputs via agg)."""
        if not columns:
            raise ValidationError("select() needs at least one column")
        if self._spec.aggregates or self._spec.group_keys:
            raise ValidationError(
                "select() cannot be combined with agg()/group_by(); "
                "aggregate outputs are named by agg()"
            )
        return self._chain(projection=tuple(columns))

    def group_by(self, *columns: str) -> "LazyQuery":
        """Group the aggregation by the named columns."""
        if not columns:
            raise ValidationError("group_by() needs at least one column")
        if self._spec.projection is not None:
            raise ValidationError("group_by() cannot be combined with select()")
        if self._spec.order_column is not None:
            raise ValidationError("group_by() cannot be combined with order_by()")
        return self._chain(group_keys=tuple(columns))

    def agg(self, **aggregates: AggregateFunction) -> "LazyQuery":
        """Add named aggregate outputs, e.g. ``agg(n=Count(), hi=Max("v"))``."""
        if not aggregates:
            raise ValidationError("agg() needs at least one name=function pair")
        for name, fn in aggregates.items():
            if not isinstance(fn, AggregateFunction):
                raise ValidationError(
                    "agg() values must be aggregate functions "
                    f"(Count/Sum/Min/Max/Avg/Var/Std), got {fn!r} for {name!r}"
                )
        if self._spec.projection is not None:
            raise ValidationError("agg() cannot be combined with select()")
        if self._spec.order_column is not None:
            raise ValidationError("agg() cannot be combined with order_by()")
        return self._chain(aggregates=self._spec.aggregates + tuple(aggregates.items()))

    def having(self, *predicates: Predicate) -> "LazyQuery":
        """Filter the *aggregated* output rows (AND-combined, like where()).

        The predicates reference aggregation output names — group keys and
        ``agg()`` output columns — and run over the aggregated rows, after
        the per-group reduction and before any :meth:`limit`.  Groups whose
        referenced output is ``None`` (an empty-selection min/max/avg) are
        dropped, mirroring SQL's NULL comparison semantics.  Requires an
        aggregation on the chain by the time a terminal runs.
        """
        if not predicates:
            raise ValidationError("having() needs at least one predicate")
        terms = (
            [self._spec.having_predicate]
            if self._spec.having_predicate is not None
            else []
        )
        terms.extend(predicates)
        combined = terms[0] if len(terms) == 1 else And(*terms)
        return self._chain(having_predicate=combined)

    def order_by(self, column: str, desc: bool = False) -> "LazyQuery":
        """Order the output rows by ``column`` (ties keep ascending row id).

        Followed by :meth:`limit`, the pair compiles to a fused
        :class:`TopK`: bounded per-block candidate heaps, block visits in
        zone-map bound order, and an early exit that skips — and on disk
        never fetches — blocks that cannot affect the answer.  Not
        combinable with ``agg()``/``group_by()``.
        """
        if not column:
            raise ValidationError("order_by() needs a column name")
        if self._spec.aggregates or self._spec.group_keys:
            raise ValidationError("order_by() cannot be combined with agg()/group_by()")
        return self._chain(order_column=column, order_desc=bool(desc))

    def limit(self, n: int) -> "LazyQuery":
        """Keep at most ``n`` output rows (applied before materialisation)."""
        if n < 0:
            raise ValidationError("limit must be non-negative")
        return self._chain(limit=n)

    # -- plan assembly ---------------------------------------------------------

    def logical_plan(self) -> LogicalNode:
        """The logical tree this chain describes (Scan at the bottom)."""
        spec = self._spec
        node: LogicalNode = Scan(self._relation)
        if spec.predicate is not None:
            node = Filter(node, spec.predicate)
        if spec.aggregates:
            node = Aggregate(node, aggregates=spec.aggregates, group_by=spec.group_keys)
            if spec.having_predicate is not None:
                # A Filter above the Aggregate is the HAVING position.
                node = Filter(node, spec.having_predicate)
        elif spec.group_keys:
            raise ValidationError("group_by() needs at least one aggregate; add .agg(...)")
        elif spec.having_predicate is not None:
            raise ValidationError("having() needs an aggregation; add .agg(...)")
        else:
            projection = spec.projection
            if projection is None:
                projection = self._relation.schema.names
            node = Project(node, tuple(projection))
        if spec.order_column is not None:
            if spec.limit is not None:
                # order_by().limit(k) fuses into a bounded-heap top-k.
                return TopK(
                    node, column=spec.order_column, k=spec.limit, descending=spec.order_desc
                )
            node = Sort(node, column=spec.order_column, descending=spec.order_desc)
        if spec.limit is not None:
            node = Limit(node, spec.limit)
        return node

    def _compiler(self) -> QueryCompiler:
        if self._engine is not None:
            # Engine-bound chains share the engine's memoized compiler (and
            # through it the engine's planner memo, worker pool and kernel
            # registry) with every other query on the same relation.
            return self._engine.compiler_for(self._relation)
        if self._compiler_box[0] is None:
            self._compiler_box[0] = QueryCompiler(
                self._relation,
                use_statistics=self._use_statistics,
                workers=self._workers,
                use_dictionary=self._use_dictionary,
                use_kernels=self._use_kernels,
            )
        return self._compiler_box[0]

    # -- terminals -------------------------------------------------------------

    @property
    def last_metrics(self) -> ScanMetrics | None:
        """Metrics of the most recent execute()/count() on this chain link."""
        return self._last_metrics

    def explain(self, analyze: bool = False) -> str:
        """Render the logical tree plus per-block prune/full/scan decisions.

        ``analyze=True`` also runs the query under a tracer and appends
        per-stage wall time, rows and bytes plus the span tree.
        """
        return self._compiler().explain(self.logical_plan(), analyze=analyze)

    def execute(self, tracer: "Tracer | None" = None) -> PlanResult:
        """Compile and run the plan, materialising its output.

        ``tracer``, when given, records the execution's span tree (see
        :mod:`repro.query.tracing`).
        """
        result = self._compiler().execute(self.logical_plan(), tracer=tracer)
        self._last_metrics = result.metrics
        return result

    def count(self, tracer: "Tracer | None" = None) -> int:
        """The number of qualifying rows, without materialising any output.

        Shortcut for ``agg(count=Count())`` on a plain filter chain; blocks
        the zone maps prove fully covered are answered from metadata alone
        (check :attr:`last_metrics` — ``rows_decoded`` stays zero when every
        block is pruned or covered).  A ``limit(k)`` on the chain caps the
        result, matching ``execute().n_rows``.  ``tracer`` records the
        execution's span tree, as for :meth:`execute`.
        """
        if self._spec.aggregates or self._spec.group_keys or self._spec.having_predicate:
            raise ValidationError("count() is for plain filter chains; use agg(n=Count())")
        spec = self._spec
        node: LogicalNode = Scan(self._relation)
        if spec.predicate is not None:
            node = Filter(node, spec.predicate)
        node = Aggregate(node, aggregates=(("count", Count()),))
        result = self._compiler().execute(node, tracer=tracer)
        self._last_metrics = result.metrics
        total = int(result.scalar("count"))
        if spec.limit is not None:
            total = min(total, spec.limit)
        return total

    def close(self) -> None:
        """Release the chain's worker threads, if any were started.

        Optional, exactly like :meth:`QueryExecutor.close`: serial chains
        never start a pool, and parallel pools are joined at interpreter
        shutdown anyway.  The chain stays usable afterwards.  Engine-bound
        chains own nothing — the engine's shared state is left untouched
        (close the :class:`~repro.query.engine.Engine` itself instead).
        """
        if self._engine is not None:
            return
        if self._compiler_box[0] is not None:
            self._compiler_box[0].close()
