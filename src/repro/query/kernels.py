"""Compressed-domain predicate and aggregate kernels per encoding.

PR 2-3 taught the scan pipeline to answer ``Eq``/``In``/``Between`` over
dictionary columns in *code space*.  This module carries the same idea to the
remaining vertical encodings, each exploiting its own physical layout:

* **RLE — run space.**  Any single-column subtree of element-wise nodes
  (``Eq``/``Between``/``In`` composed with ``And``/``Or``/``Not``) is
  evaluated once per *run* over the (value, length) arrays and fanned out to
  a row mask with ``np.repeat``.  Aggregates become run-weighted sums
  (Σ value·run_length over surviving runs), group-by keys are the
  surviving run values, and top-k walks the runs best-first — pushing each
  (value, run-length) pair once per run — so the row values are never
  materialised.
* **FOR/bit-packing — word space.**  Constant comparisons are shifted by the
  frame of reference and run directly over the packed words
  (:meth:`~repro.bitpack.BitPackedArray.compare_range`); machine lane widths
  (8/16/32/64) compare a zero-copy view of the packed buffer.
* **Delta — checkpoint space.**  On monotonic columns a range predicate is
  two binary searches over the checkpoint index, each decoding exactly one
  segment; the mask is a contiguous span.  Non-monotonic columns decline and
  fall back to the decode path.
* **Frequency — hot-value space.**  The predicate runs over the (at most
  ``n_hot``) hot values plus the exception list, and the verdicts fan out to
  rows through the packed codes.

A :class:`KernelRegistry` maps ``encoding_name`` to its kernel; the scan,
aggregation and group-by layers consult it per (encoding, predicate) pair,
exactly as they consult the dictionary code-space path.  Every kernel is
*exact*: it answers with the same mask/aggregate the decode-then-compare
baseline would produce, or returns ``None`` to decline.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..encodings.bitpacked import ForBitPackedColumn
from ..encodings.delta import DeltaEncodedColumn
from ..encodings.frequency import FrequencyEncodedColumn
from ..encodings.rle import RleEncodedColumn
from .predicates import And, Between, Eq, In, Not, Or, Predicate
from .tracing import current_tracer

__all__ = [
    "ColumnKernel",
    "RleKernel",
    "ForKernel",
    "DeltaKernel",
    "FrequencyKernel",
    "KernelRegistry",
    "DEFAULT_KERNELS",
]


def _run_space_safe(node: Predicate) -> bool:
    """Whether a predicate subtree is element-wise (safe to evaluate per run).

    ``Eq``/``Between``/``In`` decide each row from its value alone, and
    ``And``/``Or``/``Not`` preserve that, so the whole subtree can run once
    per distinct run value.  Opaque nodes (``ColumnPredicate``) may inspect
    positions or neighbours and are excluded.
    """
    if isinstance(node, Not):
        return _run_space_safe(node.child)
    if isinstance(node, (And, Or)):
        return all(_run_space_safe(child) for child in node.children)
    return isinstance(node, (Eq, Between, In))


def _is_int(value) -> bool:
    return isinstance(value, (int, np.integer))


class ColumnKernel:
    """Compressed-domain evaluation for one encoding.

    Subclasses answer what they can and return ``None`` for everything else;
    the caller then falls back to the decode-then-compare path, so a kernel
    never needs to be complete — only correct.
    """

    #: ``EncodedColumn.encoding_name`` this kernel serves.
    encoding_name: str = ""

    def predicate_mask(self, name: str, column, node: Predicate) -> np.ndarray | None:
        """Row mask for ``node`` over the encoded column, or ``None``."""
        return None

    def aggregate(self, column, mask: np.ndarray, kind: str):
        """Partial aggregate of ``kind`` over the rows selected by ``mask``.

        Only called with at least one selected row, so ``None`` always means
        *unsupported* (never an empty-selection result).
        """
        return None

    def group_keys(self, column, mask: np.ndarray):
        """``(keys, inverse)`` for grouping the selected rows, or ``None``.

        ``keys`` are the distinct selected values (sorted, as Python ints)
        and ``inverse`` maps each selected row — in ascending row order — to
        its index in ``keys``.
        """
        return None

    def topk(self, column, mask: np.ndarray, k: int, descending: bool):
        """Top-``k`` ``(values, positions)`` over the selected rows, or ``None``.

        ``positions`` are block-local row indices already in final rank
        order (best first, equal keys broken by ascending position) and
        ``values`` are the matching keys, both length ``min(k, selected)``.
        """
        return None

    def charge(self, metrics, column) -> None:
        """Record one answered predicate in the scan metrics."""


class RleKernel(ColumnKernel):
    """Run-space evaluation over :class:`RleEncodedColumn`.

    The only kernel that answers *compound* single-column subtrees: every
    element-wise node evaluates over the ``n_runs`` distinct run values, so
    the whole subtree collapses to one pass over runs plus one fan-out.
    """

    encoding_name = "rle"

    def predicate_mask(self, name: str, column, node: Predicate) -> np.ndarray | None:
        if not isinstance(column, RleEncodedColumn) or not _run_space_safe(node):
            return None
        run_mask = np.asarray(node.evaluate({name: column.run_values()}), dtype=bool)
        return column.expand_run_mask(run_mask)

    def _selected_per_run(self, column, mask: np.ndarray) -> np.ndarray:
        """How many selected rows fall in each run.

        The ``int64`` cast matters: ``np.add.reduceat`` over a boolean array
        computes logical OR per segment, not a sum.
        """
        if column.n_runs == 0:
            return np.zeros(0, dtype=np.int64)
        return np.add.reduceat(np.asarray(mask, dtype=np.int64), column.run_starts)

    def aggregate(self, column, mask: np.ndarray, kind: str):
        if not isinstance(column, RleEncodedColumn):
            return None
        counts = self._selected_per_run(column, mask)
        selected = int(counts.sum())
        if kind == "count":
            return selected
        run_values = column.run_values()
        if kind == "sum":
            return int(np.sum(run_values * counts, dtype=np.int64))
        if kind in ("min", "max"):
            surviving = run_values[counts > 0]
            if surviving.size == 0:
                return None
            return int(surviving.min()) if kind == "min" else int(surviving.max())
        if kind == "avg":
            return (int(np.sum(run_values * counts, dtype=np.int64)), selected)
        if kind in ("var", "std"):
            total = int(np.sum(run_values * counts, dtype=np.int64))
            total_sq = int(np.sum(run_values * run_values * counts, dtype=np.int64))
            return (selected, total, total_sq)
        return None

    def group_keys(self, column, mask: np.ndarray):
        if not isinstance(column, RleEncodedColumn):
            return None
        counts = self._selected_per_run(column, mask)
        survivors = counts > 0
        unique_values, run_inverse = np.unique(
            column.run_values()[survivors], return_inverse=True
        )
        # Rows expand run by run (runs are in row order), so repeating each
        # run's group id by its selected count yields the inverse in the same
        # ascending row order as ``np.flatnonzero(mask)``.
        mapped = np.zeros(column.n_runs, dtype=np.int64)
        mapped[survivors] = run_inverse
        inverse = np.repeat(mapped, counts)
        return [int(v) for v in unique_values], inverse

    def topk(self, column, mask: np.ndarray, k: int, descending: bool):
        if not isinstance(column, RleEncodedColumn) or k <= 0:
            return None
        counts = self._selected_per_run(column, mask)
        survivors = np.flatnonzero(counts > 0)
        if survivors.size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        run_values = column.run_values()
        keys = run_values[survivors]
        # Stable argsort keeps equal-valued runs in ascending run (= row)
        # order, which is exactly the (key, row id) tie-break the sort
        # operator promises; negating flips the key order without touching
        # the tie-break.
        order = np.argsort(-keys if descending else keys, kind="stable")
        starts = column.run_starts
        lengths = column.run_lengths()
        mask_arr = np.asarray(mask, dtype=bool)
        out_values: list[int] = []
        out_positions: list[int] = []
        remaining = k
        for run_index in survivors[order]:
            start = int(starts[run_index])
            length = int(lengths[run_index])
            positions = np.flatnonzero(mask_arr[start : start + length]) + start
            take = positions[:remaining]
            out_positions.extend(int(p) for p in take)
            out_values.extend([int(run_values[run_index])] * int(take.size))
            remaining -= int(take.size)
            if remaining <= 0:
                break
        return (
            np.asarray(out_values, dtype=np.int64),
            np.asarray(out_positions, dtype=np.int64),
        )

    def charge(self, metrics, column) -> None:
        metrics.rows_rle_evaluated += column.n_values
        metrics.runs_evaluated += column.n_runs


class ForKernel(ColumnKernel):
    """Word-space comparisons over :class:`ForBitPackedColumn`.

    Constants shift by the frame of reference and compare against the packed
    words; non-integer constants decline (the decode path already implements
    the mixed-type degrade semantics).
    """

    encoding_name = "for_bitpack"

    def predicate_mask(self, name: str, column, node: Predicate) -> np.ndarray | None:
        if not isinstance(column, ForBitPackedColumn):
            return None
        if isinstance(node, Between):
            if (node.low is not None and not _is_int(node.low)) or (
                node.high is not None and not _is_int(node.high)
            ):
                return None
            return column.compare_range(node.low, node.high)
        if isinstance(node, Eq):
            if not _is_int(node.value):
                return None
            return column.compare_values((node.value,))
        if isinstance(node, In):
            if not all(_is_int(v) for v in node.values):
                return None
            return column.compare_values(node.values)
        return None

    def charge(self, metrics, column) -> None:
        metrics.rows_for_evaluated += column.n_values


class DeltaKernel(ColumnKernel):
    """Checkpoint-index comparisons over monotonic :class:`DeltaEncodedColumn`.

    The column's ``compare_*`` helpers return ``None`` on non-monotonic data,
    which this kernel passes through — the caller falls back to decoding.
    """

    encoding_name = "delta"

    def predicate_mask(self, name: str, column, node: Predicate) -> np.ndarray | None:
        if not isinstance(column, DeltaEncodedColumn):
            return None
        if isinstance(node, Between):
            if (node.low is not None and not _is_int(node.low)) or (
                node.high is not None and not _is_int(node.high)
            ):
                return None
            return column.compare_range(node.low, node.high)
        if isinstance(node, Eq):
            if not _is_int(node.value):
                return None
            return column.compare_values((node.value,))
        if isinstance(node, In):
            if not all(_is_int(v) for v in node.values):
                return None
            return column.compare_values(node.values)
        return None

    def charge(self, metrics, column) -> None:
        metrics.rows_for_evaluated += column.n_values


class FrequencyKernel(ColumnKernel):
    """Hot-value evaluation over :class:`FrequencyEncodedColumn`.

    The predicate runs over the hot values and the exception list only, then
    fans out through the packed codes — a small dictionary in disguise, so it
    charges the dictionary code-space counter.
    """

    encoding_name = "frequency"

    def predicate_mask(self, name: str, column, node: Predicate) -> np.ndarray | None:
        if not isinstance(column, FrequencyEncodedColumn):
            return None
        if not isinstance(node, (Eq, Between, In)):
            return None
        return column.evaluate_hot(
            lambda values: np.asarray(node.evaluate({name: values}), dtype=bool)
        )

    def charge(self, metrics, column) -> None:
        metrics.rows_dict_evaluated += column.n_values


class KernelRegistry:
    """Dispatch table from ``encoding_name`` to its compressed-domain kernel.

    Consulted by :func:`~repro.query.scan.evaluate_block_predicate` (masks),
    the aggregation layer (run-weighted aggregates) and the group-by layer
    (run-space group keys).  Horizontally encoded columns never dispatch — a
    kernel sees only self-contained vertical columns.  Dictionary columns are
    deliberately *not* registered here: their code-space path predates this
    registry and keeps its own dispatch.
    """

    def __init__(self, kernels: Iterable[ColumnKernel] = ()):
        self._kernels: dict[str, ColumnKernel] = {}
        for kernel in kernels:
            self.register(kernel)

    def register(self, kernel: ColumnKernel) -> None:
        self._kernels[kernel.encoding_name] = kernel

    @property
    def encodings(self) -> tuple[str, ...]:
        return tuple(self._kernels)

    def _lookup(self, block, name: str):
        if block.dependency(name) is not None:
            return None, None
        columns = getattr(block, "columns", None)
        if not isinstance(columns, dict):
            return None, None
        column = columns.get(name)
        if column is None:
            return None, None
        kernel = self._kernels.get(getattr(column, "encoding_name", ""))
        return kernel, column

    def predicate_mask(self, block, name: str, node: Predicate, metrics=None) -> np.ndarray | None:
        """``node``'s row mask over ``block``'s encoded column, or ``None``.

        Charges the kernel's scan-metrics counters on success and
        ``kernel_declines`` when a fast path existed but declined: a diff
        column whose dependency blocks dispatch, or a kernel that inspected
        the node and bowed out (non-integer constant, non-monotonic delta,
        unsupported node shape).  Columns with no registered kernel charge
        nothing — there was never a fast path to fall off.
        """
        if block.dependency(name) is not None:
            if metrics is not None:
                metrics.kernel_declines += 1
            return None
        kernel, column = self._lookup(block, name)
        if kernel is None:
            return None
        mask = kernel.predicate_mask(name, column, node)
        if mask is None:
            if metrics is not None:
                metrics.kernel_declines += 1
            return None
        if metrics is not None:
            kernel.charge(metrics, column)
        # Name the compressed domain that answered on the enclosing
        # ``predicate`` span (no-op when tracing is off).
        current_tracer().annotate(kernel=kernel.encoding_name)
        return np.asarray(mask, dtype=bool)

    def aggregate(self, block, name: str, mask: np.ndarray, kind: str):
        """Partial aggregate over the selected rows, or ``None``.

        Must only be called with a non-empty selection (see
        :meth:`ColumnKernel.aggregate`).
        """
        kernel, column = self._lookup(block, name)
        if kernel is None:
            return None
        value = kernel.aggregate(column, mask, kind)
        if value is not None:
            current_tracer().annotate(kernel=kernel.encoding_name)
        return value

    def group_keys(self, block, name: str, mask: np.ndarray):
        """Run-space ``(keys, inverse)`` for a group-by column, or ``None``."""
        kernel, column = self._lookup(block, name)
        if kernel is None:
            return None
        return kernel.group_keys(column, mask)

    def topk(self, block, name: str, mask: np.ndarray, k: int, descending: bool):
        """Compressed-domain top-``k`` ``(values, positions)``, or ``None``."""
        kernel, column = self._lookup(block, name)
        if kernel is None:
            return None
        result = kernel.topk(column, mask, k, descending)
        if result is not None:
            current_tracer().annotate(kernel=kernel.encoding_name)
        return result


#: The registry the query layers use unless handed a custom one.
DEFAULT_KERNELS = KernelRegistry(
    (RleKernel(), ForKernel(), DeltaKernel(), FrequencyKernel())
)
