"""Morsel-driven parallel execution over compressed relations.

The serial executor walks the post-pruning block list one block at a time,
so scan latency is bounded by a single core even though every per-block
kernel (bit-unpacking, predicate masks, ``np.isin``) is NumPy code that
releases the GIL.  :class:`ParallelEngine` lifts that limit:

* the :class:`~repro.query.scan.ScanPlanner` classifies blocks as usual —
  pruned and fully-covered blocks never reach a worker;
* the surviving *scan* blocks are split into **morsels** (small runs of
  consecutive blocks, the work-stealing granule of morsel-driven execution);
* the morsels are dealt into per-worker deques as contiguous slices (good
  for read-ahead locality) and a ``ThreadPoolExecutor`` runs one *drain
  loop* per worker: each worker pops morsels from the **front** of its own
  deque, and when it drains it **steals from the back** of a sibling's —
  so a skewed workload (one dense block among pruned ones, RLE blocks of
  wildly different run counts, cache-miss stragglers on a
  :class:`~repro.storage.disk.DiskRelation`) no longer serialises on the
  slowest worker's tail::

      morsels   [m0 m1 m2 m3 | m4 m5 m6 m7]      contiguous deal, 2 workers
                     │                │
      worker 0   m0 m1 m2 m3     worker 1   m4 m5 m6 m7
                 ▲ popleft()                ▲ popleft()
                 (own work: front)          ...finishes early, then
                                            steals m3 = queues[0].pop()
                                            (victim's back: the morsel the
                                            owner would reach *last*)

  Each worker evaluates its blocks' predicate masks via
  :func:`~repro.query.scan.evaluate_block_predicate` (dictionary-domain
  routing included) and records a private :class:`ScanMetrics`; steals are
  charged to ``steal_attempts``/``morsels_stolen`` and show up as
  ``steal`` spans in the tracing tree.  Both deque ends are single
  CPython bytecode operations, so no locks are needed and a morsel is
  taken exactly once;
* per-morsel results are merged back in block order, so row ids come out
  sorted and identical to serial execution — stealing changes *where* a
  morsel runs, never what it returns — and the per-worker metrics are
  folded into one object with :meth:`ScanMetrics.merge`;
* over an out-of-core relation, each worker hints the *next* surviving
  block's required (predicate) columns to the relation's read-ahead pool
  before running the current block's kernel, so cold fetches overlap with
  compute — on column-granular tables (format v3) only the predicate
  columns' sub-segments move.

Threads (not processes) are the right vehicle here because the kernels are
NumPy-bound; morsels only coordinate which Python-level loop iteration runs
where.  ``workers=1`` executes inline without a pool, which keeps the
engine usable as the single code path for correctness tests.

Beyond predicate scans, :meth:`ParallelEngine.map_items` exposes the same
persistent pool as an ordered map, which the query compiler uses to fan
per-block aggregation tasks across the workers.  The module also provides
:func:`parallel_map`, the ad-hoc ordered thread-pool map that
:class:`~repro.core.plan.TableCompressor` uses to compress blocks on all
cores.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

import numpy as np

from ..errors import ValidationError
from ..storage.relation import Relation
from .predicates import Predicate
from .scan import BlockDecision, ScanMetrics, ScanPlanner, evaluate_block_predicate
from .tracing import current_tracer, run_adopted

__all__ = ["Morsel", "ParallelEngine", "parallel_map", "resolve_workers"]

T = TypeVar("T")
R = TypeVar("R")

#: Blocks per morsel when the caller does not choose one.  Morsels are
#: fixed-size runs of consecutive scan blocks; one block per morsel
#: maximises scheduling freedom, and callers with very many tiny blocks can
#: raise ``morsel_blocks`` to amortise per-morsel dispatch overhead.
DEFAULT_MORSEL_BLOCKS = 1


def resolve_workers(workers: int | None) -> int:
    """Normalise a worker-count request (``None``/``0`` = all cores)."""
    if workers is None or workers == 0:
        return max(1, os.cpu_count() or 1)
    if workers < 0:
        raise ValidationError("worker count must be positive (or 0 for auto)")
    return int(workers)


def parallel_map(fn: Callable[[T], R], items: Sequence[T], workers: int | None = None) -> list[R]:
    """``[fn(item) for item in items]`` fanned across a thread pool.

    Output order matches input order regardless of completion order.  With
    one worker (or at most one item) the map runs inline, avoiding pool
    start-up cost and keeping tracebacks trivial.
    """
    n_workers = min(resolve_workers(workers), max(1, len(items)))
    if n_workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    fn = _adopting(fn)
    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(fn, items))


def _adopting(fn: Callable[[T], R]) -> Callable[[T], R]:
    """Wrap a worker body so pool threads join the caller's active trace.

    The ambient tracer and the caller's innermost open span are captured
    *on the calling thread*; each worker invocation then runs inside
    :meth:`~repro.query.tracing.Tracer.adopt`, so spans the worker opens
    nest under the span that launched the fan-out.  When tracing is off
    the body is returned untouched — the disabled path adds nothing.
    """
    tracer = current_tracer()
    if not tracer.enabled:
        return fn
    parent = tracer.current()
    return lambda item: run_adopted(tracer, parent, fn, item)


@dataclass(frozen=True)
class Morsel:
    """A run of consecutive *scan* blocks handed to one worker at a time."""

    block_indices: tuple[int, ...]
    row_offsets: tuple[int, ...]

    @property
    def n_blocks(self) -> int:
        return len(self.block_indices)


class ParallelEngine:
    """Parallel scan/count over a relation, morsel by morsel.

    Parameters
    ----------
    relation:
        The compressed relation to execute over.
    workers:
        Worker threads; ``None``/``0`` uses every core, ``1`` runs inline.
    planner:
        An existing (possibly memoized) :class:`ScanPlanner` to share; a
        fresh one is created otherwise.
    morsel_blocks:
        Blocks per morsel (default 1).
    use_dictionary:
        Route ``Eq``/``In``/``Between`` over dictionary-encoded columns
        through code space (default) or force decode-then-compare.
    use_kernels:
        Offer single-column subtrees to the compressed-domain kernel
        registry (RLE run space, FOR/delta word space — default) or force
        the decode path.
    kernels:
        An explicit :class:`~repro.query.kernels.KernelRegistry` to consult
        (``None`` uses the default registry).
    pool:
        An externally-owned ``ThreadPoolExecutor`` to fan morsels over —
        a shared :class:`~repro.query.engine.Engine` passes its one pool
        here so N concurrent queries share workers.  :meth:`close` never
        shuts an external pool down.
    stealing:
        Let drained workers steal morsels from the back of a sibling's
        deque (default).  ``False`` keeps the same contiguous per-worker
        deal but never rebalances — the fixed fan-out baseline that
        skew benchmarks compare against.
    """

    def __init__(
        self,
        relation: Relation,
        workers: int | None = None,
        planner: ScanPlanner | None = None,
        morsel_blocks: int = DEFAULT_MORSEL_BLOCKS,
        use_dictionary: bool = True,
        use_kernels: bool = True,
        kernels=None,
        pool: ThreadPoolExecutor | None = None,
        stealing: bool = True,
    ):
        if morsel_blocks < 1:
            raise ValidationError("morsel size must be at least one block")
        self._relation = relation
        self._workers = resolve_workers(workers)
        self._planner = planner if planner is not None else ScanPlanner(relation)
        self._morsel_blocks = morsel_blocks
        self._use_dictionary = use_dictionary
        self._use_kernels = use_kernels
        self._kernels = kernels
        self._stealing = stealing
        #: Externally-owned pool (shared engine): used but never shut down.
        self._shared_pool = pool
        #: Lazily-created persistent pool: repeated queries must not pay
        #: thread start-up on every call.  Idle threads cost nothing and are
        #: joined cleanly at interpreter shutdown (or via :meth:`close`).
        self._pool: ThreadPoolExecutor | None = None

    @property
    def relation(self) -> Relation:
        return self._relation

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def planner(self) -> ScanPlanner:
        return self._planner

    # -- morsel construction ---------------------------------------------------

    def morsels(self, scan_items: Sequence[tuple[int, int]]) -> list[Morsel]:
        """Group ``(block_index, row_offset)`` scan items into morsels."""
        size = self._morsel_blocks
        return [
            Morsel(
                block_indices=tuple(i for i, _ in scan_items[start : start + size]),
                row_offsets=tuple(o for _, o in scan_items[start : start + size]),
            )
            for start in range(0, len(scan_items), size)
        ]

    # -- execution -------------------------------------------------------------

    def classify(
        self, predicate: Predicate | None
    ) -> tuple[list[tuple[int, int]], list[tuple[int, int]], ScanMetrics]:
        """Plan a scan: (scan items, full items, pre-filled metrics).

        Items are ``(block_index, row_offset)`` pairs in block order; the
        metrics carry the block totals and per-decision counts.  This is the
        single classification step shared by the engine's own ``scan`` /
        ``count`` and by the query compiler's aggregate execution.
        ``predicate=None`` classifies every non-empty block as fully
        covered.
        """
        plan = self._planner.plan(predicate)
        metrics = ScanMetrics(n_blocks=plan.n_blocks, rows_total=self._relation.n_rows)
        scan_items: list[tuple[int, int]] = []
        full_items: list[tuple[int, int]] = []
        offset = 0
        for index, decision in enumerate(plan.decisions):
            block = self._relation.block(index)
            if decision == BlockDecision.PRUNE:
                metrics.blocks_pruned += 1
            elif decision == BlockDecision.FULL:
                metrics.blocks_full += 1
                full_items.append((index, offset))
            else:
                metrics.blocks_scanned += 1
                scan_items.append((index, offset))
            offset += block.n_rows
        return scan_items, full_items, metrics

    def _next_block_map(self, scan_items: Sequence[tuple[int, int]]) -> dict[int, int]:
        """Each scan block mapped to the scan block that follows it in plan order.

        This is what read-ahead keys on: while block ``i``'s predicate
        kernel runs, the next *surviving* block's required columns are
        already being fetched.
        """
        indices = [index for index, _ in scan_items]
        return dict(zip(indices, indices[1:]))

    def _evaluate_morsel(
        self,
        morsel: Morsel,
        predicate: Predicate,
        count_only: bool = False,
        required_columns: tuple[str, ...] | None = None,
        next_block: "dict[int, int] | None" = None,
    ) -> tuple[list[tuple[int, np.ndarray]], ScanMetrics]:
        """Worker body: per-block qualifying row ids plus private metrics.

        ``count_only`` skips materialising row-id arrays (mirroring the
        serial ``count`` path's ``np.count_nonzero``) — only the counters in
        the returned metrics matter then.  When the relation supports
        read-ahead, the next surviving block's ``required_columns`` are
        prefetched before this block's kernel runs.
        """
        partial = ScanMetrics()
        matches: list[tuple[int, np.ndarray]] = []
        prefetch = getattr(self._relation, "prefetch_block_columns", None)
        for index, offset in zip(morsel.block_indices, morsel.row_offsets):
            if prefetch is not None and next_block is not None:
                following = next_block.get(index)
                if following is not None:
                    prefetch(following, required_columns)
            block = self._relation.block(index)
            mask = evaluate_block_predicate(
                block,
                predicate,
                metrics=partial,
                use_dictionary=self._use_dictionary,
                use_kernels=self._use_kernels,
                kernels=self._kernels,
            )
            if count_only:
                partial.rows_matched += int(np.count_nonzero(mask))
                continue
            matched = np.flatnonzero(mask)
            partial.rows_matched += int(matched.size)
            if matched.size:
                matches.append((index, matched + offset))
        return matches, partial

    def map_items(self, items: Sequence[T], fn: Callable[[T], R]) -> list[R]:
        """``[fn(item) for item in items]`` over the engine's persistent pool.

        Output order matches input order.  With one worker (or at most one
        item) the map runs inline; otherwise the same lazily-created pool
        that serves predicate scans is reused, so interleaved scans and
        aggregations share their threads.  The query compiler fans
        per-block aggregation tasks through this.
        """
        if not items:
            return []
        if self._workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        fn = _adopting(fn)
        pool = self._shared_pool
        if pool is None:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(max_workers=self._workers)
            pool = self._pool
        return list(pool.map(fn, items))

    def _run_morsels(
        self,
        morsels: Sequence[Morsel],
        predicate: Predicate,
        count_only: bool = False,
        required_columns: tuple[str, ...] | None = None,
        next_block: "dict[int, int] | None" = None,
    ) -> tuple[list[tuple[list[tuple[int, np.ndarray]], ScanMetrics]], ScanMetrics]:
        """Evaluate every morsel under the work-stealing scheduler.

        Returns the per-morsel ``(matches, metrics)`` results *in morsel
        order* — stealing moves work between threads, never reorders the
        output — plus one scheduler-level :class:`ScanMetrics` carrying the
        ``steal_attempts``/``morsels_stolen`` counters summed over workers.

        The morsel list is dealt into ``n_workers`` contiguous deques (so
        each worker's own work preserves the read-ahead-friendly block
        order) and one drain loop runs per worker: own work comes off the
        front (``popleft``); a drained worker probes siblings round-robin
        and steals from the back (``pop``) — the morsel its owner would
        have reached last.  Both deque ends are atomic under the GIL, so a
        morsel is executed exactly once without any locking.  Results land
        in a pre-sized list at their morsel's position; the writes are to
        disjoint indices, so the shared list needs no lock either.
        """
        scheduler = ScanMetrics()
        indexed = list(enumerate(morsels))
        results: list[tuple[list[tuple[int, np.ndarray]], ScanMetrics]] = [
            ([], ScanMetrics())
        ] * len(indexed)

        def evaluate(position: int, morsel: Morsel) -> None:
            results[position] = self._evaluate_morsel(
                morsel, predicate, count_only, required_columns, next_block
            )

        n_workers = min(self._workers, len(indexed))
        if n_workers <= 1:
            for position, morsel in indexed:
                evaluate(position, morsel)
            return results, scheduler

        base, extra = divmod(len(indexed), n_workers)
        queues: list[deque[tuple[int, Morsel]]] = []
        start = 0
        for worker_id in range(n_workers):
            stop = start + base + (1 if worker_id < extra else 0)
            queues.append(deque(indexed[start:stop]))
            start = stop

        def drain(worker_id: int) -> ScanMetrics:
            stats = ScanMetrics()
            tracer = current_tracer()
            own = queues[worker_id]
            while True:
                try:
                    position, morsel = own.popleft()
                except IndexError:
                    if not self._stealing:
                        return stats
                    stolen = None
                    for step in range(1, n_workers):
                        victim = (worker_id + step) % n_workers
                        stats.steal_attempts += 1
                        try:
                            stolen = queues[victim].pop()
                        except IndexError:
                            continue
                        stats.morsels_stolen += 1
                        position, morsel = stolen
                        with tracer.span(
                            "steal", worker=worker_id, victim=victim
                        ):
                            evaluate(position, morsel)
                        break
                    if stolen is None:
                        return stats
                    continue
                evaluate(position, morsel)

        for stats in self.map_items(list(range(n_workers)), drain):
            scheduler.merge(stats)
        return results, scheduler

    def close(self) -> None:
        """Shut the owned worker pool down (idempotent; the engine stays
        usable — the next parallel query simply starts a fresh pool).
        An externally-owned shared pool is left running."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def scan(self, predicate: Predicate) -> tuple[np.ndarray, ScanMetrics]:
        """Global row ids satisfying ``predicate`` plus merged scan metrics.

        Row ids are returned in ascending order, bit-identical to the serial
        executor's output.
        """
        tracer = current_tracer()
        with tracer.span("scan") as span:
            scan_items, full_items, metrics = self.classify(predicate)
            results, scheduler = self._run_morsels(
                self.morsels(scan_items),
                predicate,
                required_columns=predicate.columns(),
                next_block=self._next_block_map(scan_items),
            )
            metrics.merge(scheduler)

            per_block: dict[int, np.ndarray] = {}
            for matches, partial in results:
                metrics.merge(partial)
                for index, row_ids in matches:
                    per_block[index] = row_ids
            for index, offset in full_items:
                n = self._relation.block(index).n_rows
                metrics.rows_matched += n
                per_block[index] = np.arange(offset, offset + n, dtype=np.int64)

            if tracer.enabled:
                span.annotate(
                    rows=metrics.rows_matched,
                    blocks=len(scan_items),
                    stolen=metrics.morsels_stolen,
                )
            if not per_block:
                return np.zeros(0, dtype=np.int64), metrics
            ordered = [per_block[index] for index in sorted(per_block)]
            return np.concatenate(ordered), metrics

    def count(self, predicate: Predicate) -> tuple[int, ScanMetrics]:
        """Number of qualifying rows plus merged metrics (no ids built)."""
        tracer = current_tracer()
        with tracer.span("scan") as span:
            scan_items, full_items, metrics = self.classify(predicate)
            results, scheduler = self._run_morsels(
                self.morsels(scan_items),
                predicate,
                count_only=True,
                required_columns=predicate.columns(),
                next_block=self._next_block_map(scan_items),
            )
            metrics.merge(scheduler)
            total = 0
            for matches, partial in results:
                metrics.merge(partial)
                total += partial.rows_matched
            for index, _ in full_items:
                total += self._relation.block(index).n_rows
            metrics.rows_matched = total
            if tracer.enabled:
                span.annotate(rows=total, blocks=len(scan_items))
            return total, metrics
