"""Query latency measurement harness.

Times the materialisation workload of :mod:`repro.query.scan` over a sweep of
selectivities, with several independent selection vectors per selectivity
(10 in the paper), and reports per-selectivity statistics plus the
slowdown/speedup *ratio* over a baseline relation — the quantity plotted in
Figs. 5 and 8.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import ValidationError
from ..storage.relation import Relation
from .scan import materialize_columns
from .selection import PAPER_SELECTIVITIES, generate_selection_vectors

__all__ = [
    "LatencyMeasurement",
    "LatencySweep",
    "measure_query_latency",
    "sweep_query_latency",
    "latency_ratio",
]


@dataclass(frozen=True)
class LatencyMeasurement:
    """Timings (seconds) of one query configuration at one selectivity."""

    selectivity: float
    columns: tuple[str, ...]
    timings: tuple[float, ...]

    @property
    def mean(self) -> float:
        return float(np.mean(self.timings))

    @property
    def median(self) -> float:
        return float(np.median(self.timings))

    @property
    def minimum(self) -> float:
        return float(np.min(self.timings))

    @property
    def std(self) -> float:
        return float(np.std(self.timings))

    def mean_milliseconds(self) -> float:
        return self.mean * 1e3


@dataclass
class LatencySweep:
    """Latency measurements across a selectivity sweep."""

    columns: tuple[str, ...]
    measurements: dict[float, LatencyMeasurement] = field(default_factory=dict)

    @property
    def selectivities(self) -> tuple[float, ...]:
        return tuple(sorted(self.measurements))

    def measurement(self, selectivity: float) -> LatencyMeasurement:
        if selectivity not in self.measurements:
            raise ValidationError(
                f"no measurement at selectivity {selectivity}; "
                f"available: {self.selectivities}"
            )
        return self.measurements[selectivity]

    def mean_series(self) -> list[tuple[float, float]]:
        """(selectivity, mean seconds) pairs sorted by selectivity."""
        return [(s, self.measurements[s].mean) for s in self.selectivities]


def measure_query_latency(
    relation: Relation,
    columns: Sequence[str],
    selectivity: float,
    n_vectors: int = 10,
    repeats: int = 1,
    seed: int | None = 42,
) -> LatencyMeasurement:
    """Time the materialisation of ``columns`` at one selectivity.

    ``n_vectors`` independent selection vectors are generated (the paper uses
    10); each is materialised ``repeats`` times and every run contributes one
    timing sample.
    """
    if repeats < 1:
        raise ValidationError("repeats must be at least 1")
    vectors = generate_selection_vectors(relation.n_rows, selectivity, n_vectors, seed)
    # One untimed warm-up run so allocator and cache effects of the very first
    # materialisation do not distort the first sample.
    materialize_columns(relation, columns, vectors[0])
    timings: list[float] = []
    for vector in vectors:
        for _ in range(repeats):
            start = time.perf_counter()
            materialize_columns(relation, columns, vector)
            timings.append(time.perf_counter() - start)
    return LatencyMeasurement(
        selectivity=selectivity, columns=tuple(columns), timings=tuple(timings)
    )


def sweep_query_latency(
    relation: Relation,
    columns: Sequence[str],
    selectivities: Sequence[float] = PAPER_SELECTIVITIES,
    n_vectors: int = 10,
    repeats: int = 1,
    seed: int | None = 42,
) -> LatencySweep:
    """Measure latency for every selectivity in ``selectivities``."""
    sweep = LatencySweep(columns=tuple(columns))
    for selectivity in selectivities:
        sweep.measurements[selectivity] = measure_query_latency(
            relation, columns, selectivity, n_vectors, repeats, seed
        )
    return sweep


def latency_ratio(corra: LatencySweep, baseline: LatencySweep) -> dict[float, float]:
    """Per-selectivity ratio of Corra latency over the baseline latency.

    Values above 1.0 are slowdowns, below 1.0 speedups — the y-axis of the
    paper's Fig. 5 and Fig. 8.
    """
    shared = set(corra.selectivities) & set(baseline.selectivities)
    if not shared:
        raise ValidationError("sweeps share no selectivities")
    ratios = {}
    for selectivity in sorted(shared):
        # Medians: a single noisy sample (GC pause, page fault) should not
        # distort the plotted ratio the way it would distort a mean.
        base = baseline.measurement(selectivity).median
        ours = corra.measurement(selectivity).median
        if base <= 0:
            raise ValidationError("baseline latency must be positive")
        ratios[selectivity] = ours / base
    return ratios
