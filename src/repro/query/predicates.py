"""A structured predicate IR that compiles to vectorized kernels and prunes.

The executor used to take an opaque ``(column, callable)`` pair, which could
only ever be evaluated by decoding every block in full.  The small IR here
keeps the vectorized NumPy evaluation path but adds structure the scan
planner can exploit: every node can be *tested against block statistics*
(:class:`~repro.storage.statistics.BlockStatistics`) to decide, before any
decoding, whether a block can contain qualifying rows at all — and, for
exact zone maps, whether every row of a block qualifies.

Nodes::

    Eq(column, value)            column == value
    Between(column, low, high)   low <= column <= high  (None = unbounded)
    In(column, values)           column IN values
    And(children...)             conjunction
    Or(children...)              disjunction
    Not(child)                   negation

``&``, ``|`` and ``~`` build conjunctions/disjunctions/negations; the legacy
factories (:meth:`Predicate.equals`, :meth:`Predicate.between`,
:meth:`Predicate.is_in`) return IR nodes, so existing call sites keep
working.  Arbitrary Python conditions remain available through
:class:`ColumnPredicate`, which simply cannot be pruned.
"""

from __future__ import annotations

import abc
from typing import Callable, Mapping, Sequence

import numpy as np

from ..errors import ValidationError
from ..storage.statistics import BlockStatistics

__all__ = [
    "Predicate",
    "Eq",
    "Between",
    "In",
    "And",
    "Or",
    "Not",
    "ColumnPredicate",
]

#: Decoded column values handed to ``evaluate``: int64 arrays or string lists.
ColumnValues = Mapping[str, "np.ndarray | list[str]"]


def _as_array(values) -> np.ndarray:
    """Decoded values as a NumPy array (string lists become unicode arrays)."""
    if isinstance(values, np.ndarray):
        return values
    return np.asarray(values)


def _code_space_mask(column, candidates: Sequence) -> np.ndarray | None:
    """``column IN candidates`` evaluated over packed dictionary codes.

    Translates the candidates to dictionary codes (string compares happen at
    most once per candidate, against the sorted dictionary), then runs an
    integer kernel over the raw codes.  ``None`` when ``column`` does not
    expose the code-space API (``codes``/``lookup_codes``).
    """
    codes_of = getattr(column, "codes", None)
    lookup = getattr(column, "lookup_codes", None)
    if codes_of is None or lookup is None:
        return None
    targets = lookup(candidates)
    if targets.size == 0:
        # No candidate is in the dictionary: all-false without even
        # unpacking the codes.
        return np.zeros(column.n_values, dtype=bool)
    codes = codes_of()
    if targets.size == 1:
        return codes == targets[0]
    return np.isin(codes, targets)


class Predicate(abc.ABC):
    """Base class of the predicate IR.

    A predicate knows which columns it reads, evaluates to a boolean mask
    over decoded values, and can be tested against a block's zone map.
    """

    @abc.abstractmethod
    def columns(self) -> tuple[str, ...]:
        """Names of the columns the predicate reads (deduplicated, ordered)."""

    @abc.abstractmethod
    def evaluate(self, values: ColumnValues) -> np.ndarray:
        """Boolean mask over the decoded ``values`` of one block."""

    def might_match(self, statistics: BlockStatistics | None) -> bool:
        """Whether a block with these statistics can contain qualifying rows.

        ``False`` allows the planner to skip the block without decoding it;
        ``True`` (the conservative default, also used when statistics are
        missing) forces a scan.
        """
        return True

    def matches_all(self, statistics: BlockStatistics | None) -> bool:
        """Whether provably *every* row of such a block qualifies.

        Only exact zone maps can affirm this; it lets ``count`` and
        ``filter`` answer for fully-covered blocks from metadata alone.
        """
        return False

    def fingerprint(self) -> str | None:
        """A stable cache key for planner memoization, or ``None``.

        Two predicates with equal fingerprints must make identical zone-map
        decisions on every block.  The fingerprint is *canonical*: it does
        not depend on the process, on dict/set iteration order, or on the
        order in which commutative children were supplied (``In`` sorts its
        candidates at construction; ``And``/``Or`` sort their children's
        fingerprints), so it is safe to use as a cross-process cache key —
        the query service keys its result cache on it.  Opaque nodes
        (:class:`ColumnPredicate`) return ``None``: their behaviour is
        defined by an arbitrary callable, so their decisions must never be
        reused across predicate objects.
        """
        return f"{type(self).__name__}:{self.describe()}"

    def evaluate_encoded(self, column, statistics=None) -> "np.ndarray | None":
        """Boolean mask computed in the column's *encoded* domain, if possible.

        ``column`` is the block's :class:`~repro.encodings.base.EncodedColumn`
        for this predicate's column.  Nodes that can translate themselves to
        code space (``Eq``/``In``/``Between`` on dictionary-encoded columns)
        return the mask without materialising a single value; every other
        combination returns ``None`` and the caller falls back to decoded
        evaluation.  ``statistics`` (the block's
        :class:`~repro.storage.statistics.ColumnStatistics` for this column,
        when available) lets the translation drop candidates outside the
        block's value range before any dictionary probe — a compound
        predicate's leaves are not individually pruned by the planner, so a
        leaf can be provably empty even inside a block classified *scan*.
        """
        return None

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable rendering, e.g. ``"8100 <= ship <= 8200"``."""

    # -- combinators ----------------------------------------------------------

    def __and__(self, other: "Predicate") -> "And":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"

    # -- legacy factories (kept so pre-IR call sites continue to work) --------

    @staticmethod
    def equals(column: str, value) -> "Eq":
        return Eq(column, value)

    @staticmethod
    def between(column: str, low, high) -> "Between":
        return Between(column, low, high)

    @staticmethod
    def is_in(column: str, values: Sequence) -> "In":
        return In(column, values)

    @staticmethod
    def custom(
        column: str,
        condition: Callable[[np.ndarray], np.ndarray],
        description: str = "",
    ) -> "ColumnPredicate":
        return ColumnPredicate(column, condition, description)


class _Leaf(Predicate):
    """A predicate over a single column."""

    def __init__(self, column: str):
        if not column:
            raise ValidationError("predicate column name must be non-empty")
        self.column = column

    def columns(self) -> tuple[str, ...]:
        return (self.column,)

    def _stats(self, statistics: BlockStatistics | None):
        if statistics is None:
            return None
        return statistics.column(self.column)


class Eq(_Leaf):
    """``column == value``."""

    def __init__(self, column: str, value):
        super().__init__(column)
        self.value = value

    def evaluate(self, values: ColumnValues) -> np.ndarray:
        arr = _as_array(values[self.column])
        mask = np.asarray(arr == self.value, dtype=bool)
        if mask.ndim == 0:
            # NumPy collapses incomparable-type comparisons to a scalar.
            mask = np.full(arr.shape[0], bool(mask))
        return mask

    def might_match(self, statistics: BlockStatistics | None) -> bool:
        stats = self._stats(statistics)
        return True if stats is None else stats.may_contain(self.value)

    def matches_all(self, statistics: BlockStatistics | None) -> bool:
        stats = self._stats(statistics)
        return stats is not None and stats.is_constant(self.value)

    def evaluate_encoded(self, column, statistics=None) -> np.ndarray | None:
        candidates = (self.value,)
        if statistics is not None:
            candidates = statistics.prune_candidates(candidates)
        return _code_space_mask(column, candidates)

    def describe(self) -> str:
        return f"{self.column} == {self.value!r}"


class Between(_Leaf):
    """``low <= column <= high`` (inclusive; ``None`` leaves a side open)."""

    def __init__(self, column: str, low=None, high=None):
        super().__init__(column)
        if low is None and high is None:
            raise ValidationError("Between needs at least one bound")
        self.low = low
        self.high = high

    def evaluate(self, values: ColumnValues) -> np.ndarray:
        arr = _as_array(values[self.column])
        # A bound whose type mismatches the column matches nothing (same
        # degrade-to-empty semantics as Eq) instead of raising in NumPy.
        is_string_column = arr.dtype.kind in ("U", "S")
        mask = np.ones(arr.shape, dtype=bool)
        if self.low is not None:
            if isinstance(self.low, str) != is_string_column:
                return np.zeros(arr.shape, dtype=bool)
            mask &= arr >= self.low
        if self.high is not None:
            if isinstance(self.high, str) != is_string_column:
                return np.zeros(arr.shape, dtype=bool)
            mask &= arr <= self.high
        return mask

    def might_match(self, statistics: BlockStatistics | None) -> bool:
        stats = self._stats(statistics)
        return True if stats is None else stats.overlaps(self.low, self.high)

    def matches_all(self, statistics: BlockStatistics | None) -> bool:
        stats = self._stats(statistics)
        return stats is not None and stats.contained_in(self.low, self.high)

    def evaluate_encoded(self, column, statistics=None) -> np.ndarray | None:
        """Range evaluation over packed codes via a contiguous code interval.

        The dictionary is sorted, so ``[low, high]`` maps to one half-open
        code interval found with two binary searches
        (``lookup_code_range``); the mask is then a single integer-range
        kernel over the raw codes — no value, and for strings no heap
        entry beyond the ``O(log n)`` probes, is ever materialised.
        """
        code_range = getattr(column, "lookup_code_range", None)
        codes_of = getattr(column, "codes", None)
        if code_range is None or codes_of is None:
            return None
        interval = code_range(self.low, self.high)
        if interval is None:
            return None
        lo, hi = interval
        if lo >= hi:
            # The range covers no dictionary entry: all-false without
            # unpacking the codes.
            return np.zeros(column.n_values, dtype=bool)
        codes = codes_of()
        if hi - lo == 1:
            return codes == lo
        return (codes >= lo) & (codes < hi)

    def describe(self) -> str:
        if self.low is None:
            return f"{self.column} <= {self.high!r}"
        if self.high is None:
            return f"{self.column} >= {self.low!r}"
        return f"{self.low!r} <= {self.column} <= {self.high!r}"


class In(_Leaf):
    """``column IN values`` — vectorized via :func:`np.isin`."""

    def __init__(self, column: str, values: Sequence):
        super().__init__(column)
        distinct_set = set(values)
        if not distinct_set:
            raise ValidationError("In needs at least one candidate value")
        if len({isinstance(v, str) for v in distinct_set}) > 1:
            # NumPy would silently coerce mixed candidates to strings.
            raise ValidationError("In candidates must be all strings or all integers")
        distinct = sorted(distinct_set)
        self.values = tuple(distinct)
        self._candidates = np.asarray(distinct)

    def evaluate(self, values: ColumnValues) -> np.ndarray:
        return np.isin(_as_array(values[self.column]), self._candidates)

    def might_match(self, statistics: BlockStatistics | None) -> bool:
        stats = self._stats(statistics)
        if stats is None:
            return True
        return any(stats.may_contain(v) for v in self.values)

    def matches_all(self, statistics: BlockStatistics | None) -> bool:
        stats = self._stats(statistics)
        return stats is not None and any(stats.is_constant(v) for v in self.values)

    def evaluate_encoded(self, column, statistics=None) -> np.ndarray | None:
        candidates = self.values
        if statistics is not None:
            candidates = statistics.prune_candidates(candidates)
        return _code_space_mask(column, candidates)

    def describe(self) -> str:
        return f"{self.column} IN {list(self.values)!r}"


class _Compound(Predicate):
    """Conjunction/disjunction over child predicates."""

    def __init__(self, *children: Predicate):
        if len(children) < 1:
            raise ValidationError(f"{type(self).__name__} needs at least one child predicate")
        flattened: list[Predicate] = []
        for child in children:
            if isinstance(child, type(self)):
                flattened.extend(child.children)
            else:
                flattened.append(child)
        self.children = tuple(flattened)

    def columns(self) -> tuple[str, ...]:
        seen: list[str] = []
        for child in self.children:
            for name in child.columns():
                if name not in seen:
                    seen.append(name)
        return tuple(seen)

    def fingerprint(self) -> str | None:
        parts = [child.fingerprint() for child in self.children]
        if any(part is None for part in parts):
            return None
        # And/Or are commutative and their zone-map tests are all()/any()
        # over the children, so child order never changes a decision —
        # sorting makes And(a, b) and And(b, a) share one cache entry.
        return f"{type(self).__name__}:[{'; '.join(sorted(parts))}]"


class And(_Compound):
    """Every child predicate must hold."""

    def evaluate(self, values: ColumnValues) -> np.ndarray:
        mask = self.children[0].evaluate(values)
        for child in self.children[1:]:
            mask = mask & child.evaluate(values)
        return mask

    def might_match(self, statistics: BlockStatistics | None) -> bool:
        return all(child.might_match(statistics) for child in self.children)

    def matches_all(self, statistics: BlockStatistics | None) -> bool:
        return all(child.matches_all(statistics) for child in self.children)

    def describe(self) -> str:
        return " AND ".join(f"({c.describe()})" for c in self.children)


class Or(_Compound):
    """At least one child predicate must hold."""

    def evaluate(self, values: ColumnValues) -> np.ndarray:
        mask = self.children[0].evaluate(values)
        for child in self.children[1:]:
            mask = mask | child.evaluate(values)
        return mask

    def might_match(self, statistics: BlockStatistics | None) -> bool:
        return any(child.might_match(statistics) for child in self.children)

    def matches_all(self, statistics: BlockStatistics | None) -> bool:
        return any(child.matches_all(statistics) for child in self.children)

    def describe(self) -> str:
        return " OR ".join(f"({c.describe()})" for c in self.children)


class Not(Predicate):
    """Negation of a child predicate, with conservative zone-map semantics.

    A zone map can only reason about the negation through proofs about the
    child: the block is prunable *only* when the child provably matches
    every row (then no row survives the negation), and fully covered *only*
    when the child provably matches no row.  Both directions are sound with
    derived (conservative) bounds for pruning — an over-covering range that
    still excludes a value proves absence — while full coverage inherits
    ``matches_all``'s exact-bounds requirement through the child.
    """

    def __init__(self, child: Predicate):
        self.child = child

    def columns(self) -> tuple[str, ...]:
        return self.child.columns()

    def evaluate(self, values: ColumnValues) -> np.ndarray:
        return ~np.asarray(self.child.evaluate(values), dtype=bool)

    def might_match(self, statistics: BlockStatistics | None) -> bool:
        # Stays True unless the negated child is provably full: anything
        # weaker (e.g. pruning whenever the child *might* match) would drop
        # qualifying rows.
        return not self.child.matches_all(statistics)

    def matches_all(self, statistics: BlockStatistics | None) -> bool:
        # might_match() == False is a proof that no row satisfies the child,
        # so every row satisfies the negation.
        return statistics is not None and not self.child.might_match(statistics)

    def fingerprint(self) -> str | None:
        inner = self.child.fingerprint()
        return None if inner is None else f"Not:[{inner}]"

    def __invert__(self) -> Predicate:
        # ~~p is p: skip the double negation instead of stacking nodes.
        return self.child

    def describe(self) -> str:
        return f"NOT ({self.child.describe()})"


class ColumnPredicate(_Leaf):
    """Escape hatch: an arbitrary condition on one column's decoded values.

    Equivalent to the pre-IR ``Predicate(column, callable)``; it evaluates
    like any other node but is opaque to the planner, so blocks can never be
    pruned or short-circuited for it.
    """

    def __init__(
        self,
        column: str,
        condition: Callable[[np.ndarray], np.ndarray],
        description: str = "",
    ):
        super().__init__(column)
        self.condition = condition
        self.description = description or f"{column} satisfies {condition!r}"

    def evaluate(self, values: ColumnValues) -> np.ndarray:
        return np.asarray(self.condition(values[self.column]), dtype=bool)

    def fingerprint(self) -> str | None:
        # The callable is opaque: two ColumnPredicates with identical
        # descriptions may behave differently, so decisions are never cached.
        return None

    def describe(self) -> str:
        return self.description
