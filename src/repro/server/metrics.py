"""Server-level telemetry: latency percentiles and request counters.

The engine already measures the *inside* of a query
(:class:`~repro.query.scan.ScanMetrics`,
:class:`~repro.storage.cache.IOMetrics`, cache stats); this module adds the
*outside* view a service operator needs — how many requests arrived, how
many were rejected and why, and how long the accepted ones took end to end
(p50/p99 over a sliding window).  Everything here is thread-safe: request
threads record concurrently and ``GET /metrics`` snapshots under the same
locks.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..query.scan import ScanMetrics

__all__ = ["LatencyWindow", "ServerMetrics"]

#: Samples kept for percentile estimates; enough for stable p99 at the
#: concurrency levels one process serves, small enough to snapshot cheaply.
DEFAULT_WINDOW = 4096


class LatencyWindow:
    """A sliding window of recent request latencies (seconds).

    Percentiles are computed over the last ``capacity`` samples — a ring
    buffer, so long-running servers track *current* latency instead of a
    lifetime average that buries regressions.
    """

    def __init__(self, capacity: int = DEFAULT_WINDOW):
        self._samples: deque[float] = deque(maxlen=capacity)
        self._count = 0
        self._total = 0.0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(float(seconds))
            self._count += 1
            self._total += float(seconds)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def percentile(self, q: float) -> float:
        """The q-th percentile (0..100) of the window, 0.0 when empty."""
        with self._lock:
            if not self._samples:
                return 0.0
            return float(np.percentile(np.asarray(self._samples), q))

    def snapshot(self) -> dict:
        """Percentiles + counts as a JSON-ready dict (one lock acquisition)."""
        with self._lock:
            if self._samples:
                arr = np.asarray(self._samples)
                p50, p95, p99 = (float(v) for v in np.percentile(arr, (50, 95, 99)))
                window_mean = float(arr.mean())
            else:
                p50 = p95 = p99 = window_mean = 0.0
            return {
                "count": self._count,
                "window": len(self._samples),
                "mean_seconds": window_mean,
                "p50_seconds": p50,
                "p95_seconds": p95,
                "p99_seconds": p99,
            }


@dataclass
class ServerMetrics:
    """Counters for one service instance, merged under one lock.

    ``scan_totals`` accumulates every executed query's
    :class:`~repro.query.scan.ScanMetrics`, so ``/metrics`` exposes the
    fleet-wide prune/kernel/code-space picture the per-query metrics
    already tell for a single call.
    """

    queries_total: int = 0
    queries_ok: int = 0
    queries_cached: int = 0
    queries_failed: int = 0
    rejected_queue_full: int = 0
    rejected_cost: int = 0
    timeouts: int = 0
    latency: LatencyWindow = field(default_factory=LatencyWindow)
    scan_totals: ScanMetrics = field(default_factory=ScanMetrics)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_success(self, seconds: float, scan: ScanMetrics | None, cached: bool) -> None:
        with self._lock:
            self.queries_ok += 1
            if cached:
                self.queries_cached += 1
            if scan is not None:
                # merge() sums every counter, so per-query metrics fold into
                # additive lifetime totals.
                self.scan_totals.merge(scan)
        self.latency.record(seconds)

    def record_rejection(self, kind: str) -> None:
        """``kind`` is one of ``queue_full`` / ``cost`` / ``timeout`` / ``error``."""
        with self._lock:
            if kind == "queue_full":
                self.rejected_queue_full += 1
            elif kind == "cost":
                self.rejected_cost += 1
            elif kind == "timeout":
                self.timeouts += 1
            else:
                self.queries_failed += 1

    def count_request(self) -> None:
        with self._lock:
            self.queries_total += 1

    def snapshot(self) -> dict:
        with self._lock:
            scan = self.scan_totals
            return {
                "queries_total": self.queries_total,
                "queries_ok": self.queries_ok,
                "queries_cached": self.queries_cached,
                "queries_failed": self.queries_failed,
                "rejected_queue_full": self.rejected_queue_full,
                "rejected_cost": self.rejected_cost,
                "timeouts": self.timeouts,
                "scan": {
                    "n_blocks": scan.n_blocks,
                    "rows_total": scan.rows_total,
                    "blocks_pruned": scan.blocks_pruned,
                    "blocks_full": scan.blocks_full,
                    "blocks_scanned": scan.blocks_scanned,
                    "rows_matched": scan.rows_matched,
                    "rows_decoded": scan.rows_decoded,
                    "rows_gathered": scan.rows_gathered,
                    "rows_dict_evaluated": scan.rows_dict_evaluated,
                    "rows_rle_evaluated": scan.rows_rle_evaluated,
                    "runs_evaluated": scan.runs_evaluated,
                    "rows_for_evaluated": scan.rows_for_evaluated,
                    "rows_kernel_aggregated": scan.rows_kernel_aggregated,
                    "string_heap_decodes": scan.string_heap_decodes,
                },
            } | {"latency": self.latency.snapshot()}
