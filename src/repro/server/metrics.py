"""Server-level telemetry: latency percentiles and request counters.

The engine already measures the *inside* of a query
(:class:`~repro.query.scan.ScanMetrics`,
:class:`~repro.storage.cache.IOMetrics`, cache stats); this module adds the
*outside* view a service operator needs — how many requests arrived, how
many were rejected and why, and how long the accepted ones took end to end
(p50/p99 over a sliding window).  Everything here is thread-safe: request
threads record concurrently and ``GET /metrics`` snapshots under the same
locks.

:func:`prometheus_exposition` renders the same snapshot — plus the
engine's per-stage latency histograms from the tracing subsystem — in the
Prometheus text exposition format, so ``GET /metrics?format=prometheus``
is directly scrapeable.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, field

import numpy as np

from ..query.scan import ScanMetrics

__all__ = [
    "LatencyWindow",
    "PROMETHEUS_CONTENT_TYPE",
    "ServerMetrics",
    "prometheus_exposition",
]

#: Samples kept for percentile estimates; enough for stable p99 at the
#: concurrency levels one process serves, small enough to snapshot cheaply.
DEFAULT_WINDOW = 4096


class LatencyWindow:
    """A sliding window of recent request latencies (seconds).

    Percentiles are computed over the last ``capacity`` samples — a ring
    buffer, so long-running servers track *current* latency instead of a
    lifetime average that buries regressions.
    """

    def __init__(self, capacity: int = DEFAULT_WINDOW):
        self._samples: deque[float] = deque(maxlen=capacity)
        self._count = 0
        self._total = 0.0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(float(seconds))
            self._count += 1
            self._total += float(seconds)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def percentile(self, q: float) -> float:
        """The q-th percentile (0..100) of the window, 0.0 when empty."""
        with self._lock:
            if not self._samples:
                return 0.0
            return float(np.percentile(np.asarray(self._samples), q))

    def snapshot(self) -> dict:
        """Percentiles + counts as a JSON-ready dict (one lock acquisition)."""
        with self._lock:
            if self._samples:
                arr = np.asarray(self._samples)
                p50, p95, p99 = (float(v) for v in np.percentile(arr, (50, 95, 99)))
                window_mean = float(arr.mean())
            else:
                p50 = p95 = p99 = window_mean = 0.0
            return {
                "count": self._count,
                "window": len(self._samples),
                "mean_seconds": window_mean,
                "p50_seconds": p50,
                "p95_seconds": p95,
                "p99_seconds": p99,
            }


@dataclass
class ServerMetrics:
    """Counters for one service instance, merged under one lock.

    ``scan_totals`` accumulates every executed query's
    :class:`~repro.query.scan.ScanMetrics`, so ``/metrics`` exposes the
    fleet-wide prune/kernel/code-space picture the per-query metrics
    already tell for a single call.
    """

    queries_total: int = 0
    queries_ok: int = 0
    queries_cached: int = 0
    queries_failed: int = 0
    rejected_queue_full: int = 0
    rejected_cost: int = 0
    timeouts: int = 0
    latency: LatencyWindow = field(default_factory=LatencyWindow)
    scan_totals: ScanMetrics = field(default_factory=ScanMetrics)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_success(self, seconds: float, scan: ScanMetrics | None, cached: bool) -> None:
        with self._lock:
            self.queries_ok += 1
            if cached:
                self.queries_cached += 1
            if scan is not None:
                # merge() sums every counter, so per-query metrics fold into
                # additive lifetime totals.
                self.scan_totals.merge(scan)
            # Record the sample while still holding the counter lock so
            # ``queries_ok == latency.count`` is an exact invariant any
            # snapshot can rely on.  Lock order is strictly
            # ``ServerMetrics._lock -> LatencyWindow._lock``; the window
            # never calls back into this class, so there is no cycle.
            self.latency.record(seconds)

    def record_rejection(self, kind: str) -> None:
        """``kind`` is one of ``queue_full`` / ``cost`` / ``timeout`` / ``error``."""
        with self._lock:
            if kind == "queue_full":
                self.rejected_queue_full += 1
            elif kind == "cost":
                self.rejected_cost += 1
            elif kind == "timeout":
                self.timeouts += 1
            else:
                self.queries_failed += 1

    def count_request(self) -> None:
        with self._lock:
            self.queries_total += 1

    def snapshot(self) -> dict:
        # The latency snapshot is taken while holding the counter lock, so
        # request counters and percentile counts describe the same instant
        # (``record_success`` updates both under this lock, see above).
        with self._lock:
            scan = self.scan_totals
            return {
                "queries_total": self.queries_total,
                "queries_ok": self.queries_ok,
                "queries_cached": self.queries_cached,
                "queries_failed": self.queries_failed,
                "rejected_queue_full": self.rejected_queue_full,
                "rejected_cost": self.rejected_cost,
                "timeouts": self.timeouts,
                "scan": {
                    "n_blocks": scan.n_blocks,
                    "rows_total": scan.rows_total,
                    "blocks_pruned": scan.blocks_pruned,
                    "blocks_full": scan.blocks_full,
                    "blocks_scanned": scan.blocks_scanned,
                    "rows_matched": scan.rows_matched,
                    "rows_decoded": scan.rows_decoded,
                    "rows_gathered": scan.rows_gathered,
                    "rows_dict_evaluated": scan.rows_dict_evaluated,
                    "rows_rle_evaluated": scan.rows_rle_evaluated,
                    "runs_evaluated": scan.runs_evaluated,
                    "rows_for_evaluated": scan.rows_for_evaluated,
                    "rows_kernel_aggregated": scan.rows_kernel_aggregated,
                    "kernel_declines": scan.kernel_declines,
                    "morsels_stolen": scan.morsels_stolen,
                    "steal_attempts": scan.steal_attempts,
                    "string_heap_decodes": scan.string_heap_decodes,
                },
                "latency": self.latency.snapshot(),
            }


#: Content type the Prometheus text exposition format is served under.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _sample_value(value: "int | float") -> str:
    """One exposition sample value (ints stay exact, floats use repr)."""
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _flatten(prefix: str, node: dict, labels: str, out: list) -> None:
    """Depth-first walk of a snapshot dict into ``(name, labels, value)``."""
    for key, value in node.items():
        if isinstance(value, dict):
            _flatten(f"{prefix}_{key}", value, labels, out)
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            out.append((f"{prefix}_{key}", labels, value))


def prometheus_exposition(snapshot: dict, stages: "dict | None" = None) -> str:
    """Render a metrics snapshot in the Prometheus text exposition format.

    ``snapshot`` is :meth:`QueryService.snapshot_metrics
    <repro.server.service.QueryService.snapshot_metrics>` output (or the
    bare :meth:`ServerMetrics.snapshot`): every numeric leaf becomes one
    ``corra_*`` sample named by its path, and the per-table sub-dicts
    become ``corra_table_*`` samples with a ``table`` label.  ``stages`` —
    :meth:`~repro.query.tracing.StageHistograms.snapshot` output — is
    rendered as one ``corra_stage_duration_seconds`` histogram family with
    a ``stage`` label per query stage, on the fixed log-scale buckets of
    :data:`~repro.query.tracing.HISTOGRAM_BUCKETS` (identical across
    processes, so fleet-level aggregation never merges mismatched edges).
    """
    # HELP text per counter, keyed by the snapshot field name.  Every
    # ScanMetrics / IOMetrics / ServerMetrics counter is listed, which is
    # also what lets the metrics-completeness analyzer rule hold this
    # surface to the same bar as the JSON ones.
    counter_help = {
        # ServerMetrics
        "queries_total": "Requests received, accepted or not.",
        "queries_ok": "Requests answered successfully (cached included).",
        "queries_cached": "Requests answered from the result cache.",
        "queries_failed": "Requests failed for non-admission reasons.",
        "rejected_queue_full": "Requests rejected because the wait queue was full.",
        "rejected_cost": "Requests rejected by the pre-execution cost gate.",
        "timeouts": "Requests that missed their wall-clock deadline.",
        # ScanMetrics (under corra_scan_*)
        "n_blocks": "Blocks considered by the planner.",
        "rows_total": "Rows held by the considered blocks.",
        "blocks_pruned": "Blocks skipped entirely via zone maps.",
        "blocks_full": "Blocks fully covered by the predicate via zone maps.",
        "blocks_scanned": "Blocks that had to evaluate the predicate.",
        "rows_matched": "Rows selected by predicates.",
        "rows_decoded": "Rows decompressed for predicate evaluation.",
        "rows_gathered": "Row values materialised for output/aggregation.",
        "rows_dict_evaluated": "Rows answered in dictionary code space.",
        "rows_rle_evaluated": "Rows answered in RLE run space.",
        "runs_evaluated": "RLE runs evaluated in run space.",
        "rows_for_evaluated": "Rows answered in FOR/delta word space.",
        "rows_kernel_aggregated": "Rows aggregated inside compressed-domain kernels.",
        "kernel_declines": "Predicate subtrees a compressed-domain kernel declined.",
        "morsels_stolen": "Morsels executed by a worker that stole them.",
        "steal_attempts": "Probes of a sibling worker's deque by a drained worker.",
        "string_heap_decodes": "String values decoded from the shared heap.",
        # IOMetrics (under corra_table_io_*)
        "bytes_read": "Bytes read from table files.",
        "blocks_read": "Block reads issued.",
        "footer_bytes_read": "Bytes read while opening footers.",
        "columns_read": "Column sub-segments read.",
        "column_bytes_read": "Bytes read via column sub-segment reads.",
        "columns_skipped": "Column sub-segments skipped by projection.",
        "column_block_bytes": "Bytes a whole-block read would have cost.",
        "reads_coalesced": "Adjacent column reads merged into one request.",
        "prefetch_issued": "Blocks submitted to the prefetch pool.",
        "prefetch_hits": "Block loads answered by a completed prefetch.",
    }
    # Longest suffix first, so e.g. ``column_bytes_read`` wins over
    # ``bytes_read`` when matching a sample name.
    help_keys = sorted(counter_help, key=len, reverse=True)

    flat: list = []
    # ``tables`` is re-walked below with a label; ``stages`` is rendered as
    # the histogram family, not as flattened gauges.
    skip = ("tables", "stages")
    _flatten("corra", {k: v for k, v in snapshot.items() if k not in skip}, "", flat)
    for table, entry in sorted(snapshot.get("tables", {}).items()):
        if isinstance(entry, dict):
            _flatten("corra_table", entry, f'{{table="{table}"}}', flat)

    # Regroup by family: exposition requires all samples of one metric
    # name to be contiguous (table metrics interleave families otherwise).
    families: "OrderedDict[str, list]" = OrderedDict()
    for name, labels, value in flat:
        families.setdefault(name, []).append((labels, value))

    lines: list[str] = []
    for name, samples in families.items():
        suffix = next((k for k in help_keys if name.endswith(f"_{k}")), None)
        if suffix is not None:
            lines.append(f"# HELP {name} {counter_help[suffix]}")
            lines.append(f"# TYPE {name} counter")
        for labels, value in samples:
            lines.append(f"{name}{labels} {_sample_value(value)}")

    if stages:
        lines.append(
            "# HELP corra_stage_duration_seconds "
            "Wall-clock time spent per query stage (from traced spans)."
        )
        lines.append("# TYPE corra_stage_duration_seconds histogram")
        for stage, hist in stages.items():
            for le, cumulative in hist["buckets"]:
                lines.append(
                    f'corra_stage_duration_seconds_bucket{{stage="{stage}",le="{le}"}} '
                    f"{cumulative}"
                )
            lines.append(
                f'corra_stage_duration_seconds_sum{{stage="{stage}"}} '
                f"{_sample_value(hist['sum_seconds'])}"
            )
            lines.append(
                f'corra_stage_duration_seconds_count{{stage="{stage}"}} {hist["count"]}'
            )
    return "\n".join(lines) + "\n"
