"""The query service: admission control, cost gating, result caching.

:class:`QueryService` is the transport-independent core of ``corra
serve`` — the HTTP layer (:mod:`repro.server.http`) only decodes bytes and
maps :class:`ServerError` subclasses to status codes; everything with
semantics lives here:

* **admission** — at most ``max_concurrency`` queries execute at once;
  up to ``queue_depth`` more wait (bounded, so overload answers 429
  immediately instead of building an unbounded backlog), and a query that
  cannot start before its deadline fails fast with 504 instead of running
  anyway;
* **cost gating** — before any data is touched, the shared planner
  classifies the query's blocks against their zone maps; the rows/bytes
  the scan-classified blocks *could* touch are compared to the configured
  per-query limits (413 when over — metadata-only, so rejecting an
  expensive query costs microseconds);
* **result caching** — results are memoized by ``(table, plan
  fingerprint)`` and validated against the relation's ``cache_token``, so
  a reopened/overwritten table can never serve stale rows.  Plans without
  a stable fingerprint (opaque predicates) are executed but never cached.

Execution itself is one shared :class:`~repro.query.engine.Engine`: every
request thread lowers its request onto a
:class:`~repro.query.plan.LazyQuery` bound to the engine, so concurrent
queries share the planner memos, the worker pool, the block cache and the
prefetch pool.  ``reuse_engine=False`` exists only as the benchmark
baseline — it builds a cold engine per request, which is exactly the
pattern the shared engine replaces.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from ..errors import CorraError, ValidationError
from ..query.engine import Engine, EngineConfig
from ..query.scan import BlockDecision
from ..query.tracing import TRACE_DISABLED, NullTracer, QueryTrace, Tracer, activate
from ..storage.catalog import Catalog
from .metrics import ServerMetrics
from .protocol import QueryRequest, build_query, encode_result, parse_request

__all__ = [
    "CostLimitError",
    "QueryService",
    "QueryTimeoutError",
    "QueueFullError",
    "ServerError",
    "ServiceConfig",
    "UnknownTableError",
]


class ServerError(CorraError):
    """Base of the service-level failures; ``status`` is the HTTP mapping."""

    status = 500


class QueueFullError(ServerError):
    """Admission queue at capacity — the client should back off (429)."""

    status = 429


class CostLimitError(ServerError):
    """The plan would touch more rows/bytes than the per-query budget (413)."""

    status = 413


class QueryTimeoutError(ServerError):
    """The query missed its wall-clock deadline, queued or running (504)."""

    status = 504


class UnknownTableError(ServerError):
    """The request names a table the catalog does not have (404)."""

    status = 404


@dataclass(frozen=True)
class ServiceConfig:
    """Operational limits of one service instance (immutable)."""

    #: Queries executing at once; further admits wait in the bounded queue.
    max_concurrency: int = 4
    #: Admitted-but-waiting queries beyond that before 429s start.
    queue_depth: int = 16
    #: Wall-clock budget per query (queue wait + execution), seconds.
    timeout_seconds: float = 30.0
    #: Max rows the scan-classified blocks may hold (``None`` = unlimited).
    max_rows_scanned: int | None = None
    #: Max on-disk bytes those blocks may span (``None`` = unlimited).
    max_bytes_scanned: int | None = None
    #: Result-cache capacity in entries (``0`` disables the cache).
    result_cache_entries: int = 256
    #: ``False`` builds a cold engine per request — the benchmark baseline.
    reuse_engine: bool = True
    #: Trace every request (feeding the engine's per-stage latency
    #: histograms for ``/metrics``).  When ``False`` only requests that
    #: opt in with ``"trace": true`` are traced.
    trace_requests: bool = True


class _AdmissionGate:
    """Bounded concurrency + bounded wait queue with deadlines.

    ``acquire`` admits immediately when an execution slot is free, waits
    (counted against ``queue_depth``) when not, raises
    :class:`QueueFullError` when the wait queue is full and
    :class:`QueryTimeoutError` when the deadline passes while queued.
    """

    def __init__(self, max_concurrency: int, queue_depth: int):
        self._lock = threading.Lock()
        self._slot_freed = threading.Condition(self._lock)
        self._max_active = max(1, max_concurrency)
        self._max_waiting = max(0, queue_depth)
        self._active = 0
        self._waiting = 0

    def depths(self) -> tuple[int, int]:
        """Current ``(active, waiting)`` counts (for ``/metrics``)."""
        with self._lock:
            return self._active, self._waiting

    def acquire(self, deadline: float) -> None:
        with self._slot_freed:
            if self._active < self._max_active:
                self._active += 1
                return
            if self._waiting >= self._max_waiting:
                raise QueueFullError(
                    f"admission queue full ({self._max_active} running, "
                    f"{self._waiting} waiting)"
                )
            self._waiting += 1
            try:
                while self._active >= self._max_active:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._slot_freed.wait(remaining):
                        raise QueryTimeoutError("timed out waiting for an execution slot")
                self._active += 1
            finally:
                self._waiting -= 1

    def release(self) -> None:
        with self._slot_freed:
            self._active -= 1
            self._slot_freed.notify()


class _ResultCache:
    """LRU of encoded results keyed ``(table, plan fingerprint)``.

    Each entry remembers the relation ``cache_token`` it was computed
    against; a hit with a different token (the table was refreshed) is
    treated as a miss and the stale entry dropped.
    """

    def __init__(self, capacity: int):
        self._capacity = max(0, capacity)
        self._entries: "OrderedDict[tuple[str, str], tuple[int, dict]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple[str, str], cache_token: int) -> dict | None:
        if self._capacity == 0:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] == cache_token:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry[1]
            if entry is not None:
                del self._entries[key]
            self.misses += 1
            return None

    def put(self, key: tuple[str, str], cache_token: int, payload: dict) -> None:
        if self._capacity == 0:
            return
        with self._lock:
            self._entries[key] = (cache_token, payload)
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def snapshot(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "capacity": self._capacity,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / total) if total else 0.0,
            }


class QueryService:
    """Execute JSON query payloads against one catalog-backed engine.

    Thread-safe: the HTTP layer calls :meth:`execute` from many request
    threads concurrently.  Use as a context manager (or call
    :meth:`close`) so the engine's pools and tables are released.
    """

    def __init__(
        self,
        catalog: "Catalog | str | Path",
        engine_config: EngineConfig | None = None,
        config: ServiceConfig | None = None,
    ):
        self._engine_config = engine_config if engine_config is not None else EngineConfig()
        self._config = config if config is not None else ServiceConfig()
        self._engine = Engine(config=self._engine_config, catalog=catalog)
        self._gate = _AdmissionGate(self._config.max_concurrency, self._config.queue_depth)
        self._result_cache = _ResultCache(self._config.result_cache_entries)
        self.metrics = ServerMetrics()
        self._closed = False

    @property
    def engine(self) -> Engine:
        return self._engine

    @property
    def config(self) -> ServiceConfig:
        return self._config

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._engine.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request handling ------------------------------------------------------

    def _open_table(self, engine: Engine, name: str):
        try:
            return engine.table(name)
        except ValidationError as exc:
            raise UnknownTableError(str(exc)) from exc

    def _check_cost(self, compiler, compiled) -> None:
        """Reject plans whose scan-classified blocks exceed the budget.

        Pure metadata: the shared planner's zone-map decisions plus the
        footer's per-block row counts and segment sizes.  Fully-covered
        and pruned blocks are free — statistics answer them — so only the
        blocks that would actually decode count against the limits.
        """
        cfg = self._config
        if cfg.max_rows_scanned is None and cfg.max_bytes_scanned is None:
            return
        plan = compiler.planner.plan(compiled.predicate)
        rows = 0
        size = 0
        relation = compiler.relation
        for index, decision in enumerate(plan.decisions):
            if decision != BlockDecision.SCAN:
                continue
            block = relation.block(index)
            rows += block.n_rows
            if cfg.max_bytes_scanned is not None:
                size += (
                    block.segment_bytes
                    if hasattr(block, "segment_bytes")
                    else block.size_bytes
                )
        if cfg.max_rows_scanned is not None and rows > cfg.max_rows_scanned:
            raise CostLimitError(
                f"plan would scan {rows:,} rows, over the {cfg.max_rows_scanned:,} limit"
            )
        if cfg.max_bytes_scanned is not None and size > cfg.max_bytes_scanned:
            raise CostLimitError(
                f"plan would read {size:,} bytes, over the {cfg.max_bytes_scanned:,} limit"
            )

    def _run(self, engine: Engine, request: QueryRequest) -> tuple[dict, object]:
        """Execute one request end to end; returns (payload, scan metrics)."""
        relation = self._open_table(engine, request.table)
        lazy = build_query(engine.query(relation), request)
        result = lazy.execute()
        return encode_result(result), result.metrics

    def _handle(
        self, tracer: "Tracer | NullTracer", payload: object, deadline: float
    ) -> tuple[dict, object, bool]:
        """Parse, admit and run one request; ``(body, scan metrics, cached)``.

        Runs inside the caller's ``request`` span, so every stage span it
        opens (``parse`` / ``admission`` / ``serialize``, plus everything
        the compiler opens during execution) lands on the same trace.
        """
        with tracer.span("parse"):
            request = parse_request(payload)

        if not self._config.reuse_engine:
            # Benchmark baseline: a cold engine (fresh cache, planner
            # memos, pools) per request.  No admission, no result cache
            # — this measures exactly what shared state saves.
            if self._engine.catalog is None:  # pragma: no cover - guarded in __init__
                raise ValidationError("service has no catalog")
            with Engine(config=self._engine_config, catalog=self._engine.catalog.root) as cold:
                body, scan = self._run(cold, request)
            return body, scan, False

        engine = self._engine
        relation = self._open_table(engine, request.table)
        compiler = engine.compiler_for(relation)
        compiled = compiler.compile(build_query(engine.query(relation), request).logical_plan())
        self._check_cost(compiler, compiled)

        fingerprint = compiled.fingerprint()
        cache_key = None
        if fingerprint is not None:
            cache_key = (request.table, fingerprint)
            cached = self._result_cache.get(cache_key, relation.cache_token)
            if cached is not None:
                return cached, None, True

        with tracer.span("admission"):
            self._gate.acquire(deadline)
        try:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise QueryTimeoutError("deadline passed before execution started")
            result = compiler.execute(compiled, tracer=tracer)
        finally:
            self._gate.release()
        if time.monotonic() > deadline:
            raise QueryTimeoutError(
                f"query exceeded its {self._config.timeout_seconds:.1f}s budget"
            )
        with tracer.span("serialize"):
            body = encode_result(result)
            if cache_key is not None:
                self._result_cache.put(cache_key, relation.cache_token, body)
        return body, result.metrics, False

    def execute(self, payload: object) -> dict:
        """The full request lifecycle for one decoded JSON body.

        Raises :class:`ServerError` subclasses for service-level failures
        and :class:`~repro.errors.ValidationError` (→ 400) for malformed
        requests; anything it returns is a JSON-ready response dict.

        When the service traces requests (``ServiceConfig.trace_requests``,
        on by default) each request runs under its own
        :class:`~repro.query.tracing.Tracer` wired to the engine's stage
        histograms; a request carrying ``"trace": true`` additionally gets
        the span tree attached under ``"trace"`` in the response body
        (attached to a copy — the result cache never stores a trace).
        """
        self.metrics.count_request()
        started = time.monotonic()
        deadline = started + self._config.timeout_seconds
        # Probe the raw payload before strict parsing so the tracer already
        # exists for the ``parse`` span itself; parse_request still
        # validates the flag.
        want_trace = isinstance(payload, dict) and payload.get("trace") is True
        tracer: "Tracer | NullTracer" = (
            self._engine.tracer()
            if (self._config.trace_requests or want_trace)
            else TRACE_DISABLED
        )
        try:
            with activate(tracer):
                with tracer.span("request"):
                    body, scan, cached = self._handle(tracer, payload, deadline)
            if want_trace and tracer.enabled:
                # Copy before attaching: ``body`` may be (or just became)
                # a result-cache entry, which must stay trace-free.
                table = payload.get("table") if isinstance(payload, dict) else None
                body = dict(body)
                body["trace"] = QueryTrace.from_tracer(
                    tracer, query=str(table) if isinstance(table, str) else ""
                ).to_dict()
            self.metrics.record_success(time.monotonic() - started, scan, cached=cached)
            return body
        except QueueFullError:
            self.metrics.record_rejection("queue_full")
            raise
        except CostLimitError:
            self.metrics.record_rejection("cost")
            raise
        except QueryTimeoutError:
            self.metrics.record_rejection("timeout")
            raise
        except Exception:
            self.metrics.record_rejection("error")
            raise

    # -- introspection ---------------------------------------------------------

    def tables(self) -> tuple[str, ...]:
        catalog = self._engine.catalog
        return catalog.tables() if catalog is not None else ()

    def snapshot_metrics(self) -> dict:
        """Everything ``GET /metrics`` serves, as one JSON-ready dict."""
        active, waiting = self._gate.depths()
        engine = self._engine
        cache_stats = engine.cache_stats
        tables = {}
        for name, relation in engine.tables().items():
            entry: dict = {"n_rows": relation.n_rows, "n_blocks": relation.n_blocks}
            io = getattr(relation, "io", None)
            if io is not None:
                # IOMetrics carries a lock field; build the dict by hand.
                entry["io"] = {
                    "bytes_read": io.bytes_read,
                    "blocks_read": io.blocks_read,
                    "footer_bytes_read": io.footer_bytes_read,
                    "columns_read": io.columns_read,
                    "column_bytes_read": io.column_bytes_read,
                    "columns_skipped": io.columns_skipped,
                    "column_block_bytes": io.column_block_bytes,
                    "reads_coalesced": io.reads_coalesced,
                    "prefetch_issued": io.prefetch_issued,
                    "prefetch_hits": io.prefetch_hits,
                }
            occupancy = getattr(relation, "cache_occupancy", None)
            if occupancy is not None:
                entry["cache"] = {"entries": occupancy.entries, "bytes": occupancy.bytes}
            tables[name] = entry
        return self.metrics.snapshot() | {
            "queue": {
                "active": active,
                "waiting": waiting,
                "max_concurrency": self._config.max_concurrency,
                "queue_depth": self._config.queue_depth,
            },
            "result_cache": self._result_cache.snapshot(),
            "stages": engine.stage_latency.snapshot(),
            "block_cache": {
                "hits": cache_stats.hits,
                "misses": cache_stats.misses,
                "evictions": cache_stats.evictions,
                "current_bytes": cache_stats.current_bytes,
                "current_entries": cache_stats.current_entries,
            },
            "tables": tables,
        }
