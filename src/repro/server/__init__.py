"""``corra serve`` — a concurrent query service over the Catalog.

This package turns the library into a long-running service: an asyncio
HTTP front end (stdlib only — no third-party web framework) fronting a
:class:`~repro.storage.catalog.Catalog`, with every query executed through
one shared :class:`~repro.query.engine.Engine` so concurrent requests
share the warm state the library already maintains — the block cache, the
planner memos, the worker and prefetch pools, the kernel registry.

Request lifecycle::

        POST /query {"table": ..., "where": ..., "aggregates": ...}
          │
          ▼
        protocol.parse_request ──▶ 400 on malformed JSON/predicates
          │
          ▼
        ADMISSION  (service.AdmissionGate)
          │   bounded concurrency + bounded wait queue
          │   ├─ queue full ────────────────▶ 429 rejected
          │   └─ queue wait exceeds timeout ─▶ 504 timeout
          ▼
        COST GATE  (planner classification, metadata only)
          │   estimated rows/bytes touched vs ServiceConfig limits
          │   └─ over budget ───────────────▶ 413 rejected
          ▼
        RESULT CACHE  keyed (table, plan fingerprint)
          │   validated against Relation.cache_token
          │   ├─ hit ──▶ response (counted, no execution)
          │   └─ miss
          ▼
        ENGINE  (shared repro.query.Engine)
          │   LazyQuery over the memoized compiler; morsels fan out on
          │   the shared worker pool; wall-clock timeout ──▶ 504
          ▼
        METRICS  (metrics.ServerMetrics)
              per-query latency into the p50/p99 window, ScanMetrics
              merged into the running totals, result cached, response

``GET /metrics`` exposes the engine's existing :class:`~repro.query.scan.
ScanMetrics` / :class:`~repro.storage.cache.IOMetrics` counters plus the
server-level view: latency percentiles, queue depth, in-flight count,
admission rejections, result-cache hit rate and per-table cache occupancy.

Entry points: ``python -m repro.cli serve <catalog-dir>`` on the command
line, :class:`~repro.server.service.QueryService` +
:class:`~repro.server.http.CorraHttpServer` (or the thread-hosting
:class:`~repro.server.http.BackgroundServer`) from Python — see
``examples/serve_and_query.py``.
"""

from .http import BackgroundServer, CorraHttpServer
from .metrics import LatencyWindow, ServerMetrics
from .protocol import QueryRequest, encode_result, parse_predicate, parse_request
from .service import (
    CostLimitError,
    QueryService,
    QueryTimeoutError,
    QueueFullError,
    ServerError,
    ServiceConfig,
    UnknownTableError,
)

__all__ = [
    "BackgroundServer",
    "CorraHttpServer",
    "CostLimitError",
    "LatencyWindow",
    "QueryRequest",
    "QueryService",
    "QueryTimeoutError",
    "QueueFullError",
    "ServerError",
    "ServerMetrics",
    "ServiceConfig",
    "UnknownTableError",
    "encode_result",
    "parse_predicate",
    "parse_request",
]
