"""Wire protocol: JSON requests in, JSON-ready results out.

The request body is a small JSON object that lowers 1:1 onto a
:class:`~repro.query.plan.LazyQuery` chain::

    {
      "table": "trips",
      "where": {"op": "and", "children": [
          {"op": "between", "column": "ship", "lo": 8100, "hi": 8200},
          {"op": "not", "child": {"op": "eq", "column": "flag", "value": "R"}}
      ]},
      "group_by": ["tag"],
      "aggregates": {"n": {"fn": "count"}, "total": {"fn": "sum", "column": "fare"}},
      "limit": 100
    }

``select`` (a list of column names) and ``aggregates``/``group_by`` are
mutually exclusive, exactly as in the fluent API.  ``order_by`` (a column
name, or ``{"column": ..., "desc": true}``) orders the output rows; with
``k`` (a row count that requires ``order_by`` and replaces ``limit``) the
pair lowers onto the engine's fused top-k path.  ``having`` is a predicate
over the aggregation's *output* columns.  All of these are
fingerprint-canonical: two requests meaning the same query produce the
same plan fingerprint, so the service's result cache keeps working.  An
optional ``"trace": true`` flag asks the service to attach the executed
query's span tree (a :class:`~repro.query.tracing.QueryTrace` dict) to the
response body.  Parsing is strict:
unknown keys, unknown predicate ops and malformed shapes raise
:class:`~repro.errors.ValidationError`, which the HTTP layer maps to 400 —
the engine never sees a malformed request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import ValidationError
from ..query.plan import (
    AggregateFunction,
    Avg,
    Count,
    LazyQuery,
    Max,
    Min,
    PlanResult,
    Std,
    Sum,
    Var,
)
from ..query.predicates import And, Between, Eq, In, Not, Or, Predicate

__all__ = ["QueryRequest", "build_query", "encode_result", "parse_predicate", "parse_request"]

_REQUEST_KEYS = {
    "table",
    "where",
    "select",
    "group_by",
    "aggregates",
    "having",
    "order_by",
    "k",
    "limit",
    "trace",
}

#: JSON ``fn`` name -> aggregate constructor (count takes no column).
_AGGREGATES: dict[str, Callable[..., AggregateFunction]] = {
    "count": Count,
    "sum": Sum,
    "min": Min,
    "max": Max,
    "avg": Avg,
    "var": Var,
    "std": Std,
}


def _expect(condition: bool, message: str) -> None:
    if not condition:
        raise ValidationError(message)


def _column_of(node: dict, op: str) -> str:
    column = node.get("column")
    _expect(isinstance(column, str) and column != "", f"{op!r} predicate needs a 'column' string")
    assert isinstance(column, str)
    return column


def _scalar(node: dict, key: str, op: str) -> "int | str":
    _expect(key in node, f"{op!r} predicate needs {key!r}")
    value = node[key]
    _expect(
        isinstance(value, (int, str)) and not isinstance(value, bool),
        f"{op!r} predicate {key!r} must be an integer or string",
    )
    assert isinstance(value, (int, str))
    return value


def parse_predicate(node: object) -> Predicate:
    """A JSON predicate node as a :class:`~repro.query.predicates.Predicate`.

    Ops: ``eq`` (column, value), ``between`` (column, lo, hi), ``in``
    (column, values), ``and``/``or`` (children), ``not`` (child).
    """
    _expect(isinstance(node, dict), "predicate nodes must be JSON objects")
    assert isinstance(node, dict)
    op = node.get("op")
    _expect(isinstance(op, str), "predicate nodes need an 'op' string")
    if op == "eq":
        return Eq(_column_of(node, op), _scalar(node, "value", op))
    if op == "between":
        return Between(_column_of(node, op), _scalar(node, "lo", op), _scalar(node, "hi", op))
    if op == "in":
        values = node.get("values")
        _expect(
            isinstance(values, list) and len(values) > 0,
            "'in' predicate needs a non-empty 'values' list",
        )
        for value in values:
            _expect(
                isinstance(value, (int, str)) and not isinstance(value, bool),
                "'in' predicate values must be integers or strings",
            )
        return In(_column_of(node, op), values)
    if op in ("and", "or"):
        children = node.get("children")
        _expect(
            isinstance(children, list) and len(children) >= 2,
            f"{op!r} predicate needs a 'children' list with at least two nodes",
        )
        parsed = [parse_predicate(child) for child in children]
        return And(*parsed) if op == "and" else Or(*parsed)
    if op == "not":
        _expect("child" in node, "'not' predicate needs a 'child' node")
        return Not(parse_predicate(node["child"]))
    raise ValidationError(f"unknown predicate op {op!r}")


def _parse_aggregate(name: str, node: object) -> AggregateFunction:
    _expect(isinstance(node, dict), f"aggregate {name!r} must be a JSON object")
    assert isinstance(node, dict)
    fn = node.get("fn")
    _expect(
        fn in _AGGREGATES,
        f"aggregate {name!r}: unknown fn {fn!r} (expected one of {sorted(_AGGREGATES)})",
    )
    assert isinstance(fn, str)
    if fn == "count":
        _expect("column" not in node, f"aggregate {name!r}: count takes no column")
        return Count()
    column = node.get("column")
    _expect(
        isinstance(column, str) and column != "",
        f"aggregate {name!r}: {fn!r} needs a 'column' string",
    )
    return _AGGREGATES[fn](column)


@dataclass(frozen=True)
class QueryRequest:
    """A validated query request, ready to lower onto a ``LazyQuery``."""

    table: str
    where: Predicate | None = None
    select: tuple[str, ...] | None = None
    group_by: tuple[str, ...] = ()
    aggregates: tuple[tuple[str, AggregateFunction], ...] = ()
    #: HAVING predicate over the aggregation's output columns.
    having: Predicate | None = None
    #: Sort column; ``k`` (the JSON top-k row count) folds into ``limit``,
    #: so an ordered-and-limited request always takes the fused top-k path.
    order_by: str | None = None
    order_desc: bool = False
    limit: int | None = None
    #: Attach the per-request span tree to the response body.
    trace: bool = False


def parse_request(payload: object) -> QueryRequest:
    """Validate a decoded JSON body into a :class:`QueryRequest`."""
    _expect(isinstance(payload, dict), "request body must be a JSON object")
    assert isinstance(payload, dict)
    unknown = set(payload) - _REQUEST_KEYS
    _expect(not unknown, f"unknown request key(s): {sorted(unknown)}")
    table = payload.get("table")
    _expect(isinstance(table, str) and table != "", "request needs a 'table' name")

    where = None
    if payload.get("where") is not None:
        where = parse_predicate(payload["where"])

    select: tuple[str, ...] | None = None
    if payload.get("select") is not None:
        raw_select = payload["select"]
        _expect(
            isinstance(raw_select, list)
            and len(raw_select) > 0
            and all(isinstance(c, str) and c for c in raw_select),
            "'select' must be a non-empty list of column names",
        )
        select = tuple(raw_select)

    group_by: tuple[str, ...] = ()
    if payload.get("group_by") is not None:
        raw_group = payload["group_by"]
        _expect(
            isinstance(raw_group, list)
            and len(raw_group) > 0
            and all(isinstance(c, str) and c for c in raw_group),
            "'group_by' must be a non-empty list of column names",
        )
        group_by = tuple(raw_group)

    aggregates: tuple[tuple[str, AggregateFunction], ...] = ()
    if payload.get("aggregates") is not None:
        raw_aggs = payload["aggregates"]
        _expect(
            isinstance(raw_aggs, dict) and len(raw_aggs) > 0,
            "'aggregates' must be a non-empty object of name -> {fn, column}",
        )
        aggregates = tuple(
            (name, _parse_aggregate(name, node)) for name, node in raw_aggs.items()
        )

    _expect(
        not (select and (group_by or aggregates)),
        "'select' cannot be combined with 'group_by'/'aggregates'",
    )
    _expect(not (group_by and not aggregates), "'group_by' needs 'aggregates'")

    having = None
    if payload.get("having") is not None:
        _expect(bool(aggregates), "'having' needs 'aggregates'")
        having = parse_predicate(payload["having"])

    order_by: str | None = None
    order_desc = False
    if payload.get("order_by") is not None:
        raw_order = payload["order_by"]
        if isinstance(raw_order, str):
            _expect(raw_order != "", "'order_by' column name must be non-empty")
            order_by = raw_order
        else:
            _expect(
                isinstance(raw_order, dict) and not (set(raw_order) - {"column", "desc"}),
                "'order_by' must be a column name or {'column': ..., 'desc': bool}",
            )
            assert isinstance(raw_order, dict)
            column = raw_order.get("column")
            _expect(
                isinstance(column, str) and column != "",
                "'order_by' needs a 'column' string",
            )
            assert isinstance(column, str)
            order_by = column
            desc = raw_order.get("desc", False)
            _expect(isinstance(desc, bool), "'order_by' 'desc' must be a boolean")
            order_desc = bool(desc)
        _expect(
            not (group_by or aggregates),
            "'order_by' cannot be combined with 'group_by'/'aggregates'",
        )

    limit = payload.get("limit")
    if limit is not None:
        _expect(
            isinstance(limit, int) and not isinstance(limit, bool) and limit >= 0,
            "'limit' must be a non-negative integer",
        )

    k = payload.get("k")
    if k is not None:
        _expect(
            isinstance(k, int) and not isinstance(k, bool) and k >= 0,
            "'k' must be a non-negative integer",
        )
        _expect(order_by is not None, "'k' needs 'order_by'")
        _expect(limit is None, "'k' replaces 'limit'; send one or the other")
        limit = k

    trace = payload.get("trace", False)
    _expect(isinstance(trace, bool), "'trace' must be a boolean")
    assert isinstance(trace, bool)
    return QueryRequest(
        table=table,
        where=where,
        select=select,
        group_by=group_by,
        aggregates=aggregates,
        having=having,
        order_by=order_by,
        order_desc=order_desc,
        limit=limit,
        trace=trace,
    )


def build_query(lazy: LazyQuery, request: QueryRequest) -> LazyQuery:
    """Apply a validated request to a fresh ``LazyQuery`` chain."""
    if request.where is not None:
        lazy = lazy.where(request.where)
    if request.select is not None:
        lazy = lazy.select(*request.select)
    if request.group_by:
        lazy = lazy.group_by(*request.group_by)
    if request.aggregates:
        lazy = lazy.agg(**dict(request.aggregates))
    if request.having is not None:
        lazy = lazy.having(request.having)
    if request.order_by is not None:
        lazy = lazy.order_by(request.order_by, desc=request.order_desc)
    if request.limit is not None:
        lazy = lazy.limit(request.limit)
    return lazy


def _json_value(value: object) -> object:
    """One output cell as a plain JSON type (numpy scalars included)."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.str_):
        return str(value)
    if isinstance(value, bytes):
        return value.decode("utf-8")
    return value


def encode_result(result: PlanResult) -> dict:
    """A :class:`~repro.query.plan.PlanResult` as a JSON-ready dict."""
    columns = {}
    for name, values in result.columns.items():
        if isinstance(values, np.ndarray):
            # .tolist() converts numeric dtypes to plain ints/floats; string
            # and object arrays still need the per-cell normalisation.
            if values.dtype.kind in ("U", "S", "O"):
                columns[name] = [_json_value(v) for v in values.tolist()]
            else:
                columns[name] = values.tolist()
        else:
            columns[name] = [_json_value(v) for v in values]
    return {"columns": columns, "n_rows": result.n_rows}
