"""Asyncio HTTP/1.1 front end for :class:`~repro.server.service.QueryService`.

Stdlib only — a hand-rolled request parser over ``asyncio.start_server``
instead of a web framework, because the protocol surface is four routes::

    GET  /health   -> {"status": "ok"}
    GET  /tables   -> {"tables": [...]}
    GET  /metrics  -> the service's full metrics snapshot (JSON);
                      ?format=prometheus serves the text exposition format
    POST /query    -> execute a JSON query body ("trace": true attaches spans)

The event loop never blocks on a query: request handling decodes bytes and
dispatches :meth:`QueryService.execute` onto a thread pool sized to the
service's admission limits (the gate inside the service, not the pool, is
what bounds concurrency — the pool merely needs enough threads that every
admitted-or-waiting query can hold one).  :class:`ServerError` subclasses
carry their own HTTP status; malformed JSON and validation failures map to
400, everything unexpected to 500 with the error message in the body.

:class:`BackgroundServer` hosts the whole loop on a daemon thread for
tests, benchmarks and examples: entering the context manager yields the
bound ``(host, port)`` (pass ``port=0`` for an ephemeral port), leaving it
stops the loop and joins the thread.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor

from ..errors import CorraError
from .metrics import PROMETHEUS_CONTENT_TYPE, prometheus_exposition
from .service import QueryService, ServerError

__all__ = ["BackgroundServer", "CorraHttpServer"]

#: Largest accepted request body; queries are small JSON objects.
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}


def _raw_response(status: int, body: bytes, content_type: str) -> bytes:
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


def _response(status: int, payload: dict) -> bytes:
    return _raw_response(status, json.dumps(payload).encode("utf-8"), "application/json")


class CorraHttpServer:
    """One service instance behind an asyncio TCP listener."""

    def __init__(self, service: QueryService, host: str = "127.0.0.1", port: int = 8265):
        self._service = service
        self._host = host
        self._port = port
        # The service's own gate bounds concurrency; the pool just needs a
        # thread for every query that may be running or queue-waiting.
        cfg = service.config
        self._executor = ThreadPoolExecutor(
            max_workers=cfg.max_concurrency + cfg.queue_depth + 2,
            thread_name_prefix="corra-serve",
        )
        self._bound: tuple[str, int] | None = None

    @property
    def service(self) -> QueryService:
        return self._service

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` once :meth:`serve` has started."""
        if self._bound is None:
            raise RuntimeError("server is not running")
        return self._bound

    # -- request handling ------------------------------------------------------

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one HTTP/1.1 request: (method, path, body) or ``None`` on EOF."""
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise ValueError("malformed request line")
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        if content_length > MAX_BODY_BYTES:
            raise ValueError("request body too large")
        body = await reader.readexactly(content_length) if content_length else b""
        return method, path, body

    async def _dispatch(self, method: str, path: str, body: bytes) -> bytes:
        path, _, query_string = path.partition("?")
        if method == "GET" and path == "/health":
            return _response(200, {"status": "ok"})
        if method == "GET" and path == "/tables":
            return _response(200, {"tables": list(self._service.tables())})
        if method == "GET" and path == "/metrics":
            snapshot = self._service.snapshot_metrics()
            if query_string == "format=prometheus":
                text = prometheus_exposition(snapshot, stages=snapshot.get("stages"))
                return _raw_response(200, text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE)
            return _response(200, snapshot)
        if path == "/query":
            if method != "POST":
                return _response(405, {"error": "use POST for /query"})
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return _response(400, {"error": f"invalid JSON body: {exc}"})
            loop = asyncio.get_running_loop()
            try:
                result = await loop.run_in_executor(
                    self._executor, self._service.execute, payload
                )
            except ServerError as exc:
                return _response(exc.status, {"error": str(exc)})
            except CorraError as exc:
                return _response(400, {"error": str(exc)})
            except Exception as exc:  # pragma: no cover - defensive
                return _response(500, {"error": f"{type(exc).__name__}: {exc}"})
            return _response(200, result)
        return _response(404, {"error": f"no route {method} {path}"})

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        try:
            request = await self._read_request(reader)
            if request is not None:
                method, path, body = request
                writer.write(await self._dispatch(method, path, body))
                await writer.drain()
        except (ValueError, asyncio.IncompleteReadError) as exc:
            try:
                writer.write(_response(400, {"error": str(exc)}))
                await writer.drain()
            except (ConnectionError, RuntimeError):  # pragma: no cover
                pass
        except ConnectionError:  # pragma: no cover - client went away
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover
                pass

    # -- lifecycle -------------------------------------------------------------

    async def serve(self, stop: "asyncio.Event | None" = None, ready=None) -> None:
        """Accept connections until ``stop`` is set (forever when ``None``).

        ``ready(host, port)`` — if given — is called once the socket is
        bound, which is how ``port=0`` callers learn the ephemeral port.
        """
        server = await asyncio.start_server(self._handle, self._host, self._port)
        sockname = server.sockets[0].getsockname()
        self._bound = (sockname[0], sockname[1])
        if ready is not None:
            ready(*self._bound)
        try:
            async with server:
                if stop is None:
                    await server.serve_forever()
                else:
                    await stop.wait()
        finally:
            self._bound = None
            self._executor.shutdown(wait=True)


class BackgroundServer:
    """Run a :class:`CorraHttpServer` on a daemon thread (for tests/benchmarks).

    ::

        with BackgroundServer(service, port=0) as (host, port):
            http.client.HTTPConnection(host, port).request("GET", "/health")
    """

    def __init__(self, service: QueryService, host: str = "127.0.0.1", port: int = 0):
        self._server = CorraHttpServer(service, host=host, port=port)
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None

    @property
    def address(self) -> tuple[str, int]:
        if self._address is None:
            raise RuntimeError("server is not running")
        return self._address

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()

        def ready(host: str, port: int) -> None:
            self._address = (host, port)
            self._ready.set()

        await self._server.serve(stop=self._stop, ready=ready)

    def _signal_stop(self) -> None:
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)

    def __enter__(self) -> tuple[str, int]:
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()), name="corra-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server failed to start within 30s")
        return self.address

    def __exit__(self, *exc_info) -> None:
        self._signal_stop()
        if self._thread is not None:
            self._thread.join(timeout=30)
        self._address = None
