"""Compression plans: how each column of a table should be encoded.

This is the user-facing orchestration layer.  A :class:`CompressionPlan` maps
every column either to a vertical scheme (``"auto"`` picks the paper's
best-of FOR/Dict baseline) or to one of the three horizontal schemes with its
reference column(s).  A :class:`TableCompressor` applies the plan block by
block (1 M tuples per block by default, as in the paper) and produces a
:class:`repro.storage.relation.Relation` of self-contained
:class:`~repro.storage.block.CompressedBlock` objects.

Typical usage::

    plan = (CompressionPlan.builder(table.schema)
            .diff_encode("l_receiptdate", reference="l_shipdate")
            .diff_encode("l_commitdate", reference="l_shipdate")
            .build())
    relation = TableCompressor(plan).compress(table)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from ..encodings.selector import BestOfSelector, scheme_by_name
from ..errors import ConfigurationError, UnknownColumnError
from ..storage.block import DEFAULT_BLOCK_SIZE, ColumnDependency, CompressedBlock
from ..storage.relation import Relation, split_into_blocks
from ..storage.schema import Schema
from ..storage.statistics import BlockStatistics, ColumnStatistics
from ..storage.table import Table
from .correlation import EncodingSuggestion
from .diff_encoding import NonHierarchicalEncoding
from .hierarchical import HierarchicalEncoding
from .multi_reference import MultiReferenceConfig, MultiReferenceEncoding

__all__ = ["ColumnPlan", "CompressionPlan", "PlanBuilder", "TableCompressor"]

#: Vertical plan modes accepted besides concrete scheme names.
_AUTO = "auto"

#: The three horizontal encoding kinds.
_HORIZONTAL_KINDS = ("non_hierarchical", "hierarchical", "multi_reference")


@dataclass(frozen=True)
class ColumnPlan:
    """Encoding decision for one column."""

    column: str
    encoding: str = _AUTO
    references: tuple[str, ...] = ()
    multi_reference_config: MultiReferenceConfig | None = None
    outlier_bit_budget: int | None = None

    @property
    def is_horizontal(self) -> bool:
        return self.encoding in _HORIZONTAL_KINDS

    def __post_init__(self) -> None:
        if self.encoding in _HORIZONTAL_KINDS and not self.references:
            raise ConfigurationError(
                f"horizontal encoding {self.encoding!r} for column "
                f"{self.column!r} needs at least one reference column"
            )
        if self.encoding == "multi_reference" and self.multi_reference_config is None:
            raise ConfigurationError(
                f"multi-reference encoding for column {self.column!r} needs a "
                "MultiReferenceConfig"
            )
        if self.encoding not in _HORIZONTAL_KINDS and self.references:
            raise ConfigurationError(
                f"vertical encoding {self.encoding!r} for column {self.column!r} "
                "must not declare reference columns"
            )


class CompressionPlan:
    """A validated set of :class:`ColumnPlan` entries covering a schema."""

    def __init__(self, schema: Schema, column_plans: Iterable[ColumnPlan] = ()):
        self._schema = schema
        self._plans: dict[str, ColumnPlan] = {
            name: ColumnPlan(column=name) for name in schema.names
        }
        for plan in column_plans:
            if plan.column not in schema:
                raise UnknownColumnError(plan.column, schema.names)
            self._plans[plan.column] = plan
        self._validate()

    def _validate(self) -> None:
        for plan in self._plans.values():
            for ref in plan.references:
                if ref not in self._schema:
                    raise UnknownColumnError(ref, self._schema.names)
                if ref == plan.column:
                    raise ConfigurationError(
                        f"column {plan.column!r} cannot reference itself"
                    )
                ref_plan = self._plans[ref]
                if ref_plan.is_horizontal:
                    raise ConfigurationError(
                        f"column {plan.column!r} references {ref!r}, which is "
                        "itself horizontally encoded; reference chains are not "
                        "supported (left to future work in the paper)"
                    )

    # -- constructors -----------------------------------------------------------

    @classmethod
    def vertical_only(cls, schema: Schema) -> "CompressionPlan":
        """The paper's baseline: best single-column scheme for every column."""
        return cls(schema)

    @classmethod
    def builder(cls, schema: Schema) -> "PlanBuilder":
        return PlanBuilder(schema)

    @classmethod
    def from_suggestions(
        cls, schema: Schema, suggestions: Iterable[EncodingSuggestion]
    ) -> "CompressionPlan":
        """Build a plan from :class:`CorrelationDetector` suggestions.

        Suggestions are applied greedily in the given order; a suggestion is
        skipped if its target already has a horizontal plan or if applying it
        would create a reference chain.
        """
        builder = cls.builder(schema)
        for suggestion in suggestions:
            try:
                if suggestion.kind == "non_hierarchical":
                    builder.diff_encode(suggestion.target, suggestion.references[0])
                elif suggestion.kind == "hierarchical":
                    builder.hierarchical_encode(suggestion.target, suggestion.references[0])
                else:
                    continue
            except ConfigurationError:
                continue
        return builder.build()

    # -- accessors --------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    def column_plan(self, name: str) -> ColumnPlan:
        if name not in self._plans:
            raise UnknownColumnError(name, self._schema.names)
        return self._plans[name]

    def horizontal_columns(self) -> tuple[str, ...]:
        return tuple(
            name for name, plan in self._plans.items() if plan.is_horizontal
        )

    def __iter__(self):
        return iter(self._plans.values())

    def describe(self) -> str:
        """Human-readable plan summary, one line per column."""
        lines = []
        for name in self._schema.names:
            plan = self._plans[name]
            if plan.is_horizontal:
                refs = ", ".join(plan.references)
                lines.append(f"{name}: {plan.encoding} (references: {refs})")
            else:
                lines.append(f"{name}: {plan.encoding}")
        return "\n".join(lines)


class PlanBuilder:
    """Fluent construction of a :class:`CompressionPlan`."""

    def __init__(self, schema: Schema):
        self._schema = schema
        self._plans: dict[str, ColumnPlan] = {}

    def vertical(self, column: str, scheme: str = _AUTO) -> "PlanBuilder":
        """Encode ``column`` with a named vertical scheme (or the best one)."""
        return self._set(ColumnPlan(column=column, encoding=scheme))

    def diff_encode(self, column: str, reference: str,
                    outlier_bit_budget: int | None = None) -> "PlanBuilder":
        """Non-hierarchical diff-encoding of ``column`` w.r.t. ``reference``."""
        return self._set(
            ColumnPlan(
                column=column,
                encoding="non_hierarchical",
                references=(reference,),
                outlier_bit_budget=outlier_bit_budget,
            )
        )

    def hierarchical_encode(self, column: str, reference: str) -> "PlanBuilder":
        """Hierarchical encoding of ``column`` grouped by ``reference``."""
        return self._set(
            ColumnPlan(column=column, encoding="hierarchical", references=(reference,))
        )

    def multi_reference_encode(
        self, column: str, config: MultiReferenceConfig
    ) -> "PlanBuilder":
        """Multi-reference encoding of ``column`` with the given rule config."""
        return self._set(
            ColumnPlan(
                column=column,
                encoding="multi_reference",
                references=config.reference_columns,
                multi_reference_config=config,
            )
        )

    def _set(self, plan: ColumnPlan) -> "PlanBuilder":
        """Apply one column plan, validating the partial plan and rolling back
        on failure so an invalid call leaves the builder untouched."""
        previous = self._plans.get(plan.column)
        self._plans[plan.column] = plan
        try:
            CompressionPlan(self._schema, self._plans.values())
        except Exception:
            if previous is None:
                del self._plans[plan.column]
            else:
                self._plans[plan.column] = previous
            raise
        return self

    def build(self) -> CompressionPlan:
        return CompressionPlan(self._schema, self._plans.values())


class TableCompressor:
    """Apply a :class:`CompressionPlan` to a table, block by block.

    ``workers`` > 1 compresses the blocks of a relation concurrently on a
    thread pool (``None``/``0`` = one worker per core): every block is
    self-contained and the encoders share no mutable state, so block
    compression is embarrassingly parallel and the NumPy kernels release the
    GIL.  Block order — and therefore the resulting relation — is identical
    to serial compression.
    """

    def __init__(
        self,
        plan: CompressionPlan | None = None,
        selector: BestOfSelector | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        collect_statistics: bool = True,
        workers: int = 1,
    ):
        self._plan = plan
        self._selector = selector if selector is not None else BestOfSelector()
        self._block_size = block_size
        self._collect_statistics = collect_statistics
        self._workers = workers

    def _plan_for(self, table: Table) -> CompressionPlan:
        if self._plan is not None:
            return self._plan
        return CompressionPlan.vertical_only(table.schema)

    # -- block compression --------------------------------------------------------

    def compress_block(self, chunk: Table, plan: CompressionPlan | None = None) -> CompressedBlock:
        """Compress one table chunk into a self-contained block."""
        plan = plan if plan is not None else self._plan_for(chunk)
        columns = {}
        dependencies = {}
        for spec in chunk.schema:
            name = spec.name
            column_plan = plan.column_plan(name)
            values = chunk.column(name)
            if column_plan.encoding == "non_hierarchical":
                reference = column_plan.references[0]
                encoder = NonHierarchicalEncoding(
                    outlier_bit_budget=column_plan.outlier_bit_budget
                )
                columns[name] = encoder.encode(values, chunk.column(reference), reference)
                dependencies[name] = ColumnDependency(
                    references=(reference,), kind="non_hierarchical"
                )
            elif column_plan.encoding == "hierarchical":
                reference = column_plan.references[0]
                encoder = HierarchicalEncoding()
                columns[name] = encoder.encode(values, chunk.column(reference), reference)
                dependencies[name] = ColumnDependency(
                    references=(reference,), kind="hierarchical"
                )
            elif column_plan.encoding == "multi_reference":
                config = column_plan.multi_reference_config
                assert config is not None
                encoder = MultiReferenceEncoding(config)
                references = {
                    ref: chunk.column(ref) for ref in config.reference_columns
                }
                columns[name] = encoder.encode(values, references)
                dependencies[name] = ColumnDependency(
                    references=config.reference_columns, kind="multi_reference"
                )
            elif column_plan.encoding == _AUTO:
                columns[name] = self._selector.select(values, spec.dtype).column
            else:
                scheme = scheme_by_name(column_plan.encoding)
                columns[name] = scheme.encode(values, spec.dtype)
        statistics = (
            self._block_statistics(chunk, plan, columns)
            if self._collect_statistics else None
        )
        return CompressedBlock(
            schema=chunk.schema,
            n_rows=chunk.n_rows,
            columns=columns,
            dependencies=dependencies,
            statistics=statistics,
        )

    def _block_statistics(
        self, chunk: Table, plan: CompressionPlan, columns: Mapping
    ) -> BlockStatistics:
        """Compute the block's zone map at compression time.

        Vertical, hierarchical and multi-reference columns get exact bounds
        (plus, for integer columns, the exact per-block sum that lets the
        query compiler answer ``sum`` aggregates over fully-covered blocks
        from metadata alone) from the raw chunk values.  Diff-encoded
        columns get conservative bounds derived from the reference's bounds
        plus the stored delta range (widened by the outlier region) — the
        target values themselves are never consulted, mirroring how a
        reader could rebuild the zone map from block metadata alone.  Their
        *sum*, however, is exact: ``sum(target) = sum(reference) +
        sum(differences)``, corrected for outlier rows whose verbatim value
        replaces the reconstruction, so sum/avg aggregates over diff-encoded
        columns are stat-answerable too.
        """
        per_column: dict[str, ColumnStatistics] = {}
        diff_encoded: list[str] = []
        for spec in chunk.schema:
            name = spec.name
            if plan.column_plan(name).encoding == "non_hierarchical":
                diff_encoded.append(name)
                continue
            per_column[name] = ColumnStatistics.from_values(
                chunk.column(name), distinct="estimate"
            )
        for name in diff_encoded:
            encoded = columns[name]
            reference = plan.column_plan(name).references[0]
            diff_stats = encoded.stats()
            outliers = encoded.outliers
            per_column[name] = ColumnStatistics.from_reference_and_deltas(
                per_column[reference],
                diff_stats.min_difference,
                diff_stats.max_difference,
                chunk.n_rows,
                outlier_values=outliers.values if outliers else None,
                sum_value=self._derived_diff_sum(
                    encoded, per_column[reference], chunk.column(reference), outliers
                ),
            )
        return BlockStatistics(per_column)

    @staticmethod
    def _derived_diff_sum(
        encoded, reference_stats: ColumnStatistics, reference_values, outliers
    ) -> int | None:
        """Exact diff-encoded column sum without decoding the target.

        ``sum(reference) + sum(stored differences)``; an outlier row stores
        its value verbatim and overrides the reconstruction, so each one
        swaps its ``reference + difference`` contribution for the stored
        value.
        """
        if reference_stats.sum_value is None:
            return None
        total = int(reference_stats.sum_value) + encoded.sum_differences()
        if outliers:
            positions = outliers.positions
            replaced = (
                np.asarray(reference_values, dtype=np.int64)[positions]
                + encoded.gather_differences(positions)
            )
            total += int(outliers.values.sum(dtype=np.int64))
            total -= int(replaced.sum(dtype=np.int64))
        return total

    # -- relation compression -------------------------------------------------------

    def compress(self, table: Table, plan: CompressionPlan | None = None) -> Relation:
        """Split ``table`` into blocks and compress each one.

        With ``workers`` > 1 the blocks are compressed concurrently; the
        block list keeps its serial order either way.
        """
        plan = plan if plan is not None else self._plan_for(table)
        chunks = list(split_into_blocks(table, self._block_size))
        # Imported here to keep repro.core importable without pulling in the
        # whole query layer at module-import time.
        from ..query.parallel import parallel_map

        blocks = parallel_map(
            lambda chunk: self.compress_block(chunk, plan),
            chunks,
            workers=self._workers,
        )
        return Relation(table.schema, blocks, self._block_size)

    def column_sizes(self, table: Table, plan: CompressionPlan | None = None) -> dict[str, int]:
        """Compressed size per column for ``table`` under the plan."""
        relation = self.compress(table, plan)
        return {name: relation.column_size(name) for name in table.schema.names}
