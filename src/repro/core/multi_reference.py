"""Non-hierarchical encoding with multiple reference columns — paper §2.3.

The target column (Taxi's ``total_amount``) is expressed through a small set
of *arithmetic rules* over groups of reference columns.  The paper's Taxi
configuration partitions eight monetary columns into three groups::

    A = {mta_tax, fare_amount, improvement_surcharge, extra,
         tip_amount, tolls_amount}
    B = {congestion_surcharge}
    C = {airport_fee}

and uses the four rules A, A+B, A+C, A+B+C (Table 1).  Each row then stores a
2-bit rule code; rows matching no rule go to the outlier region (Fig. 4) as
``(row index, original value)`` pairs, so no third code bit or sentinel value
is ever needed.

Values are fixed-point integers (cents); exact equality is used for rule
matching, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..bitpack import BitPackedArray, required_bits
from ..encodings.base import ensure_int_array
from ..errors import ConfigurationError, DecodingError, EncodingError
from .base import HorizontalEncodedColumn, ReferenceValues
from .outliers import OutlierStore

__all__ = [
    "ReferenceGroup",
    "ArithmeticRule",
    "MultiReferenceConfig",
    "MultiReferenceEncodedColumn",
    "MultiReferenceEncoding",
    "RuleStatistics",
]

#: Fixed per-column metadata: counts, widths, rule table header.
_METADATA_BYTES = 16

#: Bytes charged per rule descriptor (group bitmap + padding).
_BYTES_PER_RULE = 4


@dataclass(frozen=True)
class ReferenceGroup:
    """A named group of reference columns whose values are summed."""

    name: str
    columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("reference group name must be non-empty")
        if not self.columns:
            raise ConfigurationError(
                f"reference group {self.name!r} must contain at least one column"
            )

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        """Sum of this group's columns, element-wise."""
        total = None
        for col in self.columns:
            if col not in columns:
                raise EncodingError(
                    f"reference group {self.name!r} needs column {col!r}"
                )
            values = ensure_int_array(columns[col])
            total = values.copy() if total is None else total + values
        assert total is not None
        return total


@dataclass(frozen=True)
class ArithmeticRule:
    """One reconstruction rule: the sum of a subset of reference groups."""

    groups: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.groups:
            raise ConfigurationError("an arithmetic rule must use at least one group")
        if len(set(self.groups)) != len(self.groups):
            raise ConfigurationError(f"duplicate groups in rule {self.groups}")

    @property
    def label(self) -> str:
        """Human-readable representation, e.g. ``"A + B"`` as in Table 1."""
        return " + ".join(self.groups)

    def evaluate(self, group_sums: Mapping[str, np.ndarray]) -> np.ndarray:
        total = None
        for name in self.groups:
            if name not in group_sums:
                raise EncodingError(f"rule {self.label!r} needs group {name!r}")
            values = group_sums[name]
            total = values.copy() if total is None else total + values
        assert total is not None
        return total


@dataclass(frozen=True)
class MultiReferenceConfig:
    """Groups plus the ordered rule list (order defines the binary codes)."""

    groups: tuple[ReferenceGroup, ...]
    rules: tuple[ArithmeticRule, ...]

    def __post_init__(self) -> None:
        group_names = {g.name for g in self.groups}
        if len(group_names) != len(self.groups):
            raise ConfigurationError("reference group names must be unique")
        for rule in self.rules:
            unknown = set(rule.groups) - group_names
            if unknown:
                raise ConfigurationError(
                    f"rule {rule.label!r} uses unknown groups {sorted(unknown)}"
                )
        if not self.rules:
            raise ConfigurationError("at least one arithmetic rule is required")

    @property
    def reference_columns(self) -> tuple[str, ...]:
        """Every reference column used by any group, in group order."""
        names: list[str] = []
        for group in self.groups:
            for col in group.columns:
                if col not in names:
                    names.append(col)
        return tuple(names)

    @property
    def code_bit_width(self) -> int:
        """Bits needed for the rule code (2 for the paper's four rules)."""
        return max(required_bits(len(self.rules) - 1), 1)

    def group_sums(self, columns: Mapping[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Evaluate every group on the given reference column values."""
        return {g.name: g.evaluate(columns) for g in self.groups}

    def rule_predictions(self, columns: Mapping[str, np.ndarray]) -> list[np.ndarray]:
        """Evaluate every rule on the given reference column values."""
        sums = self.group_sums(columns)
        return [rule.evaluate(sums) for rule in self.rules]


@dataclass
class RuleStatistics:
    """Per-rule match shares, mirroring the paper's Table 1."""

    labels: list[str]
    codes: list[str]
    probabilities: list[float]
    outlier_probability: float
    rows: int = field(default=0)

    def as_rows(self) -> list[tuple[str, str, float]]:
        """(label, binary code, probability) triples plus the outlier row."""
        rows = list(zip(self.labels, self.codes, self.probabilities))
        rows.append(("None", "outlier", self.outlier_probability))
        return rows


class MultiReferenceEncodedColumn(HorizontalEncodedColumn):
    """Target column stored as per-row rule codes plus an outlier region."""

    encoding_name = "multi_reference"

    def __init__(
        self,
        target: np.ndarray,
        references: Mapping[str, np.ndarray],
        config: MultiReferenceConfig,
    ):
        tgt = ensure_int_array(target)
        self._config = config
        self.reference_names = config.reference_columns
        for name in self.reference_names:
            if name not in references:
                raise EncodingError(f"missing reference column {name!r}")
            if len(references[name]) != tgt.size:
                raise EncodingError(
                    f"reference column {name!r} length does not match target"
                )

        predictions = config.rule_predictions(references)
        codes = np.zeros(tgt.size, dtype=np.int64)
        matched = np.zeros(tgt.size, dtype=bool)
        for code, prediction in enumerate(predictions):
            hit = ~matched & (prediction == tgt)
            codes[hit] = code
            matched |= hit

        self._outliers = OutlierStore.from_mask(~matched, tgt)
        self._match_counts = [
            int(np.sum(codes[matched] == code)) for code in range(len(config.rules))
        ]
        self._codes = BitPackedArray.from_values(codes, config.code_bit_width)

    # -- properties ------------------------------------------------------------

    @property
    def config(self) -> MultiReferenceConfig:
        return self._config

    @property
    def outliers(self) -> OutlierStore:
        return self._outliers

    @property
    def code_bit_width(self) -> int:
        return self._codes.bit_width

    @property
    def n_values(self) -> int:
        return self._codes.n_values

    @property
    def size_bytes(self) -> int:
        return (
            self._codes.size_bytes
            + self._outliers.size_bytes
            + _BYTES_PER_RULE * len(self._config.rules)
            + _METADATA_BYTES
        )

    def rule_statistics(self) -> RuleStatistics:
        """Observed rule mixture (the reproduction of Table 1)."""
        n = self.n_values
        width = self._config.code_bit_width
        labels = [rule.label for rule in self._config.rules]
        codes = [format(i, f"0{width}b") for i in range(len(self._config.rules))]
        if n == 0:
            probabilities = [0.0] * len(labels)
            outlier_probability = 0.0
        else:
            probabilities = [count / n for count in self._match_counts]
            outlier_probability = self._outliers.n_outliers / n
        return RuleStatistics(
            labels=labels,
            codes=codes,
            probabilities=probabilities,
            outlier_probability=outlier_probability,
            rows=n,
        )

    # -- decoding ---------------------------------------------------------------

    def gather_with_reference(
        self, positions: np.ndarray, reference_values: ReferenceValues
    ) -> np.ndarray:
        """Reconstruct: pick each row's rule, evaluate it, then patch outliers."""
        self._check_reference_values(positions, reference_values)
        pos = np.asarray(positions, dtype=np.int64)
        columns = {
            name: ensure_int_array(reference_values[name])
            for name in self.reference_names
        }
        predictions = self._config.rule_predictions(columns)
        codes = self._codes.gather(pos)
        if codes.size and codes.max() >= len(predictions):
            raise DecodingError("rule code out of range; corrupted column?")
        stacked = np.stack(predictions, axis=0) if predictions else np.zeros((1, pos.size))
        reconstructed = stacked[codes, np.arange(pos.size)]
        return self._outliers.apply(pos, reconstructed)

    def gather_codes(self, positions: np.ndarray) -> np.ndarray:
        """Positional access to the raw rule codes."""
        return self._codes.gather(np.asarray(positions, dtype=np.int64))


class MultiReferenceEncoding:
    """Scheme object for multi-reference diff-encoding (paper §2.3)."""

    name = "multi_reference"

    def __init__(self, config: MultiReferenceConfig):
        self.config = config

    def encode(self, target, references: Mapping[str, np.ndarray]) -> MultiReferenceEncodedColumn:
        """Encode ``target`` against the configured reference groups."""
        column = MultiReferenceEncodedColumn(target, references, self.config)
        column.encoding_name = self.name
        return column

    def estimate_size(self, target, references: Mapping[str, np.ndarray]) -> int:
        """Size estimate (encodes and measures; rule matching dominates anyway)."""
        return self.encode(target, references).size_bytes

    def __repr__(self) -> str:
        rules = ", ".join(rule.label for rule in self.config.rules)
        return f"MultiReferenceEncoding(rules=[{rules}])"
