"""Automatic correlation detection (the paper's future-work extension).

The paper's conclusion envisions "automatic correlation detection, especially
for our non-hierarchical encoding scheme with multiple reference columns".
This module implements pragmatic detectors for all three horizontal schemes:

* :func:`bounded_difference_score` — is ``(a − b)`` much narrower than ``a``?
  If so, non-hierarchical diff-encoding of ``a`` w.r.t. ``b`` pays off.
* :func:`hierarchy_score` — does grouping column ``a`` by column ``b`` reduce
  the per-group distinct count enough that hierarchical encoding wins?
* :func:`arithmetic_rule_coverage` — what fraction of rows does a candidate
  multi-reference rule set explain, and how many outliers remain?

:class:`CorrelationDetector` sweeps a table's column pairs with these scores
and returns ranked :class:`EncodingSuggestion` objects, which
:class:`repro.core.plan.CompressionPlan` can consume directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..bitpack import required_bits
from ..encodings.selector import BestOfSelector
from ..errors import ValidationError
from ..storage.table import Table
from .hierarchical import HierarchicalEncoding
from .multi_reference import MultiReferenceConfig

__all__ = [
    "bounded_difference_score",
    "hierarchy_score",
    "arithmetic_rule_coverage",
    "EncodingSuggestion",
    "CorrelationDetector",
]


@dataclass(frozen=True)
class EncodingSuggestion:
    """A proposed horizontal encoding with its estimated benefit."""

    kind: str  # "non_hierarchical" | "hierarchical" | "multi_reference"
    target: str
    references: tuple[str, ...]
    estimated_saving_bytes: int
    estimated_saving_rate: float
    detail: str = ""

    def __str__(self) -> str:
        refs = ", ".join(self.references)
        return (
            f"{self.target} <- {self.kind}({refs}): "
            f"save {self.estimated_saving_bytes} bytes "
            f"({self.estimated_saving_rate:.1%}) {self.detail}"
        )


def bounded_difference_score(target: np.ndarray, reference: np.ndarray) -> dict:
    """Bit-width comparison between a column and its difference to a reference.

    Returns a dict with the vertical bit width of ``target`` (after FOR), the
    bit width of ``target − reference``, and the implied per-row bit saving.
    """
    tgt = np.asarray(target, dtype=np.int64)
    ref = np.asarray(reference, dtype=np.int64)
    if tgt.shape != ref.shape:
        raise ValidationError("target and reference must have the same length")
    if tgt.size == 0:
        return {"target_bits": 0, "diff_bits": 0, "bits_saved_per_row": 0}
    target_bits = required_bits(int(tgt.max() - tgt.min()))
    diffs = tgt - ref
    diff_bits = required_bits(int(diffs.max() - diffs.min()))
    return {
        "target_bits": target_bits,
        "diff_bits": diff_bits,
        "bits_saved_per_row": target_bits - diff_bits,
    }


def hierarchy_score(target: Sequence, reference: Sequence) -> dict:
    """How hierarchical is the pair (reference → target)?

    Reports the global distinct count of ``target``, the largest per-group
    distinct count, and the implied per-row bit saving for the code stream
    (global dictionary code width vs group-local code width).
    """
    if len(target) != len(reference):
        raise ValidationError("target and reference must have the same length")
    if len(target) == 0:
        return {
            "global_distinct": 0,
            "max_group_distinct": 0,
            "n_groups": 0,
            "bits_saved_per_row": 0,
        }
    target_arr = np.asarray(target, dtype=object)
    ref_arr = np.asarray(reference, dtype=object)
    _, target_codes = np.unique(target_arr, return_inverse=True)
    ref_domain, ref_codes = np.unique(ref_arr, return_inverse=True)

    global_distinct = int(target_codes.max()) + 1
    n_targets = global_distinct
    pair_key = ref_codes.astype(np.int64) * n_targets + target_codes
    unique_pairs = np.unique(pair_key)
    pair_group = unique_pairs // n_targets
    _, group_counts = np.unique(pair_group, return_counts=True)
    max_group_distinct = int(group_counts.max())

    global_bits = required_bits(global_distinct - 1)
    local_bits = required_bits(max_group_distinct - 1)
    return {
        "global_distinct": global_distinct,
        "max_group_distinct": max_group_distinct,
        "n_groups": int(len(ref_domain)),
        "bits_saved_per_row": global_bits - local_bits,
    }


def arithmetic_rule_coverage(
    target: np.ndarray,
    references: Mapping[str, np.ndarray],
    config: MultiReferenceConfig,
) -> dict:
    """Fraction of rows each rule explains, plus the leftover outlier fraction."""
    tgt = np.asarray(target, dtype=np.int64)
    predictions = config.rule_predictions(
        {name: np.asarray(values, dtype=np.int64) for name, values in references.items()}
    )
    matched = np.zeros(tgt.size, dtype=bool)
    coverage: dict[str, float] = {}
    for rule, prediction in zip(config.rules, predictions):
        hit = ~matched & (prediction == tgt)
        coverage[rule.label] = float(hit.sum() / tgt.size) if tgt.size else 0.0
        matched |= hit
    outlier_fraction = float((~matched).sum() / tgt.size) if tgt.size else 0.0
    return {"rule_coverage": coverage, "outlier_fraction": outlier_fraction}


class CorrelationDetector:
    """Scan a table for column pairs worth encoding horizontally."""

    def __init__(
        self,
        selector: BestOfSelector | None = None,
        min_saving_rate: float = 0.05,
        sample_rows: int | None = 200_000,
    ):
        """``sample_rows`` caps how many rows the detector inspects per column
        pair (sizes are extrapolated linearly); ``None`` disables sampling."""
        self._selector = selector if selector is not None else BestOfSelector()
        self._min_saving_rate = min_saving_rate
        self._sample_rows = sample_rows

    def _sampled(self, table: Table) -> Table:
        if self._sample_rows is None or table.n_rows <= self._sample_rows:
            return table
        return table.slice(0, self._sample_rows)

    def suggest(self, table: Table) -> list[EncodingSuggestion]:
        """Rank non-hierarchical and hierarchical candidates for all column pairs."""
        sample = self._sampled(table)
        scale = table.n_rows / sample.n_rows if sample.n_rows else 1.0
        suggestions: list[EncodingSuggestion] = []

        integer_columns = [
            spec.name for spec in table.schema if spec.dtype.is_integer_like
        ]
        all_columns = list(table.schema.names)

        baseline_sizes = {
            name: self._selector.best_size(sample.column(name), sample.dtype(name))
            for name in all_columns
        }

        # Non-hierarchical candidates: ordered pairs of integer-like columns.
        from .diff_encoding import estimate_diff_encoded_size

        for target in integer_columns:
            for reference in integer_columns:
                if target == reference:
                    continue
                diff_size = estimate_diff_encoded_size(
                    sample.column(target), sample.column(reference)
                )
                baseline = baseline_sizes[target]
                saving = baseline - diff_size
                rate = saving / baseline if baseline else 0.0
                if rate >= self._min_saving_rate:
                    score = bounded_difference_score(
                        sample.column(target), sample.column(reference)
                    )
                    suggestions.append(
                        EncodingSuggestion(
                            kind="non_hierarchical",
                            target=target,
                            references=(reference,),
                            estimated_saving_bytes=int(saving * scale),
                            estimated_saving_rate=rate,
                            detail=f"{score['target_bits']}b -> {score['diff_bits']}b per row",
                        )
                    )

        # Hierarchical candidates: any target grouped by any other column.
        hierarchical = HierarchicalEncoding()
        for target in all_columns:
            for reference in all_columns:
                if target == reference:
                    continue
                score = hierarchy_score(
                    sample.column(target), sample.column(reference)
                )
                if score["bits_saved_per_row"] <= 0:
                    continue
                size = hierarchical.estimate_size(
                    sample.column(target), sample.column(reference)
                )
                baseline = baseline_sizes[target]
                saving = baseline - size
                rate = saving / baseline if baseline else 0.0
                if rate >= self._min_saving_rate:
                    suggestions.append(
                        EncodingSuggestion(
                            kind="hierarchical",
                            target=target,
                            references=(reference,),
                            estimated_saving_bytes=int(saving * scale),
                            estimated_saving_rate=rate,
                            detail=(
                                f"{score['global_distinct']} distinct globally, "
                                f"<= {score['max_group_distinct']} per group"
                            ),
                        )
                    )

        suggestions.sort(key=lambda s: s.estimated_saving_bytes, reverse=True)
        return suggestions

    def best_per_target(self, table: Table) -> dict[str, EncodingSuggestion]:
        """The single best suggestion for each target column (if any)."""
        best: dict[str, EncodingSuggestion] = {}
        for suggestion in self.suggest(table):
            current = best.get(suggestion.target)
            if (
                current is None
                or suggestion.estimated_saving_bytes > current.estimated_saving_bytes
            ):
                best[suggestion.target] = suggestion
        return best
