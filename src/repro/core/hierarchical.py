"""Hierarchical encoding — paper §2.2.

Targets column pairs with a hierarchy such as (``city``, ``zip_code``) in the
DMV dataset or (``countryid``, ``ip``) in LDBC's ``message``: the dependent
column has many distinct values overall, but only a handful *per reference
value*.

Layout (Fig. 3 of the paper):

* ``group_values`` — the distinct dependent values of every reference group,
  concatenated ("zip_codes" in the paper's figure), bit-packed.
* ``offsets`` — where each reference group's slice starts inside
  ``group_values``.
* per-row *local codes* — the index of the row's value within its group's
  slice, bit-packed at ``ceil(log2(max group fan-out))`` bits.  This is where
  the saving comes from: a city with 40 zip codes needs 6 bits per row
  instead of the 12+ bits a global zip dictionary would need.

String dependents (e.g. IP addresses) are first dictionary-encoded into a
flattened string heap whose size is charged to this column, matching the
paper's "reducing the necessary bit-width for storing the unique IPs via a
dict-encoding".

Decoding follows Algorithm 1: fetch the reference value, map it to its group,
then read ``group_values[offsets[group] + local_code]``.  The reference →
group mapping reuses the reference column's own dictionary order, so it is
not charged to this column's size (it already exists in the block).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..bitpack import BitPackedArray, required_bits
from ..encodings.dictionary import StringHeap
from ..errors import DecodingError, EncodingError
from .base import HorizontalEncodedColumn, ReferenceValues

__all__ = [
    "HierarchicalEncodedColumn",
    "HierarchicalEncoding",
    "HierarchicalStats",
]

#: Fixed per-column metadata: counts and widths.
_METADATA_BYTES = 16


@dataclass(frozen=True)
class HierarchicalStats:
    """Summary statistics of a hierarchical encoding."""

    n_values: int
    n_groups: int
    n_distinct_targets: int
    max_group_fanout: int
    code_bit_width: int
    size_bytes: int

    @property
    def average_fanout(self) -> float:
        return self.n_distinct_targets / self.n_groups if self.n_groups else 0.0


def _to_codes(values) -> tuple[np.ndarray, np.ndarray | list[str], bool]:
    """Map values to dense integer codes.

    Returns ``(codes, domain, is_string)`` where ``domain[code]`` recovers the
    original value.  Integer domains come back as an ``int64`` array, string
    domains as a list of strings.
    """
    if len(values) == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), False
    first = values[0]
    if isinstance(first, str):
        arr = np.asarray(values, dtype=object)
        domain, codes = np.unique(arr, return_inverse=True)
        return codes.astype(np.int64), [str(s) for s in domain], True
    arr = np.asarray(values)
    if arr.dtype.kind not in "iu":
        raise EncodingError(
            f"hierarchical encoding expects integer or string values, "
            f"got dtype {arr.dtype}"
        )
    domain, codes = np.unique(arr.astype(np.int64), return_inverse=True)
    return codes.astype(np.int64), domain.astype(np.int64), False


class HierarchicalEncodedColumn(HorizontalEncodedColumn):
    """Dependent column stored as per-reference-group local codes."""

    encoding_name = "hierarchical"

    def __init__(self, target: Sequence, reference: Sequence, reference_name: str):
        if len(target) != len(reference):
            raise EncodingError(
                f"target and reference must have equal length, got "
                f"{len(target)} vs {len(reference)}"
            )
        self.reference_names = (reference_name,)
        n = len(target)

        target_codes, target_domain, target_is_string = _to_codes(target)
        ref_codes, ref_domain, ref_is_string = _to_codes(reference)

        self._target_is_string = target_is_string
        if target_is_string:
            self._target_heap: StringHeap | None = StringHeap(list(target_domain))
            self._target_domain_ints: np.ndarray | None = None
        else:
            self._target_heap = None
            self._target_domain_ints = np.asarray(target_domain, dtype=np.int64)

        self._ref_is_string = ref_is_string
        if ref_is_string:
            self._ref_lookup = {value: code for code, value in enumerate(ref_domain)}
            self._ref_domain_ints = None
        else:
            self._ref_lookup = None
            self._ref_domain_ints = np.asarray(ref_domain, dtype=np.int64)

        n_groups = len(ref_domain)
        n_targets = len(target_domain)

        if n == 0:
            self._offsets = np.zeros(1, dtype=np.int64)
            self._group_values = BitPackedArray.from_values(np.zeros(0, dtype=np.int64), 0)
            self._local_codes = BitPackedArray.from_values(np.zeros(0, dtype=np.int64), 0)
            return

        # Distinct (reference group, target value) pairs, ordered by group then
        # value.  The per-group runs of pair_target form the flattened
        # "group_values" array; offsets mark where each group's run starts.
        pair_key = ref_codes * np.int64(n_targets) + target_codes
        unique_pairs, pair_inverse = np.unique(pair_key, return_inverse=True)
        pair_group = unique_pairs // n_targets
        pair_target = unique_pairs % n_targets

        self._offsets = np.searchsorted(pair_group, np.arange(n_groups + 1)).astype(np.int64)
        local_codes = pair_inverse - self._offsets[ref_codes]

        value_width = required_bits(int(pair_target.max())) if pair_target.size else 0
        self._group_values = BitPackedArray.from_values(pair_target, value_width)

        code_width = required_bits(int(local_codes.max())) if local_codes.size else 0
        self._local_codes = BitPackedArray.from_values(local_codes, code_width)

    # -- properties ------------------------------------------------------------

    @property
    def reference_name(self) -> str:
        return self.reference_names[0]

    @property
    def n_groups(self) -> int:
        return int(self._offsets.size - 1)

    @property
    def n_distinct_targets(self) -> int:
        """Number of distinct (group, value) pairs (length of ``group_values``)."""
        return self._group_values.n_values

    @property
    def code_bit_width(self) -> int:
        """Bits per row for the group-local code."""
        return self._local_codes.bit_width

    @property
    def max_group_fanout(self) -> int:
        """Largest number of distinct dependent values within one group."""
        if self.n_groups == 0:
            return 0
        return int(np.diff(self._offsets).max())

    @property
    def n_values(self) -> int:
        return self._local_codes.n_values

    @property
    def metadata_size_bytes(self) -> int:
        """Size of the hierarchical metadata (group_values, offsets, heap)."""
        size = self._group_values.size_bytes + 4 * self._offsets.size
        if self._target_heap is not None:
            size += self._target_heap.size_bytes
        return size

    @property
    def size_bytes(self) -> int:
        return self._local_codes.size_bytes + self.metadata_size_bytes + _METADATA_BYTES

    def stats(self) -> HierarchicalStats:
        return HierarchicalStats(
            n_values=self.n_values,
            n_groups=self.n_groups,
            n_distinct_targets=self.n_distinct_targets,
            max_group_fanout=self.max_group_fanout,
            code_bit_width=self.code_bit_width,
            size_bytes=self.size_bytes,
        )

    # -- decoding ---------------------------------------------------------------

    def _reference_to_group(self, reference_values) -> np.ndarray:
        """Map decoded reference values back to their group index."""
        if self._ref_is_string:
            assert self._ref_lookup is not None
            try:
                return np.fromiter(
                    (self._ref_lookup[v] for v in reference_values),
                    dtype=np.int64,
                    count=len(reference_values),
                )
            except KeyError as exc:
                raise DecodingError(
                    f"reference value {exc.args[0]!r} was never seen at encode time"
                ) from None
        refs = np.asarray(reference_values, dtype=np.int64)
        assert self._ref_domain_ints is not None
        idx = np.searchsorted(self._ref_domain_ints, refs)
        idx = np.clip(idx, 0, self._ref_domain_ints.size - 1)
        if not np.all(self._ref_domain_ints[idx] == refs):
            raise DecodingError("reference value was never seen at encode time")
        return idx

    def gather_with_reference(self, positions: np.ndarray, reference_values: ReferenceValues):
        """Algorithm 1: ``group_values[offsets[group] + local_code]``."""
        self._check_reference_values(positions, reference_values)
        pos = np.asarray(positions, dtype=np.int64)
        groups = self._reference_to_group(reference_values[self.reference_name])
        local = self._local_codes.gather(pos)
        flat_index = self._offsets[groups] + local
        target_codes = self._group_values.gather(flat_index)
        if self._target_is_string:
            assert self._target_heap is not None
            return self._target_heap.lookup_many(target_codes)
        assert self._target_domain_ints is not None
        return self._target_domain_ints[target_codes]

    def gather_local_codes(self, positions: np.ndarray) -> np.ndarray:
        """Positional access to the raw group-local codes."""
        return self._local_codes.gather(np.asarray(positions, dtype=np.int64))


class HierarchicalEncoding:
    """Scheme object for hierarchical encoding (paper §2.2)."""

    name = "hierarchical"

    def encode(self, target, reference, reference_name: str) -> HierarchicalEncodedColumn:
        """Hierarchically encode ``target`` grouped by ``reference``."""
        column = HierarchicalEncodedColumn(target, reference, reference_name)
        column.encoding_name = self.name
        return column

    def estimate_size(self, target, reference) -> int:
        """Size estimate; hierarchical sizes have no cheap closed form, so encode."""
        return self.encode(target, reference, "__estimate__").size_bytes

    def __repr__(self) -> str:
        return "HierarchicalEncoding()"
