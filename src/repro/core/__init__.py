"""Corra core: horizontal, correlation-aware column encodings.

This package contains the paper's contribution:

* :mod:`~repro.core.diff_encoding` — non-hierarchical encoding (§2.1)
* :mod:`~repro.core.hierarchical` — hierarchical encoding (§2.2)
* :mod:`~repro.core.multi_reference` — multiple reference columns (§2.3)
* :mod:`~repro.core.outliers` — the outlier storage architecture (Fig. 4)
* :mod:`~repro.core.optimizer` — the optimal diff-encoding configuration
  search (Fig. 2)
* :mod:`~repro.core.correlation` — automatic correlation detection
  (future-work extension)
* :mod:`~repro.core.plan` — compression plans and the table compressor that
  ties horizontal and vertical encodings together
"""

from .base import HorizontalEncodedColumn
from .correlation import (
    CorrelationDetector,
    EncodingSuggestion,
    arithmetic_rule_coverage,
    bounded_difference_score,
    hierarchy_score,
)
from .diff_encoding import (
    DiffEncodedColumn,
    DiffEncodingStats,
    NonHierarchicalEncoding,
    estimate_diff_encoded_size,
)
from .hierarchical import HierarchicalEncodedColumn, HierarchicalEncoding, HierarchicalStats
from .multi_reference import (
    ArithmeticRule,
    MultiReferenceConfig,
    MultiReferenceEncodedColumn,
    MultiReferenceEncoding,
    ReferenceGroup,
    RuleStatistics,
)
from .optimizer import (
    CandidateGraph,
    DiffEncodingConfiguration,
    DiffEncodingOptimizer,
    optimal_configuration_exhaustive,
)
from .outliers import OutlierStore
from .plan import ColumnPlan, CompressionPlan, PlanBuilder, TableCompressor
from .rule_mining import (
    MinedRule,
    RuleMiningResult,
    discover_groups,
    mine_multi_reference_config,
    mine_rules,
)

__all__ = [
    "HorizontalEncodedColumn",
    "DiffEncodedColumn",
    "DiffEncodingStats",
    "NonHierarchicalEncoding",
    "estimate_diff_encoded_size",
    "HierarchicalEncodedColumn",
    "HierarchicalEncoding",
    "HierarchicalStats",
    "MultiReferenceEncodedColumn",
    "MultiReferenceEncoding",
    "MultiReferenceConfig",
    "ReferenceGroup",
    "ArithmeticRule",
    "RuleStatistics",
    "OutlierStore",
    "CandidateGraph",
    "DiffEncodingConfiguration",
    "DiffEncodingOptimizer",
    "optimal_configuration_exhaustive",
    "CorrelationDetector",
    "EncodingSuggestion",
    "bounded_difference_score",
    "hierarchy_score",
    "arithmetic_rule_coverage",
    "ColumnPlan",
    "CompressionPlan",
    "PlanBuilder",
    "TableCompressor",
    "MinedRule",
    "RuleMiningResult",
    "discover_groups",
    "mine_rules",
    "mine_multi_reference_config",
]
