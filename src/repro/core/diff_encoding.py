"""Non-hierarchical (single-reference) diff-encoding — paper §2.1.

The target column is stored as the element-wise difference to a reference
column, e.g. TPC-H's ``l_commitdate − l_shipdate``.  Because the difference
between correlated columns spans a much smaller range than the raw values,
the packed bit width — and therefore the compressed size — drops.

Differences are stored the way the paper's Fig. 2 edge weights imply:

* if every difference is non-negative, the raw differences are bit-packed at
  ``ceil(log2(max + 1))`` bits (``l_receiptdate − l_shipdate`` ∈ [1, 30] →
  5 bits → 37.5 MB at SF 10);
* if negative differences occur, they are zig-zag mapped to the unsigned
  domain first, which costs one extra sign bit (``l_shipdate −
  l_receiptdate`` ∈ [−30, −1] → 6 bits → 45 MB — the asymmetry visible in
  Fig. 2).

An optional *frame* mode (subtract the minimum difference first, i.e. FOR
over the differences) is provided as an ablation; it is what C3's DFOR does
and what :mod:`repro.baselines.c3` uses.

Rows whose difference is far outside the typical range can be diverted to
the outlier region (§2.1's "outlier storage architecture"); in the datasets
the paper evaluates, the single-reference case needs no outliers, and neither
do the synthetic equivalents here unless injected deliberately.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bitpack import BitPackedArray, required_bits
from ..encodings.base import ensure_int_array
from ..encodings.delta import zigzag_decode, zigzag_encode
from ..errors import EncodingError
from .base import HorizontalEncodedColumn, ReferenceValues
from .outliers import OutlierStore

__all__ = [
    "DiffEncodedColumn",
    "NonHierarchicalEncoding",
    "DiffEncodingStats",
    "estimate_diff_encoded_size",
]

#: Fixed per-column metadata: frame (8), bit width (1), flags and counts (7).
_METADATA_BYTES = 16


@dataclass(frozen=True)
class DiffEncodingStats:
    """Summary statistics of a diff-encoding, useful for reports and tests."""

    n_values: int
    bit_width: int
    min_difference: int
    max_difference: int
    n_outliers: int
    size_bytes: int

    @property
    def outlier_fraction(self) -> float:
        return self.n_outliers / self.n_values if self.n_values else 0.0


def _diff_bit_width(diffs: np.ndarray, use_frame: bool) -> tuple[int, int, bool]:
    """Return ``(bit_width, frame, use_zigzag)`` for a difference array."""
    if diffs.size == 0:
        return 0, 0, False
    lo, hi = int(diffs.min()), int(diffs.max())
    if use_frame:
        return required_bits(hi - lo), lo, False
    if lo >= 0:
        return required_bits(hi), 0, False
    zig_max = int(zigzag_encode(np.array([lo, hi], dtype=np.int64)).max())
    return required_bits(zig_max), 0, True


class DiffEncodedColumn(HorizontalEncodedColumn):
    """Target column stored as bit-packed (target − reference) differences."""

    encoding_name = "non_hierarchical"

    def __init__(
        self,
        target: np.ndarray,
        reference: np.ndarray,
        reference_name: str,
        outlier_bit_budget: int | None = None,
        use_frame: bool = False,
    ):
        """Diff-encode ``target`` against ``reference``.

        Parameters
        ----------
        target, reference:
            Integer value arrays of equal length.
        reference_name:
            Name of the reference column (recorded so blocks know what to fetch).
        outlier_bit_budget:
            If given, differences needing more than this many bits are stored
            as outliers instead of widening the packed stream.  ``None``
            disables outlier handling, matching the paper's single-reference
            evaluation.
        use_frame:
            Subtract the minimum difference before packing (FOR over the
            differences, as in C3's DFOR).  Off by default to match the
            paper's layout.
        """
        tgt = ensure_int_array(target)
        ref = ensure_int_array(reference)
        if tgt.shape != ref.shape:
            raise EncodingError(
                f"target and reference must have equal length, got "
                f"{tgt.size} vs {ref.size}"
            )
        self.reference_names = (reference_name,)
        self._use_frame = bool(use_frame)
        diffs = tgt - ref

        if outlier_bit_budget is not None and diffs.size:
            inlier_mask = self._select_inliers(diffs, outlier_bit_budget)
        else:
            inlier_mask = np.ones(diffs.size, dtype=bool)

        self._outliers = OutlierStore.from_mask(~inlier_mask, tgt)
        inlier_diffs = diffs[inlier_mask]
        width, frame, use_zigzag = _diff_bit_width(inlier_diffs, self._use_frame)
        self._frame = frame
        self._use_zigzag = use_zigzag

        stored = np.zeros(diffs.size, dtype=np.int64)
        if inlier_diffs.size:
            if use_zigzag:
                stored[inlier_mask] = zigzag_encode(inlier_diffs)
            else:
                stored[inlier_mask] = inlier_diffs - frame
        self._packed = BitPackedArray.from_values(stored, width)

    @staticmethod
    def _select_inliers(diffs: np.ndarray, bit_budget: int) -> np.ndarray:
        """Keep the densest window of differences that fits ``bit_budget`` bits.

        The window is anchored at the most common end of the distribution:
        we try the window starting at the minimum difference and the window
        ending at the maximum difference and keep whichever covers more rows.
        """
        if bit_budget < 0:
            raise EncodingError("outlier bit budget must be non-negative")
        span = (1 << bit_budget) - 1 if bit_budget > 0 else 0
        lo, hi = int(diffs.min()), int(diffs.max())
        if hi - lo <= span:
            return np.ones(diffs.size, dtype=bool)
        from_low = (diffs >= lo) & (diffs <= lo + span)
        from_high = (diffs >= hi - span) & (diffs <= hi)
        return from_low if from_low.sum() >= from_high.sum() else from_high

    # -- properties ------------------------------------------------------------

    @property
    def reference_name(self) -> str:
        return self.reference_names[0]

    @property
    def frame(self) -> int:
        """The frame subtracted from the differences (0 unless ``use_frame``)."""
        return self._frame

    @property
    def uses_zigzag(self) -> bool:
        """Whether differences are stored zig-zag mapped (negatives present)."""
        return self._use_zigzag

    @property
    def uses_frame(self) -> bool:
        return self._use_frame

    @property
    def bit_width(self) -> int:
        return self._packed.bit_width

    @property
    def outliers(self) -> OutlierStore:
        return self._outliers

    @property
    def n_values(self) -> int:
        return self._packed.n_values

    @property
    def size_bytes(self) -> int:
        size = self._packed.size_bytes + _METADATA_BYTES
        if self._outliers:
            size += self._outliers.size_bytes
        return size

    def stats(self) -> DiffEncodingStats:
        """Summary of the encoding (bit width, range, outliers, size)."""
        diffs = self._decode_differences(np.arange(self.n_values, dtype=np.int64))
        return DiffEncodingStats(
            n_values=self.n_values,
            bit_width=self.bit_width,
            min_difference=int(diffs.min()) if self.n_values else 0,
            max_difference=int(diffs.max()) if self.n_values else 0,
            n_outliers=self._outliers.n_outliers,
            size_bytes=self.size_bytes,
        )

    # -- decoding ---------------------------------------------------------------

    def _decode_differences(self, positions: np.ndarray) -> np.ndarray:
        stored = self._packed.gather(positions)
        if self._use_zigzag:
            return zigzag_decode(stored)
        return stored + self._frame

    def gather_with_reference(
        self, positions: np.ndarray, reference_values: ReferenceValues
    ) -> np.ndarray:
        """Reconstruct target values: reference + stored difference.

        This is the "direct addition" reconstruction the paper credits for
        non-hierarchical encoding's low overhead when both columns are
        queried anyway.
        """
        self._check_reference_values(positions, reference_values)
        pos = np.asarray(positions, dtype=np.int64)
        ref = np.asarray(reference_values[self.reference_name], dtype=np.int64)
        reconstructed = ref + self._decode_differences(pos)
        if self._outliers:
            reconstructed = self._outliers.apply(pos, reconstructed)
        return reconstructed

    def gather_differences(self, positions: np.ndarray) -> np.ndarray:
        """Positional access to the raw differences (without the reference)."""
        return self._decode_differences(np.asarray(positions, dtype=np.int64))

    def sum_differences(self) -> int:
        """Exact sum of every stored difference (zig-zag/frame resolved).

        Only the packed difference stream is touched — neither the reference
        nor the target values are reconstructed — which is what lets the
        compressor record ``sum(target) = sum(reference) + sum(differences)``
        as an exact zone-map statistic.  Outlier rows contribute their stored
        (placeholder) difference here; the caller corrects for them.
        """
        if self.n_values == 0:
            return 0
        diffs = self._decode_differences(np.arange(self.n_values, dtype=np.int64))
        return int(diffs.sum(dtype=np.int64))


class NonHierarchicalEncoding:
    """Scheme object for the non-hierarchical encoding (paper §2.1).

    Unlike vertical schemes, ``encode`` takes the reference values as well.
    """

    name = "non_hierarchical"

    def __init__(self, outlier_bit_budget: int | None = None, use_frame: bool = False):
        self.outlier_bit_budget = outlier_bit_budget
        self.use_frame = use_frame

    def encode(self, target, reference, reference_name: str) -> DiffEncodedColumn:
        """Diff-encode ``target`` w.r.t. ``reference``."""
        column = DiffEncodedColumn(
            target, reference, reference_name,
            outlier_bit_budget=self.outlier_bit_budget,
            use_frame=self.use_frame,
        )
        column.encoding_name = self.name
        return column

    def estimate_size(self, target, reference) -> int:
        """Closed-form size estimate (used by the configuration optimizer)."""
        return estimate_diff_encoded_size(target, reference, use_frame=self.use_frame)

    def __repr__(self) -> str:
        return (
            f"NonHierarchicalEncoding(outlier_bit_budget={self.outlier_bit_budget!r}, "
            f"use_frame={self.use_frame!r})"
        )


def estimate_diff_encoded_size(target, reference, use_frame: bool = False) -> int:
    """Size in bytes of diff-encoding ``target`` w.r.t. ``reference``.

    This is the edge weight of the optimizer's candidate graph (Fig. 2): the
    byte size of the bit-packed differences plus fixed metadata, without
    materialising the packed buffer.
    """
    tgt = ensure_int_array(target)
    ref = ensure_int_array(reference)
    if tgt.shape != ref.shape:
        raise EncodingError("target and reference must have equal length")
    if tgt.size == 0:
        return _METADATA_BYTES
    diffs = tgt - ref
    width, _, _ = _diff_bit_width(diffs, use_frame)
    return (tgt.size * width + 7) // 8 + _METADATA_BYTES
