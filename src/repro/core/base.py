"""Interfaces for horizontal (correlation-aware) encodings.

A horizontal encoding stores a *diff-encoded* (target) column in terms of one
or more *reference* columns (§2 of the paper).  Decoding therefore needs the
reference values for the requested rows, which the storage layer provides —
see :meth:`repro.storage.block.CompressedBlock.gather_column`, which
implements Algorithm 1's "fetch the reference, then resolve the target".

:class:`HorizontalEncodedColumn` extends the vertical
:class:`~repro.encodings.base.EncodedColumn` interface with
``gather_with_reference``/``decode_with_reference``; calling the plain
``gather``/``decode`` raises, because the information simply is not there.
"""

from __future__ import annotations

import abc
from typing import Mapping

import numpy as np

from ..encodings.base import EncodedColumn
from ..errors import DecodingError

__all__ = ["HorizontalEncodedColumn", "ReferenceValues"]

#: Decoded reference values keyed by reference column name.
ReferenceValues = Mapping[str, "np.ndarray | Sequence[str]"]


class HorizontalEncodedColumn(EncodedColumn):
    """An encoded column whose decoding requires reference column values."""

    #: Names of the reference columns, in the order the encoding expects them.
    reference_names: tuple[str, ...] = ()

    @abc.abstractmethod
    def gather_with_reference(self, positions: np.ndarray, reference_values: ReferenceValues):
        """Decode the values at ``positions`` given the reference values there.

        ``reference_values`` maps each name in :attr:`reference_names` to the
        decoded reference values *at the same positions* (i.e. arrays of the
        same length as ``positions``).
        """

    def decode_with_reference(self, reference_values: ReferenceValues):
        """Decode the whole column given full decoded reference columns."""
        return self.gather_with_reference(
            np.arange(self.n_values, dtype=np.int64), reference_values
        )

    # A horizontal column cannot decode itself in isolation.

    def decode(self):
        raise DecodingError(
            f"column encoded with {self.encoding_name!r} needs its reference "
            f"column(s) {list(self.reference_names)} to decode; use "
            "decode_with_reference() or access it through a CompressedBlock"
        )

    def gather(self, positions: np.ndarray):
        raise DecodingError(
            f"column encoded with {self.encoding_name!r} needs its reference "
            f"column(s) {list(self.reference_names)} to decode; use "
            "gather_with_reference() or access it through a CompressedBlock"
        )

    def _check_reference_values(
        self, positions: np.ndarray, reference_values: ReferenceValues
    ) -> None:
        """Validate that the caller supplied every reference at the right length."""
        n = int(np.asarray(positions).size)
        for name in self.reference_names:
            if name not in reference_values:
                raise DecodingError(
                    f"missing reference column {name!r}; required references: "
                    f"{list(self.reference_names)}"
                )
            if len(reference_values[name]) != n:
                raise DecodingError(
                    f"reference column {name!r} has {len(reference_values[name])} "
                    f"values but {n} positions were requested"
                )
