"""Automatic mining of multi-reference arithmetic rules (future-work extension).

The paper's multi-reference encoding (§2.3) needs a hand-written
configuration: which reference columns form groups A/B/C and which group
combinations are valid reconstruction rules.  Its conclusion explicitly lists
"automatic correlation detection, especially for our non-hierarchical
encoding scheme with multiple reference columns" as future work.  This module
implements that step:

1. **Group discovery** (:func:`discover_groups`): find the *base group* — the
   largest set of candidate columns whose sum explains a large share of the
   target rows — and treat every remaining candidate column as its own
   optional group, mirroring the paper's A (base) / B / C (optional
   surcharges) structure.
2. **Rule mining** (:func:`mine_rules`): enumerate combinations of the base
   group with subsets of the optional groups, measure each combination's
   exact-match coverage, and greedily keep the combinations that explain the
   most yet-unexplained rows until either the code budget (2 bits → four
   rules) is exhausted or the remaining rows are below the outlier budget.
3. :func:`mine_multi_reference_config` packages the result as a
   :class:`~repro.core.multi_reference.MultiReferenceConfig` that can be fed
   straight into a compression plan.

On the synthetic Taxi data the miner recovers exactly the paper's Table 1
configuration (groups A/B/C and the four rules) without being told anything
beyond "these are the candidate reference columns".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..encodings.base import ensure_int_array
from ..errors import ValidationError
from ..storage.table import Table
from .multi_reference import ArithmeticRule, MultiReferenceConfig, ReferenceGroup

__all__ = [
    "MinedRule",
    "RuleMiningResult",
    "discover_groups",
    "mine_rules",
    "mine_multi_reference_config",
]

#: Default maximum number of rules (2-bit codes, as in the paper).
DEFAULT_MAX_RULES = 4

#: Default fraction of rows that may remain unexplained (outliers).
DEFAULT_OUTLIER_BUDGET = 0.01

#: Minimum coverage improvement required to move a column out of the base
#: group and into its own optional group.
_MIN_COVERAGE_GAIN = 0.001


@dataclass(frozen=True)
class MinedRule:
    """One mined reconstruction rule and its coverage statistics."""

    groups: tuple[str, ...]
    coverage: float
    marginal_coverage: float

    @property
    def label(self) -> str:
        return " + ".join(self.groups)


@dataclass
class RuleMiningResult:
    """Outcome of rule mining: groups, chosen rules, residual outlier rate."""

    groups: dict[str, tuple[str, ...]]
    rules: list[MinedRule]
    outlier_fraction: float
    n_rows: int

    @property
    def explained_fraction(self) -> float:
        return 1.0 - self.outlier_fraction

    def to_config(self) -> MultiReferenceConfig:
        """Convert into a config usable by :class:`MultiReferenceEncoding`."""
        reference_groups = tuple(
            ReferenceGroup(name, columns) for name, columns in self.groups.items()
        )
        rules = tuple(ArithmeticRule(rule.groups) for rule in self.rules)
        return MultiReferenceConfig(groups=reference_groups, rules=rules)

    def describe(self) -> str:
        lines = []
        for name, columns in self.groups.items():
            lines.append(f"group {name}: {', '.join(columns)}")
        for rule in self.rules:
            lines.append(
                f"rule {rule.label}: covers {rule.coverage:.2%} "
                f"(+{rule.marginal_coverage:.2%} new rows)"
            )
        lines.append(f"outliers: {self.outlier_fraction:.2%} of {self.n_rows} rows")
        return "\n".join(lines)


def _as_int_columns(columns: Mapping[str, Sequence]) -> dict[str, np.ndarray]:
    return {name: ensure_int_array(values) for name, values in columns.items()}


def discover_groups(target: np.ndarray, candidates: Mapping[str, np.ndarray],
                    min_gain: float = _MIN_COVERAGE_GAIN) -> dict[str, tuple[str, ...]]:
    """Partition candidate reference columns into a base group and optional groups.

    The base group starts as *all* candidate columns.  In every round the
    column whose removal (into its own optional group) raises the achievable
    exact-match coverage the most is moved out, as long as the improvement
    exceeds ``min_gain``; columns whose removal does not help stay in the base
    group.  "Achievable coverage" is the share of rows explained by the base
    sum combined with any subset of at most two optional columns — the rule
    arity the paper uses (A, A+B, A+C, A+B+C).  On the Taxi data this recovers
    the paper's A/B/C split without supervision.
    """
    tgt = ensure_int_array(target)
    columns = _as_int_columns(candidates)
    if not columns:
        raise ValidationError("rule mining needs at least one candidate column")
    for name, values in columns.items():
        if values.shape != tgt.shape:
            raise ValidationError(
                f"candidate column {name!r} length does not match the target"
            )

    names = list(columns)

    def score(base: Sequence[str]) -> tuple[float, float]:
        """Score a base group: (exact coverage, median |target − base sum|).

        Coverage is the share of rows explained by the base sum plus any
        subset of at most two non-base columns (the paper's rule arity).  The
        residual statistic breaks ties while coverage is still zero — it
        steers the search away from columns (timestamps, counters) whose
        magnitude alone rules them out of the arithmetic.
        """
        base_sum = np.zeros_like(tgt)
        for name in base:
            base_sum = base_sum + columns[name]
        optional = [name for name in names if name not in base]
        covered = np.zeros(tgt.size, dtype=bool)
        subsets: list[tuple[str, ...]] = [()]
        subsets += [(name,) for name in optional]
        subsets += list(itertools.combinations(optional, 2))
        for subset in subsets:
            prediction = base_sum.copy()
            for name in subset:
                prediction = prediction + columns[name]
            covered |= prediction == tgt
        coverage = float(covered.mean()) if tgt.size else 0.0
        residual = float(np.median(np.abs(tgt - base_sum))) if tgt.size else 0.0
        return coverage, residual

    base = list(names)
    current_coverage, current_residual = score(base)
    while len(base) > 1:
        scores = {
            name: score([n for n in base if n != name]) for name in base
        }
        best_name = max(scores, key=lambda name: (scores[name][0], -scores[name][1]))
        best_coverage, best_residual = scores[best_name]
        improves_coverage = best_coverage > current_coverage + min_gain
        improves_residual = (
            best_coverage >= current_coverage - min_gain
            and best_residual < current_residual - 1e-9
        )
        if not improves_coverage and not improves_residual:
            break
        base = [n for n in base if n != best_name]
        current_coverage, current_residual = best_coverage, best_residual

    groups: dict[str, tuple[str, ...]] = {"A": tuple(base)}
    letter = ord("B")
    for name in names:
        if name not in base:
            groups[chr(letter)] = (name,)
            letter += 1
    return groups


def mine_rules(
    target: np.ndarray,
    candidates: Mapping[str, np.ndarray],
    groups: Mapping[str, tuple[str, ...]] | None = None,
    max_rules: int = DEFAULT_MAX_RULES,
    outlier_budget: float = DEFAULT_OUTLIER_BUDGET,
) -> RuleMiningResult:
    """Mine up to ``max_rules`` reconstruction rules for ``target``.

    Rules are combinations "base group (+ optional groups)" ranked by how many
    still-unexplained rows they match; mining stops when the code budget is
    used up, no candidate adds coverage, or the residue drops below
    ``outlier_budget``.
    """
    if max_rules < 1:
        raise ValidationError("max_rules must be at least 1")
    if not 0.0 <= outlier_budget < 1.0:
        raise ValidationError("outlier_budget must be in [0, 1)")

    tgt = ensure_int_array(target)
    columns = _as_int_columns(candidates)
    group_map = dict(groups) if groups is not None else discover_groups(tgt, columns)

    group_sums: dict[str, np.ndarray] = {}
    for name, members in group_map.items():
        total = np.zeros_like(tgt)
        for member in members:
            if member not in columns:
                raise ValidationError(f"group {name!r} references unknown column {member!r}")
            total = total + columns[member]
        group_sums[name] = total

    base_name = next(iter(group_map))
    optional = [name for name in group_map if name != base_name]

    # Candidate rules: base alone, base + each optional subset.
    candidate_rules: list[tuple[str, ...]] = [(base_name,)]
    for size in range(1, len(optional) + 1):
        for subset in itertools.combinations(optional, size):
            candidate_rules.append((base_name,) + subset)

    predictions = {}
    for rule in candidate_rules:
        prediction = np.zeros_like(tgt)
        for name in rule:
            prediction = prediction + group_sums[name]
        predictions[rule] = prediction == tgt

    unexplained = np.ones(tgt.size, dtype=bool)
    mined: list[MinedRule] = []
    while len(mined) < max_rules and unexplained.size:
        best_rule = None
        best_gain = 0
        for rule, matches in predictions.items():
            if any(rule == m.groups for m in mined):
                continue
            gain = int((matches & unexplained).sum())
            if gain > best_gain:
                best_gain = gain
                best_rule = rule
        if best_rule is None or best_gain == 0:
            break
        coverage = float(predictions[best_rule].mean()) if tgt.size else 0.0
        marginal = best_gain / tgt.size if tgt.size else 0.0
        mined.append(
            MinedRule(groups=best_rule, coverage=coverage, marginal_coverage=marginal)
        )
        unexplained &= ~predictions[best_rule]
        if tgt.size and unexplained.mean() <= outlier_budget:
            break

    outlier_fraction = float(unexplained.mean()) if tgt.size else 0.0
    # Keep only the groups actually used by the mined rules (plus the base).
    used = {base_name}
    for rule in mined:
        used.update(rule.groups)
    pruned_groups = {name: group_map[name] for name in group_map if name in used}
    return RuleMiningResult(
        groups=pruned_groups,
        rules=mined,
        outlier_fraction=outlier_fraction,
        n_rows=int(tgt.size),
    )


def mine_multi_reference_config(table: Table, target: str,
                                candidates: Sequence[str] | None = None,
                                max_rules: int = DEFAULT_MAX_RULES,
                                outlier_budget: float = DEFAULT_OUTLIER_BUDGET
                                ) -> tuple[MultiReferenceConfig, RuleMiningResult]:
    """Mine a ready-to-use multi-reference config for ``target`` in ``table``.

    ``candidates`` defaults to every other integer-like column of the table.
    Returns both the config and the mining diagnostics.
    """
    if target not in table.schema:
        raise ValidationError(f"unknown target column {target!r}")
    if candidates is None:
        candidates = [
            spec.name
            for spec in table.schema
            if spec.dtype.is_integer_like and spec.name != target
        ]
    candidate_columns = {name: table.column(name) for name in candidates}
    result = mine_rules(
        table.column(target), candidate_columns,
        max_rules=max_rules, outlier_budget=outlier_budget,
    )
    if not result.rules:
        raise ValidationError(
            f"no arithmetic rule explains column {target!r} from {list(candidates)}"
        )
    return result.to_config(), result
