"""Outlier storage architecture (paper §2.1 and §2.3, Fig. 4).

Rows whose target value cannot be reconstructed from the reference columns
(non-hierarchical encoding with an unbounded difference, or a multi-reference
row following none of the arithmetic rules) are stored verbatim in a side
region as ``(row index, original value)`` pairs.

The decompression design described in the paper keeps the main code stream at
its narrow bit width: the outlier *positions* decide whether a row is an
outlier, so no sentinel code is needed ("we can still use only two bits to
indicate four types of arithmetic operations and outlier values").  This
module implements exactly that: :meth:`OutlierStore.apply` overrides the
values the arithmetic reconstruction produced at outlier positions.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError

__all__ = ["OutlierStore"]

#: Bytes per stored outlier: 4-byte block-local row index + 8-byte value.
_BYTES_PER_OUTLIER = 4 + 8

#: Fixed header: outlier count.
_HEADER_BYTES = 4


class OutlierStore:
    """Sorted ``(position, value)`` pairs for rows outside the encodable range."""

    def __init__(self, positions: np.ndarray, values: np.ndarray):
        pos = np.asarray(positions, dtype=np.int64)
        vals = np.asarray(values, dtype=np.int64)
        if pos.shape != vals.shape:
            raise ValidationError(
                f"outlier positions and values differ in shape: "
                f"{pos.shape} vs {vals.shape}"
            )
        if pos.size and pos.min() < 0:
            raise ValidationError("outlier positions must be non-negative")
        order = np.argsort(pos, kind="stable")
        self._positions = pos[order]
        self._values = vals[order]
        if self._positions.size and np.any(np.diff(self._positions) == 0):
            raise ValidationError("duplicate outlier positions")

    @classmethod
    def empty(cls) -> "OutlierStore":
        return cls(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))

    @classmethod
    def from_mask(cls, mask: np.ndarray, values: np.ndarray) -> "OutlierStore":
        """Build a store from a boolean row mask and the full value array."""
        mask = np.asarray(mask, dtype=bool)
        vals = np.asarray(values)
        if mask.shape != vals.shape:
            raise ValidationError("mask and values must have the same shape")
        positions = np.flatnonzero(mask)
        return cls(positions, vals[positions])

    # -- accessors ------------------------------------------------------------

    @property
    def positions(self) -> np.ndarray:
        return self._positions

    @property
    def values(self) -> np.ndarray:
        return self._values

    @property
    def n_outliers(self) -> int:
        return int(self._positions.size)

    def __len__(self) -> int:
        return self.n_outliers

    def __bool__(self) -> bool:
        return self.n_outliers > 0

    @property
    def size_bytes(self) -> int:
        """Bytes charged to the compressed column for this region."""
        return _HEADER_BYTES + self.n_outliers * _BYTES_PER_OUTLIER

    def fraction_of(self, n_rows: int) -> float:
        """Outlier fraction relative to a row count (0.0032 in Table 1)."""
        if n_rows <= 0:
            raise ValidationError("n_rows must be positive")
        return self.n_outliers / n_rows

    # -- decoding support ------------------------------------------------------

    def membership(self, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """For each requested position, whether it is an outlier and its value.

        Returns ``(is_outlier, outlier_values)`` where ``outlier_values`` is
        only meaningful where ``is_outlier`` is true.
        """
        pos = np.asarray(positions, dtype=np.int64)
        if self.n_outliers == 0 or pos.size == 0:
            return np.zeros(pos.size, dtype=bool), np.zeros(pos.size, dtype=np.int64)
        idx = np.searchsorted(self._positions, pos)
        idx = np.clip(idx, 0, self.n_outliers - 1)
        is_outlier = self._positions[idx] == pos
        values = np.where(is_outlier, self._values[idx], 0)
        return is_outlier, values

    def apply(self, positions: np.ndarray, reconstructed: np.ndarray) -> np.ndarray:
        """Override ``reconstructed`` with stored values at outlier positions."""
        out = np.asarray(reconstructed, dtype=np.int64).copy()
        is_outlier, values = self.membership(positions)
        out[is_outlier] = values[is_outlier]
        return out
