"""Optimal diff-encoding configuration (paper Fig. 2).

Given a set of mutually correlated columns, which ones should be diff-encoded
and against which reference?  The paper builds a directed graph whose vertices
are the columns and whose edge ``a -> b`` carries the size column ``a`` would
have if diff-encoded w.r.t. reference ``b``; vertex weights are the best
single-column (vertical) sizes.  A cost-based greedy strategy then picks
reference assignments.

Constraints (matching the paper):

* a reference column is always stored vertically — chains where a diff-encoded
  column is itself a reference are explicitly left to future work;
* each diff-encoded column uses exactly one reference;
* an assignment is only made if it actually saves bytes over the vertical
  encoding of that column.

For validation, :func:`optimal_configuration_exhaustive` enumerates every
valid assignment (feasible for the handfuls of columns this is used on) so
tests can confirm the greedy result is optimal on the paper's workloads.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Sequence

from ..encodings.selector import BestOfSelector
from ..errors import ConfigurationError
from ..storage.table import Table
from .diff_encoding import estimate_diff_encoded_size

__all__ = [
    "CandidateGraph",
    "DiffEncodingConfiguration",
    "DiffEncodingOptimizer",
    "optimal_configuration_exhaustive",
]


@dataclass(frozen=True)
class CandidateGraph:
    """The cost graph of Fig. 2: vertex weights and directed edge weights."""

    columns: tuple[str, ...]
    vertical_sizes: dict[str, int]
    edge_sizes: dict[tuple[str, str], int]

    def edge(self, diff_column: str, reference: str) -> int:
        """Size of ``diff_column`` when diff-encoded w.r.t. ``reference``."""
        try:
            return self.edge_sizes[(diff_column, reference)]
        except KeyError:
            raise ConfigurationError(
                f"no candidate edge {diff_column!r} -> {reference!r}"
            ) from None

    def saving(self, diff_column: str, reference: str) -> int:
        """Bytes saved by the edge compared to vertical encoding (may be <= 0)."""
        return self.vertical_sizes[diff_column] - self.edge(diff_column, reference)

    def as_rows(self) -> list[tuple[str, str, int, int]]:
        """(diff column, reference, size, saving) rows for reporting."""
        rows = []
        for (a, b), size in sorted(self.edge_sizes.items()):
            rows.append((a, b, size, self.vertical_sizes[a] - size))
        return rows


@dataclass
class DiffEncodingConfiguration:
    """The chosen assignment: which columns are diff-encoded against what."""

    assignments: dict[str, str] = field(default_factory=dict)
    vertical_sizes: dict[str, int] = field(default_factory=dict)
    diff_sizes: dict[str, int] = field(default_factory=dict)

    @property
    def reference_columns(self) -> tuple[str, ...]:
        """Columns used as a reference by at least one assignment."""
        seen: list[str] = []
        for ref in self.assignments.values():
            if ref not in seen:
                seen.append(ref)
        return tuple(seen)

    @property
    def diff_encoded_columns(self) -> tuple[str, ...]:
        return tuple(self.assignments)

    def column_size(self, name: str) -> int:
        """Configured size of one column (diff-encoded or vertical)."""
        if name in self.assignments:
            return self.diff_sizes[name]
        return self.vertical_sizes[name]

    @property
    def total_size(self) -> int:
        """Total size of all columns under this configuration."""
        return sum(self.column_size(name) for name in self.vertical_sizes)

    @property
    def baseline_size(self) -> int:
        """Total size if every column stayed vertically encoded."""
        return sum(self.vertical_sizes.values())

    @property
    def total_saving(self) -> int:
        """Bytes saved over the all-vertical baseline (82.5 MB in the paper)."""
        return self.baseline_size - self.total_size

    def describe(self) -> str:
        """Multi-line human-readable description (used by examples)."""
        lines = []
        for name in self.vertical_sizes:
            if name in self.assignments:
                lines.append(
                    f"{name}: diff-encoded w.r.t. {self.assignments[name]} "
                    f"({self.diff_sizes[name]} bytes, was {self.vertical_sizes[name]})"
                )
            else:
                lines.append(f"{name}: vertical ({self.vertical_sizes[name]} bytes)")
        lines.append(f"total saving: {self.total_saving} bytes")
        return "\n".join(lines)


class DiffEncodingOptimizer:
    """Cost-based greedy selection of the diff-encoding configuration."""

    def __init__(self, selector: BestOfSelector | None = None):
        self._selector = selector if selector is not None else BestOfSelector()

    # -- graph construction ------------------------------------------------------

    def build_graph(self, table: Table, columns: Sequence[str] | None = None) -> CandidateGraph:
        """Measure every vertex and directed edge of the candidate graph.

        ``columns`` restricts the graph to a subset (default: every
        integer-like column of the table).  String columns cannot be
        diff-encoded non-hierarchically and are skipped.
        """
        if columns is None:
            columns = [
                spec.name for spec in table.schema if spec.dtype.is_integer_like
            ]
        columns = list(columns)
        for name in columns:
            if not table.dtype(name).is_integer_like:
                raise ConfigurationError(
                    f"column {name!r} is not integer-like and cannot enter the "
                    "non-hierarchical candidate graph"
                )
        vertical_sizes = {
            name: self._selector.best_size(table.column(name), table.dtype(name))
            for name in columns
        }
        edge_sizes: dict[tuple[str, str], int] = {}
        for a, b in itertools.permutations(columns, 2):
            edge_sizes[(a, b)] = estimate_diff_encoded_size(
                table.column(a), table.column(b)
            )
        return CandidateGraph(
            columns=tuple(columns),
            vertical_sizes=vertical_sizes,
            edge_sizes=edge_sizes,
        )

    # -- greedy selection --------------------------------------------------------

    def optimize_graph(self, graph: CandidateGraph) -> DiffEncodingConfiguration:
        """Greedy assignment on an already-built candidate graph.

        Repeatedly take the edge with the largest positive saving whose
        diff-column is still unassigned and not already used as a reference,
        and whose reference is not itself diff-encoded.
        """
        config = DiffEncodingConfiguration(
            assignments={},
            vertical_sizes=dict(graph.vertical_sizes),
            diff_sizes={},
        )
        candidates = sorted(
            graph.edge_sizes,
            key=lambda edge: graph.saving(*edge),
            reverse=True,
        )
        used_as_reference: set[str] = set()
        for diff_column, reference in candidates:
            if graph.saving(diff_column, reference) <= 0:
                break
            if diff_column in config.assignments:
                continue
            if diff_column in used_as_reference:
                continue
            if reference in config.assignments:
                continue
            config.assignments[diff_column] = reference
            config.diff_sizes[diff_column] = graph.edge(diff_column, reference)
            used_as_reference.add(reference)
        return config

    def optimize(
        self, table: Table, columns: Sequence[str] | None = None
    ) -> tuple[CandidateGraph, DiffEncodingConfiguration]:
        """Build the graph for ``table`` and run the greedy selection."""
        graph = self.build_graph(table, columns)
        return graph, self.optimize_graph(graph)


def optimal_configuration_exhaustive(graph: CandidateGraph) -> DiffEncodingConfiguration:
    """Enumerate every valid configuration and return the smallest one.

    Exponential in the number of columns; intended for validating the greedy
    strategy on the handful-of-columns cases the paper considers.
    """
    columns = graph.columns
    if len(columns) > 10:
        raise ConfigurationError(
            "exhaustive search is only supported for up to 10 columns"
        )

    best: DiffEncodingConfiguration | None = None
    # Each column independently chooses: stay vertical, or pick a reference.
    choice_sets = [
        [None] + [ref for ref in columns if ref != col] for col in columns
    ]
    for assignment in itertools.product(*choice_sets):
        mapping = {
            col: ref for col, ref in zip(columns, assignment) if ref is not None
        }
        # Validity: a reference column must itself stay vertical.
        if any(ref in mapping for ref in mapping.values()):
            continue
        config = DiffEncodingConfiguration(
            assignments=mapping,
            vertical_sizes=dict(graph.vertical_sizes),
            diff_sizes={col: graph.edge(col, ref) for col, ref in mapping.items()},
        )
        if best is None or config.total_size < best.total_size:
            best = config
    assert best is not None
    return best
