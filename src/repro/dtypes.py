"""Logical column types used by the storage layer.

The paper's prototype distinguishes integer-like columns (dates are stored as
day numbers, timestamps as epoch seconds, monetary values as fixed-point
cents) from string columns.  We mirror that with a small logical type system:
every :class:`DataType` knows its uncompressed width in bytes, whether it is
integer-valued, and how to convert between the user-facing representation and
the physical ``numpy`` representation used by the encodings.

The types are deliberately simple.  The compression kernels only ever see
``int64`` arrays (for integer-like types) or Python string sequences (for
:data:`STRING`); the logical type records how to interpret them.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .errors import ValidationError

__all__ = [
    "DataType",
    "TypeKind",
    "INT32",
    "INT64",
    "DATE",
    "TIMESTAMP",
    "DECIMAL",
    "STRING",
    "BOOLEAN",
    "type_from_name",
    "date_to_days",
    "days_to_date",
    "decimal_to_cents",
    "cents_to_decimal",
]

#: Unix epoch used as day zero for :data:`DATE` columns.
EPOCH_DATE = _dt.date(1970, 1, 1)


class TypeKind:
    """Enumeration of the logical kinds a :class:`DataType` can have."""

    INTEGER = "integer"
    DATE = "date"
    TIMESTAMP = "timestamp"
    DECIMAL = "decimal"
    STRING = "string"
    BOOLEAN = "boolean"


@dataclass(frozen=True)
class DataType:
    """A logical column type.

    Parameters
    ----------
    name:
        Human-readable name, also used in serialised schemas.
    kind:
        One of the :class:`TypeKind` constants.
    byte_width:
        Width of one uncompressed value in bytes.  For strings this is the
        width of an offset/pointer (8 bytes); the character payload is
        accounted for separately by the encodings.
    numpy_dtype:
        The physical ``numpy`` dtype used to hold values of this type.
    """

    name: str
    kind: str
    byte_width: int
    numpy_dtype: str = "int64"

    @property
    def is_integer_like(self) -> bool:
        """Whether values are physically stored as integers."""
        return self.kind in (
            TypeKind.INTEGER,
            TypeKind.DATE,
            TypeKind.TIMESTAMP,
            TypeKind.DECIMAL,
            TypeKind.BOOLEAN,
        )

    @property
    def is_string(self) -> bool:
        """Whether values are variable-length strings."""
        return self.kind == TypeKind.STRING

    def uncompressed_size(self, n_values: int) -> int:
        """Size in bytes of ``n_values`` uncompressed values of this type."""
        if n_values < 0:
            raise ValidationError("n_values must be non-negative")
        return n_values * self.byte_width

    def validate_array(self, values: np.ndarray | Sequence) -> None:
        """Raise :class:`ValidationError` if ``values`` does not fit the type."""
        if self.is_string:
            if isinstance(values, np.ndarray) and values.dtype.kind in "iuf":
                raise ValidationError(
                    f"column of type {self.name} expects strings, got numeric array"
                )
            return
        arr = np.asarray(values)
        if arr.dtype.kind not in "iu":
            raise ValidationError(
                f"column of type {self.name} expects integer values, "
                f"got dtype {arr.dtype}"
            )

    def __str__(self) -> str:
        return self.name


#: 32-bit integer column (stored physically as int64 for simplicity).
INT32 = DataType("int32", TypeKind.INTEGER, 4)
#: 64-bit integer column.
INT64 = DataType("int64", TypeKind.INTEGER, 8)
#: Calendar date stored as days since the Unix epoch (4 bytes uncompressed).
DATE = DataType("date", TypeKind.DATE, 4)
#: Timestamp stored as seconds since the Unix epoch (8 bytes uncompressed).
TIMESTAMP = DataType("timestamp", TypeKind.TIMESTAMP, 8)
#: Fixed-point decimal stored as integer cents (8 bytes uncompressed).
DECIMAL = DataType("decimal", TypeKind.DECIMAL, 8)
#: Variable-length string; 8 bytes per value for the offset plus payload.
STRING = DataType("string", TypeKind.STRING, 8, numpy_dtype="object")
#: Boolean column (1 byte uncompressed).
BOOLEAN = DataType("boolean", TypeKind.BOOLEAN, 1)

_TYPES_BY_NAME = {
    t.name: t for t in (INT32, INT64, DATE, TIMESTAMP, DECIMAL, STRING, BOOLEAN)
}


def type_from_name(name: str) -> DataType:
    """Look up a :class:`DataType` by its :attr:`DataType.name`."""
    try:
        return _TYPES_BY_NAME[name]
    except KeyError:
        raise ValidationError(
            f"unknown data type {name!r}; known types: {sorted(_TYPES_BY_NAME)}"
        ) from None


def date_to_days(dates: Iterable[_dt.date]) -> np.ndarray:
    """Convert an iterable of :class:`datetime.date` to epoch-day integers."""
    return np.array([(d - EPOCH_DATE).days for d in dates], dtype=np.int64)


def days_to_date(days: np.ndarray | Iterable[int]) -> list[_dt.date]:
    """Convert epoch-day integers back to :class:`datetime.date` objects."""
    return [EPOCH_DATE + _dt.timedelta(days=int(d)) for d in np.asarray(days)]


def decimal_to_cents(values: Iterable[float], scale: int = 2) -> np.ndarray:
    """Convert floating-point monetary values to fixed-point integers.

    ``scale`` is the number of decimal digits kept (2 for cents).  Rounding is
    half-away-from-zero, matching how monetary CSV values are normally parsed.
    """
    factor = 10**scale
    arr = np.asarray(list(values), dtype=np.float64)
    return np.round(arr * factor).astype(np.int64)


def cents_to_decimal(values: np.ndarray | Iterable[int], scale: int = 2) -> np.ndarray:
    """Convert fixed-point integers back to floats (inverse of above)."""
    factor = 10**scale
    return np.asarray(values, dtype=np.float64) / factor
