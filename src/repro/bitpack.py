"""Bit-packing kernel.

Every encoding in this library ultimately stores small unsigned integers with
as few bits as possible.  This module provides the packing/unpacking kernel
used for that: values of a fixed bit width ``k`` (0..64) are laid out
back-to-back in a little-endian ``uint64`` word buffer.

The implementation is fully vectorised with NumPy:

* :func:`pack` scatters the low/high parts of each value into the word buffer
  with ``np.bitwise_or.at`` (values may straddle a word boundary).
* :func:`unpack` and :func:`gather` read each value from (at most) two words
  with plain vectorised shifts, so random access into a packed buffer does not
  require decompressing the whole buffer — the property the paper relies on
  when it restricts its baseline to FOR/Dict + bit-packing ("fast random
  access into the compressed column").

The paper's prototype uses native SIMD bit-packing; the layout here is the
same up to word size, so compressed *sizes* are identical and access costs
scale the same way.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

import numpy as np

from .errors import DecodingError, ValidationError

__all__ = [
    "required_bits",
    "pack",
    "unpack",
    "gather",
    "packed_size_bytes",
    "BitPackedArray",
]

_WORD_BITS = 64


def required_bits(max_value: int) -> int:
    """Number of bits needed to represent values in ``[0, max_value]``.

    ``max_value == 0`` needs 0 bits (the column is a constant zero and can be
    reconstructed without any payload).  Negative inputs are rejected: callers
    must first shift values into the unsigned domain (e.g. via FOR).
    """
    if max_value < 0:
        raise ValidationError(
            f"required_bits expects a non-negative maximum, got {max_value}"
        )
    return int(max_value).bit_length()


def packed_size_bytes(n_values: int, bit_width: int) -> int:
    """Size in bytes of ``n_values`` packed at ``bit_width`` bits each.

    This is the *logical* payload size (rounded up to whole bytes), which is
    what the paper reports; the in-memory word buffer rounds up to 8 bytes.
    """
    if n_values < 0:
        raise ValidationError("n_values must be non-negative")
    _check_width(bit_width)
    return (n_values * bit_width + 7) // 8


def _check_width(bit_width: int) -> None:
    if not 0 <= bit_width <= _WORD_BITS:
        raise ValidationError(
            f"bit width must be between 0 and {_WORD_BITS}, got {bit_width}"
        )


def pack(values: np.ndarray, bit_width: int) -> np.ndarray:
    """Pack unsigned integers into a little-endian ``uint64`` word buffer.

    Parameters
    ----------
    values:
        Non-negative integers, each representable in ``bit_width`` bits.
    bit_width:
        Number of bits per value, 0..64.  A width of 0 produces an empty
        buffer (all values must then be zero).

    Returns
    -------
    numpy.ndarray
        ``uint64`` array holding the packed payload.
    """
    _check_width(bit_width)
    vals = np.asarray(values)
    if vals.size and vals.dtype.kind not in "iu":
        raise ValidationError(f"pack expects integer values, got dtype {vals.dtype}")
    if vals.size and vals.min() < 0:
        raise ValidationError("pack expects non-negative values; apply FOR first")
    if bit_width == 0:
        if vals.size and vals.max() != 0:
            raise ValidationError("bit width 0 requires all values to be zero")
        return np.zeros(0, dtype=np.uint64)
    if vals.size and bit_width < _WORD_BITS and int(vals.max()) >= (1 << bit_width):
        raise ValidationError(
            f"value {int(vals.max())} does not fit into {bit_width} bits"
        )

    n = vals.size
    vals = vals.astype(np.uint64, copy=False)
    total_bits = n * bit_width
    n_words = (total_bits + _WORD_BITS - 1) // _WORD_BITS
    # One spare word so that values straddling the final boundary have a
    # destination for their (empty) high part.
    words = np.zeros(n_words + 1, dtype=np.uint64)
    if n == 0:
        return words[:n_words]

    bit_pos = np.arange(n, dtype=np.uint64) * np.uint64(bit_width)
    word_idx = (bit_pos >> np.uint64(6)).astype(np.int64)
    offset = bit_pos & np.uint64(63)

    low = vals << offset
    # value >> (64 - offset) without ever shifting by 64: shift by (63-offset)
    # then by one more.
    high = (vals >> (np.uint64(63) - offset)) >> np.uint64(1)

    np.bitwise_or.at(words, word_idx, low)
    np.bitwise_or.at(words, word_idx + 1, high)
    return words[:n_words]


def unpack(words: np.ndarray, bit_width: int, n_values: int) -> np.ndarray:
    """Unpack ``n_values`` integers of ``bit_width`` bits from a word buffer."""
    _check_width(bit_width)
    if n_values < 0:
        raise ValidationError("n_values must be non-negative")
    if bit_width == 0:
        return np.zeros(n_values, dtype=np.int64)
    return gather(words, bit_width, np.arange(n_values, dtype=np.int64))


def gather(words: np.ndarray, bit_width: int, positions: np.ndarray) -> np.ndarray:
    """Random access: extract the values at ``positions`` from a packed buffer.

    This is the kernel used by the query engine to materialise a selection
    vector without decompressing the whole block.
    """
    _check_width(bit_width)
    pos = np.asarray(positions, dtype=np.int64)
    if bit_width == 0:
        return np.zeros(pos.size, dtype=np.int64)
    words = np.asarray(words, dtype=np.uint64)
    if pos.size == 0:
        return np.zeros(0, dtype=np.int64)
    if pos.min() < 0:
        raise DecodingError("positions must be non-negative")
    return _extract_unsigned(words, bit_width, pos).astype(np.int64, copy=False)


def _extract_unsigned(words: np.ndarray, bit_width: int, pos: np.ndarray) -> np.ndarray:
    """The two-word extraction at the heart of :func:`gather`, kept unsigned.

    Word-space comparison kernels use this directly so they can run fused
    unsigned range checks over the raw lanes without the ``int64`` cast.
    """
    bit_pos = pos.astype(np.uint64) * np.uint64(bit_width)
    word_idx = (bit_pos >> np.uint64(6)).astype(np.int64)
    offset = bit_pos & np.uint64(63)

    last_bit = int(bit_pos.max()) + bit_width
    if last_bit > words.size * _WORD_BITS:
        raise DecodingError(
            f"position {int(pos.max())} out of range for packed buffer of "
            f"{words.size} words at width {bit_width}"
        )

    # Values may straddle two words; append a zero word so word_idx+1 is valid.
    padded = np.concatenate([words, np.zeros(1, dtype=np.uint64)])
    low_words = padded[word_idx]
    high_words = padded[word_idx + 1]

    low = low_words >> offset
    high = (high_words << (np.uint64(63) - offset)) << np.uint64(1)
    combined = low | high
    if bit_width < _WORD_BITS:
        mask = np.uint64((1 << bit_width) - 1)
        combined &= mask
    return combined


@dataclass
class BitPackedArray:
    """A packed integer array with enough metadata to read itself back.

    This is the unit the encodings store: a word buffer, the bit width, and
    the logical length.  ``size_bytes`` reports the byte-rounded payload size
    (the figure the paper's size tables are built from).
    """

    words: np.ndarray
    bit_width: int
    n_values: int

    @classmethod
    def from_values(cls, values: np.ndarray, bit_width: int | None = None) -> "BitPackedArray":
        """Pack ``values`` using ``bit_width`` (or the minimal width)."""
        vals = np.asarray(values)
        if bit_width is None:
            bit_width = required_bits(int(vals.max())) if vals.size else 0
        return cls(pack(vals, bit_width), bit_width, int(vals.size))

    def to_numpy(self) -> np.ndarray:
        """Decode the full array back to ``int64`` values."""
        return unpack(self.words, self.bit_width, self.n_values)

    def gather(self, positions: np.ndarray) -> np.ndarray:
        """Decode only the values at ``positions``."""
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size and pos.max() >= self.n_values:
            raise DecodingError(
                f"position {int(pos.max())} out of range for array of "
                f"{self.n_values} values"
            )
        return gather(self.words, self.bit_width, pos)

    # -- word-space comparison kernels ----------------------------------------

    def _lane_view(self) -> np.ndarray | None:
        """A zero-copy fixed-width lane view over the packed words.

        When the bit width is a machine lane width (8/16/32/64) the
        back-to-back little-endian layout means reinterpreting the word
        buffer *is* the value array — comparisons can then run directly over
        the packed bytes with no unpack pass at all.  Returns ``None`` when
        no such view exists (odd widths, big-endian hosts).
        """
        lane_dtype = {8: np.uint8, 16: np.uint16, 32: np.uint32, 64: np.uint64}.get(self.bit_width)
        if lane_dtype is None or sys.byteorder != "little":
            return None
        return self.words.view(lane_dtype)[: self.n_values]

    def _lanes(self) -> np.ndarray:
        """All packed values as unsigned lanes (zero-copy when possible)."""
        if self.bit_width == 0 or self.n_values == 0:
            # Width-0 columns store no words at all; every value is zero.
            return np.zeros(self.n_values, dtype=np.uint64)
        view = self._lane_view()
        if view is not None:
            return view
        return _extract_unsigned(
            np.asarray(self.words, dtype=np.uint64),
            self.bit_width,
            np.arange(self.n_values, dtype=np.int64),
        )

    def compare_range(self, low: int | None, high: int | None) -> np.ndarray:
        """Mask of packed values inside ``[low, high]`` (``None`` = open).

        Bounds are in the *packed* (unsigned offset) domain — callers shift
        by their frame of reference first.  Out-of-domain bounds clamp, so an
        empty or all-covering range short-circuits without touching words.
        """
        n = self.n_values
        max_code = (1 << self.bit_width) - 1 if self.bit_width else 0
        lo = 0 if low is None else max(int(low), 0)
        hi = max_code if high is None else min(int(high), max_code)
        if lo > hi:
            return np.zeros(n, dtype=bool)
        if lo == 0 and hi == max_code:
            return np.ones(n, dtype=bool)
        lanes = self._lane_view()
        if lanes is not None:
            if lo == 0:
                return lanes <= hi
            if hi == max_code:
                return lanes >= lo
            return (lanes >= lo) & (lanes <= hi)
        # Generic widths: one unsigned extraction, then the fused range check
        # ``(x - lo) <= (hi - lo)`` (valid in modular arithmetic).
        lanes = self._lanes()
        return (lanes - np.uint64(lo)) <= np.uint64(hi - lo)

    def compare_values(self, values) -> np.ndarray:
        """Mask of packed values equal to any candidate (packed domain)."""
        n = self.n_values
        max_code = (1 << self.bit_width) - 1 if self.bit_width else 0
        candidates = np.unique(
            np.array([int(v) for v in values if 0 <= int(v) <= max_code], dtype=np.uint64)
        )
        if candidates.size == 0 or n == 0:
            return np.zeros(n, dtype=bool)
        if candidates.size == 1:
            lanes = self._lanes()
            return lanes == candidates[0]
        return np.isin(self._lanes(), candidates)

    def __len__(self) -> int:
        return self.n_values

    @property
    def size_bytes(self) -> int:
        """Logical payload size in bytes (bit width times length, byte-rounded)."""
        return packed_size_bytes(self.n_values, self.bit_width)
