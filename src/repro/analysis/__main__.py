"""``python -m repro.analysis`` — same contract as ``corra check``."""

from __future__ import annotations

import sys

from . import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
