"""``corra check``: project-invariant static analysis for this codebase.

Generic linters police syntax; this package polices the *conventions this
repository's correctness actually rests on*.  Each rule encodes a bug
class that code review has already had to catch by hand at least once:

``metrics-completeness``
    Every counter field on :class:`~repro.query.scan.ScanMetrics` and
    :class:`~repro.storage.cache.IOMetrics` must be threaded through
    ``merge()``, ``reset()`` and every reporting surface (the CLI metric
    tables, the service's ``/metrics`` snapshots).  A counter missing
    from ``merge()`` silently under-counts under parallel execution; one
    missing from a report is invisible telemetry — fatal to any
    telemetry-driven tuning loop built on top.

``lock-discipline``
    Lock attributes are acquired with ``with`` only (bare ``.acquire()``
    leaks the lock on exceptions), and held-lock bodies must not perform
    file I/O, ``time.sleep``, ``Future.result`` or pool
    ``submit``/``shutdown`` — the calls that turn a microsecond critical
    section into an unbounded stall for every other request thread.
    ``Condition.wait`` is exempt (it releases the lock while waiting).

``lock-order``
    The static nested-``with`` acquisition graph — across ``Engine``,
    ``BlockCache``, ``QueryService``, ``TableReader`` and friends, with
    one level of call resolution — must be acyclic, and a non-reentrant
    lock must never be re-acquired on a path that already holds it.
    Cycles are deadlocks waiting for the right schedule.

``kernel-purity``
    ``query/kernels.py`` must never call the materialising API
    (``decode``, ``gather``, heap accessors): compressed-domain kernels
    that quietly decode still pass every correctness test while erasing
    the paper's entire performance claim.

``format-roundtrip``
    Every field of the footer/segment dataclasses in
    ``storage/format.py`` must appear in both the serialize and the
    deserialize method of a recognised pair (``to_dict``/``from_dict``,
    ...), so no field can be silently dropped from the on-disk format.

``span-discipline``
    ``tracer.span(...)`` and ``tracer.adopt(...)`` must be opened with
    ``with``: the tracing subsystem keeps a per-thread stack of open
    spans, and a span that never ``__exit__``s corrupts every later
    span's parentage on that thread while the query still answers
    correctly — wrong telemetry, green tests.

**Suppression.**  A finding is silenced by an inline marker on the
flagged line, naming the rule::

    self._file.seek(offset)  # corra: ignore[lock-discipline] -- atomic seek+read

Use it only where violating the letter of the rule *is* the design (the
table reader's atomic seek+read under its file lock; the prefetch
scheduler's submit under its bookkeeping lock) and say why in the
trailing comment.

**Exit codes.** ``0`` clean, ``1`` findings, ``2`` usage error — so CI
can run ``corra check`` (or ``python -m repro.analysis``) as a blocking
step.

The static lock-order rule has a dynamic twin,
:class:`~repro.analysis.witness.LockWitness`, which the concurrency test
suites install to record the *runtime* acquisition graph and fail on
order inversions the schedule actually produced.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Sequence

from .framework import Finding, Project, Rule, load_project, run_rules
from .locks import LockDisciplineRule, LockOrderRule
from .metrics import MetricsCompletenessRule
from .purity import KernelPurityRule
from .roundtrip import FormatRoundtripRule
from .spans import SpanDisciplineRule
from .witness import LockWitness

__all__ = [
    "Finding",
    "LockWitness",
    "Project",
    "Rule",
    "all_rules",
    "load_project",
    "main",
    "run_check",
    "run_rules",
]


def all_rules() -> dict[str, Rule]:
    """Every registered rule, keyed by name."""
    rules: list[Rule] = [
        MetricsCompletenessRule(),
        LockDisciplineRule(),
        LockOrderRule(),
        KernelPurityRule(),
        FormatRoundtripRule(),
        SpanDisciplineRule(),
    ]
    return {rule.name: rule for rule in rules}


def run_check(
    paths: Sequence[str | Path],
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[Finding]:
    """Run the (selected) rules over ``paths`` and return the findings."""
    registry = all_rules()
    names = list(registry)
    if select:
        unknown = set(select) - set(registry)
        if unknown:
            raise ValueError(f"unknown rule(s) in --select: {sorted(unknown)}")
        names = [name for name in names if name in set(select)]
    if ignore:
        unknown = set(ignore) - set(registry)
        if unknown:
            raise ValueError(f"unknown rule(s) in --ignore: {sorted(unknown)}")
        names = [name for name in names if name not in set(ignore)]
    project = load_project([Path(p) for p in paths])
    return run_rules(project, [registry[name] for name in names])


def _comma_list(raw: str) -> list[str]:
    return [part.strip() for part in raw.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="corra check",
        description="Project-invariant static analysis (see repro.analysis).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        type=_comma_list,
        default=None,
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        type=_comma_list,
        default=None,
        metavar="RULES",
        help="comma-separated rule names to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code (0/1/2)."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for name, rule in all_rules().items():
            print(f"{name}: {rule.description}")
        return 0
    try:
        findings = run_check(args.paths, select=args.select, ignore=args.ignore)
    except ValueError as exc:
        print(f"corra check: error: {exc}")
        return 2
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"corra check: {len(findings)} finding(s)")
        return 1
    print("corra check: clean")
    return 0
