"""lock-discipline and lock-order: static checks over the lock graph.

PR 7 left the tree with a dozen locks — the engine's compiler-LRU RLock,
the block cache's single-flight lock, the admission gate's condition, the
table reader's file lock, per-metrics locks — and two conventions holding
them together: locks are only ever taken with ``with`` (so exceptions
release them), and nested acquisitions always happen in one global order
(so request threads cannot deadlock).  Both rules here derive what they
need from the AST, no annotations required:

* **lock model** — for every class, the attributes assigned
  ``threading.Lock()`` / ``RLock()`` / ``Condition()`` (including
  dataclass ``field(default_factory=threading.Lock)`` declarations).
  ``Condition(self._lock)`` is an *alias*: acquiring the condition
  acquires the underlying lock, so both names map to one lock identity
  ``(ClassName, attr)``.

* **lock-discipline** — flags bare ``.acquire()`` / ``.release()`` on a
  lock attribute (use ``with``), and calls known to block — file I/O,
  ``time.sleep``, ``Future.result``, pool ``submit``/``shutdown``,
  ``Thread.join`` — lexically inside a held-lock body.
  ``Condition.wait`` is exempt: it releases the lock while blocking,
  which is the whole point of a condition variable.

* **lock-order** — builds the static acquisition graph: an edge
  ``A -> B`` whenever ``B`` is acquired (lexically, or through one level
  of ``self.method()`` / ``self.member.method()`` call resolution) while
  ``A`` is held.  A cycle in that graph is a potential deadlock under
  concurrent schedules; a self-edge on a *non-reentrant* lock is a
  guaranteed one.  Self-edges on RLocks are legal reentrancy and ignored.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from .framework import Finding, Module, Project, Rule

__all__ = ["LockDisciplineRule", "LockOrderRule", "build_lock_models"]

#: Constructors that create a lock-like object.
_LOCK_FACTORIES = {"Lock": "Lock", "RLock": "RLock", "Condition": "Condition"}

#: Calls that can block for unbounded time and must not run under a lock.
_BLOCKING_NAME_CALLS = {"open", "_read_exact"}
_BLOCKING_ATTR_CALLS = {
    "sleep",  # time.sleep
    "result",  # Future.result
    "submit",  # pool.submit (can block when the work queue is bounded)
    "shutdown",  # pool.shutdown(wait=True) joins worker threads
    "join",  # Thread.join
    "seek",  # file I/O from here down
    "read",
    "write",
    "flush",
}


def _call_factory(value: ast.expr) -> tuple[str, ast.Call] | None:
    """``("Lock", call)`` when ``value`` is ``threading.Lock()`` etc."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    name = None
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id == "threading":
            name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    if name in _LOCK_FACTORIES:
        return _LOCK_FACTORIES[name], value
    return None


def _self_attr(node: ast.expr) -> str | None:
    """``attr`` when ``node`` is exactly ``self.attr``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@dataclass
class ClassModel:
    """Locks, aliases, member objects and methods of one class."""

    module: Module
    node: ast.ClassDef
    #: attribute name (including condition aliases) -> canonical lock attr.
    locks: dict[str, str] = field(default_factory=dict)
    #: canonical lock attr -> "Lock" | "RLock" | "Condition".
    kinds: dict[str, str] = field(default_factory=dict)
    #: attribute name -> project class name (``self.x = OtherClass(...)``).
    members: dict[str, str] = field(default_factory=dict)
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)

    def lock_id(self, attr: str) -> tuple[str, str] | None:
        canonical = self.locks.get(attr)
        if canonical is None:
            return None
        return (self.node.name, canonical)

    def kind_of(self, attr: str) -> str:
        return self.kinds.get(self.locks.get(attr, attr), "Lock")


def _scan_assignments(model: ClassModel, class_names: set[str]) -> None:
    """Populate locks/members from ``self.x = ...`` in every method."""
    for method in model.methods.values():
        for stmt in ast.walk(method):
            if not isinstance(stmt, ast.Assign) or not isinstance(stmt.value, ast.Call):
                continue
            for target in stmt.targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                factory = _call_factory(stmt.value)
                if factory is not None:
                    kind, call = factory
                    if kind == "Condition" and call.args:
                        aliased = _self_attr(call.args[0])
                        if aliased is not None and aliased in model.locks:
                            # Condition(self._lock): same lock, second name.
                            model.locks[attr] = model.locks[aliased]
                            continue
                    model.locks[attr] = attr
                    model.kinds[attr] = kind
                    continue
                func = stmt.value.func
                if isinstance(func, ast.Name) and func.id in class_names:
                    model.members[attr] = func.id


def _scan_dataclass_fields(model: ClassModel, class_names: set[str]) -> None:
    """Locks/members declared as dataclass fields at class level."""
    for stmt in model.node.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(stmt.target, ast.Name):
            continue
        attr = stmt.target.id
        annotation = stmt.annotation
        ann_name = None
        if isinstance(annotation, ast.Attribute):
            ann_name = annotation.attr
        elif isinstance(annotation, ast.Name):
            ann_name = annotation.id
        if ann_name in _LOCK_FACTORIES:
            model.locks[attr] = attr
            model.kinds[attr] = _LOCK_FACTORIES[ann_name]
        elif ann_name in class_names:
            model.members[attr] = ann_name
        elif isinstance(stmt.value, ast.Call):
            # field(default_factory=threading.Lock) / field(default_factory=Foo)
            for kw in stmt.value.keywords:
                if kw.arg != "default_factory":
                    continue
                factory = _call_factory(ast.Call(func=kw.value, args=[], keywords=[]))
                if factory is not None:
                    model.locks[attr] = attr
                    model.kinds[attr] = factory[0]
                elif isinstance(kw.value, ast.Name) and kw.value.id in class_names:
                    model.members[attr] = kw.value.id


def build_lock_models(project: Project) -> dict[str, ClassModel]:
    """Every project class's lock model, keyed by class name."""
    models: dict[str, ClassModel] = {}
    class_names = {cls.name for _, cls in project.classes()}
    for module, cls in project.classes():
        model = ClassModel(module=module, node=cls)
        for stmt in cls.body:
            if isinstance(stmt, ast.FunctionDef):
                model.methods[stmt.name] = stmt
        _scan_dataclass_fields(model, class_names)
        _scan_assignments(model, class_names)
        models[cls.name] = model
    return models


def _with_lock_items(model: ClassModel, node: ast.With) -> list[tuple[str, str]]:
    """Lock ids acquired by one ``with`` statement's items."""
    ids = []
    for item in node.items:
        attr = _self_attr(item.context_expr)
        if attr is not None:
            lock_id = model.lock_id(attr)
            if lock_id is not None:
                ids.append(lock_id)
    return ids


def _acquired_locks(
    models: dict[str, ClassModel],
    model: ClassModel,
    method: ast.FunctionDef,
    depth: int,
    seen: set[tuple[str, str]],
) -> set[tuple[str, str]]:
    """Lock ids a call to ``method`` may acquire (static over-approximation)."""
    key = (model.node.name, method.name)
    if key in seen or depth <= 0:
        return set()
    seen = seen | {key}
    acquired: set[tuple[str, str]] = set()
    for node in ast.walk(method):
        if isinstance(node, ast.With):
            acquired.update(_with_lock_items(model, node))
        elif isinstance(node, ast.Call):
            resolved = _resolve_call(models, model, node)
            if resolved is not None:
                callee_model, callee = resolved
                acquired.update(
                    _acquired_locks(models, callee_model, callee, depth - 1, seen)
                )
    return acquired


def _resolve_call(
    models: dict[str, ClassModel], model: ClassModel, call: ast.Call
) -> tuple[ClassModel, ast.FunctionDef] | None:
    """``self.m()`` or ``self.member.m()`` resolved to a project method."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    owner_attr = _self_attr(func.value)
    if func.value is not None and _self_attr(func) is not None:
        # self.m(...): same-class method.
        method = model.methods.get(func.attr)
        if method is not None:
            return model, method
        return None
    if owner_attr is not None:
        # self.member.m(...): one level into a member object's class.
        member_class = model.members.get(owner_attr)
        if member_class is not None and member_class in models:
            callee_model = models[member_class]
            method = callee_model.methods.get(func.attr)
            if method is not None:
                return callee_model, method
    return None


class LockDisciplineRule(Rule):
    name = "lock-discipline"
    description = (
        "locks are acquired via `with` only, and held-lock bodies never "
        "perform file I/O, sleeps, Future.result or pool submits"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        models = build_lock_models(project)
        for model in models.values():
            for method in model.methods.values():
                yield from self._check_bare_acquire(model, method)
                yield from self._check_blocking(model, method)

    def _check_bare_acquire(
        self, model: ClassModel, method: ast.FunctionDef
    ) -> Iterator[Finding]:
        for node in ast.walk(method):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in ("acquire", "release"):
                continue
            attr = _self_attr(node.func.value)
            if attr is None or attr not in model.locks:
                continue
            yield Finding(
                rule=self.name,
                path=model.module.rel,
                line=node.lineno,
                message=(
                    f"bare self.{attr}.{node.func.attr}() in "
                    f"{model.node.name}.{method.name}"
                ),
                hint="acquire locks with `with self.%s:` so exceptions release them" % attr,
            )

    def _check_blocking(self, model: ClassModel, method: ast.FunctionDef) -> Iterator[Finding]:
        # Walk statements manually so nested function definitions (closures
        # handed to pools — they run on *other* threads, lock not held) are
        # not charged to the enclosing lock body.
        def visit(stmts: list[ast.stmt], held: bool) -> Iterator[Finding]:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                now_held = held
                if isinstance(stmt, ast.With) and _with_lock_items(model, stmt):
                    now_held = True
                if held:
                    yield from self._blocking_calls_in(model, method, stmt)
                for body in _child_bodies(stmt):
                    yield from visit(body, now_held)

        yield from visit(method.body, held=False)

    def _blocking_calls_in(
        self, model: ClassModel, method: ast.FunctionDef, stmt: ast.stmt
    ) -> Iterator[Finding]:
        for node in _walk_statement_exprs(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            blocked = None
            if isinstance(func, ast.Name) and func.id in _BLOCKING_NAME_CALLS:
                blocked = func.id
            elif isinstance(func, ast.Attribute) and func.attr in _BLOCKING_ATTR_CALLS:
                receiver = _self_attr(func.value)
                if receiver is not None and receiver in model.locks:
                    continue  # condition/lock protocol calls are not file I/O
                blocked = func.attr
            if blocked is not None:
                yield Finding(
                    rule=self.name,
                    path=model.module.rel,
                    line=node.lineno,
                    message=(
                        f"potentially blocking call {blocked!r} while "
                        f"{model.node.name} holds a lock (in {method.name})"
                    ),
                    hint=(
                        "move the blocking work outside the `with` body, or mark the "
                        "line `# corra: ignore[lock-discipline]` if holding the lock "
                        "is the point (e.g. an atomic seek+read)"
                    ),
                )


def _child_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
    bodies = []
    for field_name in ("body", "orelse", "finalbody"):
        value = getattr(stmt, field_name, None)
        if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
            bodies.append(value)
    for handler in getattr(stmt, "handlers", []):
        bodies.append(handler.body)
    return bodies


def _walk_statement_exprs(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Expressions of one statement, not descending into child statements."""
    for field_name, value in ast.iter_fields(stmt):
        if field_name in ("body", "orelse", "finalbody", "handlers"):
            continue
        if isinstance(value, ast.expr):
            yield from ast.walk(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, (ast.expr, ast.withitem)):
                    yield from ast.walk(item)


class LockOrderRule(Rule):
    name = "lock-order"
    description = (
        "the static nested-with lock acquisition graph across classes "
        "must be acyclic (one global lock order, no deadlocks)"
    )

    #: One level of call resolution under a held lock, two inside callees.
    CALL_DEPTH = 2

    def check(self, project: Project) -> Iterator[Finding]:
        models = build_lock_models(project)
        edges: dict[tuple[tuple[str, str], tuple[str, str]], tuple[str, int]] = {}
        self_edges: list[tuple[tuple[str, str], str, int, str]] = []

        for model in models.values():
            for method in model.methods.values():
                self._collect(models, model, method, method.body, [], edges, self_edges)

        for lock, rel, line, context in self_edges:
            kind = models[lock[0]].kinds.get(lock[1], "Lock")
            if kind == "RLock":
                continue  # legal reentrancy
            yield Finding(
                rule=self.name,
                path=rel,
                line=line,
                message=(
                    f"non-reentrant lock {lock[0]}.{lock[1]} re-acquired while "
                    f"already held ({context}) — guaranteed deadlock"
                ),
                hint="use threading.RLock, or restructure so the inner path assumes the lock",
            )

        cycle = _find_cycle({edge for edge in edges})
        if cycle is not None:
            first = edges[(cycle[0], cycle[1])]
            path = " -> ".join(f"{cls}.{attr}" for cls, attr in cycle)
            yield Finding(
                rule=self.name,
                path=first[0],
                line=first[1],
                message=f"lock acquisition cycle: {path}",
                hint=(
                    "pick one global acquisition order and restructure the odd "
                    "path out; the cited line is the first edge of the cycle"
                ),
            )

    def _collect(
        self,
        models: dict[str, ClassModel],
        model: ClassModel,
        method: ast.FunctionDef,
        stmts: list[ast.stmt],
        held: list[tuple[str, str]],
        edges: dict[tuple[tuple[str, str], tuple[str, str]], tuple[str, int]],
        self_edges: list[tuple[tuple[str, str], str, int, str]],
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # closures run elsewhere; not under this lock
            acquired = (
                _with_lock_items(model, stmt) if isinstance(stmt, ast.With) else []
            )
            context = f"{model.node.name}.{method.name}"
            for lock in acquired:
                for holder in held:
                    if holder == lock:
                        self_edges.append((lock, model.module.rel, stmt.lineno, context))
                    else:
                        edges.setdefault((holder, lock), (model.module.rel, stmt.lineno))
            if held:
                for node in _walk_statement_exprs(stmt):
                    if not isinstance(node, ast.Call):
                        continue
                    resolved = _resolve_call(models, model, node)
                    if resolved is None:
                        continue
                    callee_model, callee = resolved
                    for lock in _acquired_locks(
                        models, callee_model, callee, self.CALL_DEPTH, set()
                    ):
                        for holder in held:
                            if holder == lock:
                                self_edges.append(
                                    (lock, model.module.rel, node.lineno, context)
                                )
                            else:
                                edges.setdefault(
                                    (holder, lock), (model.module.rel, node.lineno)
                                )
            inner_held = held + [lock for lock in acquired if lock not in held]
            for body in _child_bodies(stmt):
                self._collect(models, model, method, body, inner_held, edges, self_edges)


def _find_cycle(
    edges: set[tuple[tuple[str, str], tuple[str, str]]],
) -> list[tuple[str, str]] | None:
    """A cycle in the edge set as a node path (first node repeated last)."""
    graph: dict[tuple[str, str], list[tuple[str, str]]] = {}
    for a, b in edges:
        graph.setdefault(a, []).append(b)
    WHITE, GREY, BLACK = 0, 1, 2
    color: dict[tuple[str, str], int] = {}
    stack: list[tuple[str, str]] = []

    def dfs(node: tuple[str, str]) -> list[tuple[str, str]] | None:
        color[node] = GREY
        stack.append(node)
        for succ in graph.get(node, ()):
            state = color.get(succ, WHITE)
            if state == GREY:
                start = stack.index(succ)
                return stack[start:] + [succ]
            if state == WHITE:
                found = dfs(succ)
                if found is not None:
                    return found
        stack.pop()
        color[node] = BLACK
        return None

    for node in list(graph):
        if color.get(node, WHITE) == WHITE:
            found = dfs(node)
            if found is not None:
                return found
    return None
