"""LockWitness: a runtime lock-order recorder for the concurrency suites.

The static lock-order rule sees the acquisition graph the *code* spells
out; the witness sees the graph the *schedule* actually takes.  Wrapping
a lock with :meth:`LockWitness.wrap` (or in place with
:meth:`wrap_attr`) keeps its semantics — ``with``, ``acquire(blocking,
timeout)``, reentrancy — while recording, per thread, the stack of
witnessed locks currently held.  Every first acquisition of lock ``B``
under held lock ``A`` adds the directed edge ``A -> B`` to a global edge
set; acquiring ``B`` when the *reverse* edge ``B -> A`` was ever
observed is an order inversion — the classic two-thread deadlock shape,
caught even when the schedule happened not to interleave fatally.  This
is TSan's lock-order-inversion detection, pocket-sized.

Intended use (see ``tests/test_engine_concurrency.py``)::

    witness = LockWitness()
    witness.wrap_attr(engine, "_lock", "Engine._lock")
    witness.wrap_attr(engine.cache, "_lock", "BlockCache._lock")
    ...hammer the engine from K threads...
    witness.assert_clean()

Reentrant re-acquisition of a lock already on the thread's stack records
no edges (an RLock taken twice says nothing about ordering).  Failed
non-blocking acquires record nothing.
"""

from __future__ import annotations

import threading
from typing import Any

__all__ = ["LockWitness", "WitnessedLock"]


class WitnessedLock:
    """A lock proxy that reports acquisitions to its :class:`LockWitness`.

    Supports the full lock protocol (``acquire``/``release``/context
    manager) and forwards anything else — ``locked()``,
    ``_is_owned()``, the internals ``Condition`` pokes at — to the
    wrapped lock, so it can stand in for ``threading.Lock`` and
    ``threading.RLock`` anywhere in the engine.
    """

    def __init__(self, witness: "LockWitness", inner: Any, name: str):
        self._witness = witness
        self._inner = inner
        self.name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._witness._on_acquire(self.name)
        return ok

    def release(self) -> None:
        self._inner.release()
        self._witness._on_release(self.name)

    def __enter__(self) -> "WitnessedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __getattr__(self, item: str) -> Any:
        return getattr(self._inner, item)

    def __repr__(self) -> str:
        return f"WitnessedLock({self.name!r}, {self._inner!r})"


class LockWitness:
    """Records the runtime lock acquisition graph and flags inversions."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        #: Observed edges held-lock -> acquired-lock, with first-seen context.
        self._edges: dict[tuple[str, str], str] = {}
        self._violations: list[str] = []
        self._tls = threading.local()

    # -- wrapping ----------------------------------------------------------

    def wrap(self, lock: Any, name: str) -> WitnessedLock:
        """``lock`` wrapped as a :class:`WitnessedLock` reporting here."""
        return WitnessedLock(self, lock, name)

    def wrap_attr(self, obj: Any, attr: str, name: str | None = None) -> WitnessedLock:
        """Replace ``obj.<attr>`` with a witnessed wrapper, in place."""
        wrapped = self.wrap(getattr(obj, attr), name or f"{type(obj).__name__}.{attr}")
        setattr(obj, attr, wrapped)
        return wrapped

    # -- recording ---------------------------------------------------------

    def _held(self) -> list[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _on_acquire(self, name: str) -> None:
        stack = self._held()
        if name in stack:
            stack.append(name)  # reentrant: no ordering information
            return
        holders = set(stack)
        if holders:
            thread = threading.current_thread().name
            with self._mutex:
                for held in holders:
                    reverse = self._edges.get((name, held))
                    if reverse is not None:
                        self._violations.append(
                            f"lock order inversion: thread {thread!r} acquired "
                            f"{name!r} while holding {held!r}, but {reverse} "
                            f"previously acquired {held!r} while holding {name!r}"
                        )
                    self._edges.setdefault((held, name), f"thread {thread!r}")
        stack.append(name)

    def _on_release(self, name: str) -> None:
        stack = self._held()
        # Release the innermost matching hold (reentrant stacks pop in order).
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                return

    # -- results -----------------------------------------------------------

    @property
    def violations(self) -> list[str]:
        with self._mutex:
            return list(self._violations)

    def edges(self) -> set[tuple[str, str]]:
        """The observed acquisition edges (held -> acquired)."""
        with self._mutex:
            return set(self._edges)

    def assert_clean(self) -> None:
        """Raise ``AssertionError`` listing every recorded inversion."""
        violations = self.violations
        if violations:
            raise AssertionError(
                "LockWitness recorded lock-order inversions:\n  "
                + "\n  ".join(violations)
            )
