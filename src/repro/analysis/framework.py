"""Rule framework of ``corra check``: projects, findings, the runner.

The analyzer parses every target file once into a :class:`Project` — a
bag of :class:`Module` objects holding the AST plus the raw source lines —
and hands the whole project to each :class:`Rule`.  Rules are
project-scoped rather than file-scoped on purpose: the invariants worth
checking here (a counter threaded through ``merge()`` *and* the CLI
table, a lock acquisition graph spanning ``query/`` and ``storage/``)
cross module boundaries, so a per-file visitor would miss exactly the
bugs this tool exists to catch.

Findings carry ``path:line``, the rule name and a fix hint.  A finding is
suppressed by an inline marker on the flagged line::

    self._file.seek(offset)  # corra: ignore[lock-discipline] -- atomic seek+read

``# corra: ignore`` with no bracket suppresses every rule on that line;
the bracket form takes a comma-separated rule list.  The runner's exit
code contract matches the usual linter convention: ``0`` clean, ``1``
findings survived, ``2`` usage or internal error.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "Module",
    "Project",
    "Rule",
    "docstring_constants",
    "load_project",
    "run_rules",
]

#: ``# corra: ignore`` or ``# corra: ignore[rule-a,rule-b]``.
_SUPPRESS_RE = re.compile(r"#\s*corra:\s*ignore(?:\[([A-Za-z0-9_,\s\-]*)\])?")


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source line."""

    rule: str
    path: str
    line: int
    message: str
    hint: str = ""

    def render(self) -> str:
        text = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class Module:
    """One parsed source file: AST plus raw lines for marker lookup."""

    path: Path
    rel: str
    tree: ast.Module
    lines: list[str] = field(repr=False)

    def suppressed_rules(self, line: int) -> set[str] | None:
        """Rules suppressed on ``line`` (1-based).

        ``None`` means no marker; an empty set means a bare ``# corra:
        ignore`` (suppress everything).
        """
        if not 1 <= line <= len(self.lines):
            return None
        match = _SUPPRESS_RE.search(self.lines[line - 1])
        if match is None:
            return None
        names = match.group(1)
        if names is None:
            return set()
        return {name.strip() for name in names.split(",") if name.strip()}

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)


@dataclass
class Project:
    """Every module the analyzer was pointed at, parsed once."""

    root: Path
    modules: list[Module]

    def find(self, suffix: str) -> Module | None:
        """The module whose relative path ends with ``suffix`` (posix)."""
        for module in self.modules:
            if module.rel == suffix or module.rel.endswith("/" + suffix):
                return module
        return None

    def classes(self) -> Iterator[tuple[Module, ast.ClassDef]]:
        for module in self.modules:
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    yield module, node


class Rule:
    """Base of every check: a name, a one-line description, a project pass."""

    name: str = ""
    description: str = ""

    def check(self, project: Project) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError


def docstring_constants(root: ast.AST) -> set[int]:
    """``id()``s of the constant nodes serving as docstrings under ``root``.

    Rules that accept a string constant as a field reference (a counter
    threaded through a report as a dict key, say) must not let a name
    that merely appears in *prose* satisfy the check — a docstring
    reading "sums rows_total" is documentation, not threading.
    """
    ids: set[int] = set()
    for node in ast.walk(root):
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                ids.add(id(body[0].value))
    return ids


def load_project(paths: Sequence[Path | str], root: Path | str | None = None) -> Project:
    """Parse every ``.py`` file under ``paths`` into a :class:`Project`.

    ``root`` anchors the relative paths findings report (defaults to the
    common parent when a single directory is given, else the cwd).

    A path that does not exist, is not a ``.py`` file, or is a directory
    containing no ``.py`` files raises :class:`ValueError` — a typo'd
    target must be a usage error (exit code 2), never a vacuously
    "clean" run.
    """
    targets: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found = sorted(path.rglob("*.py"))
            if not found:
                raise ValueError(f"{path}: no .py files under directory")
            targets.extend(found)
        elif path.is_file() and path.suffix == ".py":
            targets.append(path)
        elif path.exists():
            raise ValueError(f"{path}: not a directory or a .py file")
        else:
            raise ValueError(f"{path}: no such file or directory")
    if root is None:
        root = paths[0] if len(paths) == 1 and Path(paths[0]).is_dir() else Path.cwd()
    root = Path(root)
    modules: list[Module] = []
    for path in targets:
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise ValueError(f"{path}: cannot parse: {exc}") from exc
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        modules.append(Module(path=path, rel=rel, tree=tree, lines=source.splitlines()))
    return Project(root=root, modules=modules)


def _is_suppressed(project: Project, finding: Finding) -> bool:
    for module in project.modules:
        if module.rel == finding.path:
            rules = module.suppressed_rules(finding.line)
            return rules is not None and (not rules or finding.rule in rules)
    return False


def run_rules(project: Project, rules: Sequence[Rule]) -> list[Finding]:
    """Run ``rules`` over ``project``; suppressed findings are dropped."""
    findings: list[Finding] = []
    for rule in rules:
        for finding in rule.check(project):
            if not _is_suppressed(project, finding):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
