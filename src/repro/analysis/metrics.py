"""metrics-completeness: every counter flows through merge/reset/reporting.

The engine's observability rests on hand-threaded counters: a field added
to :class:`~repro.query.scan.ScanMetrics`,
:class:`~repro.storage.cache.IOMetrics` or
:class:`~repro.server.metrics.ServerMetrics` is worthless — and silently
wrong under parallel execution — unless it is also summed in ``merge()``,
cleared in ``reset()`` and surfaced by every reporting site (the CLI
tables, the service's ``/metrics`` snapshots, the Prometheus
exposition).  PR 6 and PR 7 each grew
these dataclasses and each had to touch four far-apart call sites by
convention; this rule turns the convention into a check.

A *counter field* is a public annotated field of a configured metrics
class, excluding fields declared ``field(compare=False)`` (bookkeeping
such as ``IOMetrics.epoch``) and non-``int`` fields (the embedded lock).
Each counter must be referenced in the class's own ``merge`` and ``reset``
methods (when they exist) and in every configured reporting surface —
either as an attribute access (``metrics.rows_total``) or as a string key
(``"rows_total"``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator

from .framework import Finding, Module, Project, Rule, docstring_constants

__all__ = ["MetricsCompletenessRule", "MetricsSpec"]


@dataclass(frozen=True)
class MetricsSpec:
    """One metrics dataclass plus the reporting surfaces it must reach.

    ``surfaces`` are ``(module suffix, qualname)`` pairs; a qualname is a
    module-level function (``_print_metrics``) or a ``Class.method``
    (``ServerMetrics.snapshot``).  A surface whose *module* is absent from
    the project is skipped (the analyzer may be pointed at a subtree);
    a surface whose module is present but whose function is gone is a
    finding — that is exactly how reporting sites rot.
    """

    module: str
    class_name: str
    surfaces: tuple[tuple[str, str], ...] = ()


#: The project's metrics classes and every place their counters must show up.
DEFAULT_SPECS: tuple[MetricsSpec, ...] = (
    MetricsSpec(
        module="query/scan.py",
        class_name="ScanMetrics",
        surfaces=(
            ("cli.py", "_print_metrics"),
            ("server/metrics.py", "ServerMetrics.snapshot"),
            ("server/metrics.py", "prometheus_exposition"),
        ),
    ),
    MetricsSpec(
        module="storage/cache.py",
        class_name="IOMetrics",
        surfaces=(
            ("cli.py", "_print_io_metrics"),
            ("server/service.py", "QueryService.snapshot_metrics"),
            ("server/metrics.py", "prometheus_exposition"),
        ),
    ),
    MetricsSpec(
        module="server/metrics.py",
        class_name="ServerMetrics",
        surfaces=(
            ("server/metrics.py", "ServerMetrics.snapshot"),
            ("server/metrics.py", "prometheus_exposition"),
        ),
    ),
)


def _field_call_has_compare_false(value: ast.expr | None) -> bool:
    return (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id == "field"
        and any(
            kw.arg == "compare"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is False
            for kw in value.keywords
        )
    )


def counter_fields(cls: ast.ClassDef) -> list[tuple[str, int]]:
    """Public annotated ``int`` fields of a metrics dataclass, with lines."""
    counters: list[tuple[str, int]] = []
    for stmt in cls.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(stmt.target, ast.Name):
            continue
        name = stmt.target.id
        if name.startswith("_"):
            continue
        if not (isinstance(stmt.annotation, ast.Name) and stmt.annotation.id == "int"):
            continue
        if _field_call_has_compare_false(stmt.value):
            continue
        counters.append((name, stmt.lineno))
    return counters


def _names_used(node: ast.AST) -> set[str]:
    """Attribute names and string constants appearing under ``node``.

    Docstrings are excluded: a counter merely *mentioned* in the prose
    of ``merge()`` or a reporting surface is not threaded through it.
    """
    docstrings = docstring_constants(node)
    used: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute):
            used.add(child.attr)
        elif (
            isinstance(child, ast.Constant)
            and isinstance(child.value, str)
            and id(child) not in docstrings
        ):
            used.add(child.value)
        elif isinstance(child, ast.keyword) and child.arg is not None:
            used.add(child.arg)
    return used


def _resolve_qualname(module: Module, qualname: str) -> ast.FunctionDef | None:
    parts = qualname.split(".")
    scope: Iterable[ast.stmt] = module.tree.body
    node: ast.FunctionDef | None = None
    for index, part in enumerate(parts):
        found = None
        for stmt in scope:
            if isinstance(stmt, ast.ClassDef) and stmt.name == part and index < len(parts) - 1:
                found = stmt
                scope = stmt.body
                break
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and stmt.name == part:
                found = stmt
                break
        if found is None:
            return None
        if isinstance(found, ast.FunctionDef):
            node = found
    return node


class MetricsCompletenessRule(Rule):
    name = "metrics-completeness"
    description = (
        "every counter field of ScanMetrics/IOMetrics/ServerMetrics must appear "
        "in merge(), reset() and each configured reporting surface"
    )

    def __init__(self, specs: tuple[MetricsSpec, ...] = DEFAULT_SPECS):
        self._specs = specs

    def check(self, project: Project) -> Iterator[Finding]:
        for spec in self._specs:
            module = project.find(spec.module)
            if module is None:
                continue
            cls = next(
                (
                    node
                    for node in module.tree.body
                    if isinstance(node, ast.ClassDef) and node.name == spec.class_name
                ),
                None,
            )
            if cls is None:
                yield Finding(
                    rule=self.name,
                    path=module.rel,
                    line=1,
                    message=f"configured metrics class {spec.class_name!r} not found",
                    hint="update analysis.metrics.DEFAULT_SPECS if the class moved",
                )
                continue
            counters = counter_fields(cls)
            yield from self._check_lifecycle(module, cls, counters)
            yield from self._check_surfaces(project, spec, counters)

    def _check_lifecycle(
        self, module: Module, cls: ast.ClassDef, counters: list[tuple[str, int]]
    ) -> Iterator[Finding]:
        for method_name in ("merge", "reset"):
            method = next(
                (
                    stmt
                    for stmt in cls.body
                    if isinstance(stmt, ast.FunctionDef) and stmt.name == method_name
                ),
                None,
            )
            if method is None:
                continue
            used = _names_used(method)
            for counter, _ in counters:
                if counter not in used:
                    yield Finding(
                        rule=self.name,
                        path=module.rel,
                        line=method.lineno,
                        message=(
                            f"{cls.name}.{method_name}() does not touch counter "
                            f"{counter!r}"
                        ),
                        hint=f"thread {counter!r} through {method_name}() like the other counters",
                    )

    def _check_surfaces(
        self, project: Project, spec: MetricsSpec, counters: list[tuple[str, int]]
    ) -> Iterator[Finding]:
        for module_suffix, qualname in spec.surfaces:
            module = project.find(module_suffix)
            if module is None:
                continue
            fn = _resolve_qualname(module, qualname)
            if fn is None:
                yield Finding(
                    rule=self.name,
                    path=module.rel,
                    line=1,
                    message=f"configured reporting surface {qualname!r} not found",
                    hint="update analysis.metrics.DEFAULT_SPECS if the reporter moved",
                )
                continue
            used = _names_used(fn)
            for counter, _ in counters:
                if counter not in used:
                    yield Finding(
                        rule=self.name,
                        path=module.rel,
                        line=fn.lineno,
                        message=(
                            f"{qualname} does not report {spec.class_name} counter "
                            f"{counter!r}"
                        ),
                        hint=f"add {counter!r} to the report alongside the other counters",
                    )
