"""format-roundtrip: every footer/segment field survives serialize+parse.

The ``.corra`` container's metadata lives in dataclasses
(``ColumnSegment``, ``BlockEntry``, ``TableFooter``) that are serialised
by hand — a field added to the dataclass but forgotten in ``to_dict`` is
silently dropped on write; forgotten in ``from_dict`` it deserialises to
its default and corrupts nothing until a reader depends on it.  Format
v2 and v3 both grew these classes, and nothing but reviewer attention
kept the three sites in sync.

The rule: for every dataclass in the configured format modules that has
a recognised serialize/deserialize method pair (``to_dict``/``from_dict``,
``to_bytes``/``from_bytes``, ``pack``/``unpack``), each public annotated
field must be mentioned in *both* bodies — as an attribute access, a
keyword argument or a string key.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import Finding, Project, Rule, docstring_constants

__all__ = ["FormatRoundtripRule"]

#: (serialize, deserialize) method-name pairs the rule recognises.
_PAIRS: tuple[tuple[str, str], ...] = (
    ("to_dict", "from_dict"),
    ("to_bytes", "from_bytes"),
    ("pack", "unpack"),
)

DEFAULT_FORMAT_MODULES: tuple[str, ...] = ("storage/format.py",)


def _public_fields(cls: ast.ClassDef) -> list[str]:
    fields = []
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            name = stmt.target.id
            if not name.startswith("_") and not name.isupper():
                fields.append(name)
    return fields


def _mentioned_names(fn: ast.FunctionDef) -> set[str]:
    """Names referenced in ``fn``, excluding its docstring prose."""
    docstrings = docstring_constants(fn)
    names: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and id(node) not in docstrings
        ):
            names.add(node.value)
        elif isinstance(node, ast.keyword) and node.arg is not None:
            names.add(node.arg)
        elif isinstance(node, ast.Name):
            names.add(node.id)
    return names


class FormatRoundtripRule(Rule):
    name = "format-roundtrip"
    description = (
        "every field of the storage/format.py dataclasses appears in both "
        "the serialize and the deserialize method"
    )

    def __init__(self, modules: tuple[str, ...] = DEFAULT_FORMAT_MODULES):
        self._modules = modules

    def check(self, project: Project) -> Iterator[Finding]:
        for suffix in self._modules:
            module = project.find(suffix)
            if module is None:
                continue
            for node in module.tree.body:
                if not isinstance(node, ast.ClassDef):
                    continue
                methods = {
                    stmt.name: stmt
                    for stmt in node.body
                    if isinstance(stmt, ast.FunctionDef)
                }
                for ser_name, de_name in _PAIRS:
                    ser = methods.get(ser_name)
                    de = methods.get(de_name)
                    if ser is None or de is None:
                        continue
                    fields = _public_fields(node)
                    for side, fn in ((ser_name, ser), (de_name, de)):
                        mentioned = _mentioned_names(fn)
                        for field in fields:
                            if field not in mentioned:
                                yield Finding(
                                    rule=self.name,
                                    path=module.rel,
                                    line=fn.lineno,
                                    message=(
                                        f"{node.name}.{side}() drops field {field!r} "
                                        f"from the round trip"
                                    ),
                                    hint=(
                                        f"thread {field!r} through both {ser_name}() "
                                        f"and {de_name}() (readers of older files can "
                                        "default it)"
                                    ),
                                )
