"""span-discipline: tracer spans are opened with ``with``, never by hand.

The tracing subsystem (:mod:`repro.query.tracing`) keeps a per-thread
stack of open spans; :meth:`Span.__exit__ <repro.query.tracing.Span>` is
what pops the stack, stamps the end time and hands the span to the
tracer.  A span obtained from ``tracer.span(...)`` (or an adoption from
``tracer.adopt(...)``) that is *not* immediately used as a context
manager therefore corrupts the stack on the first exception: the span
never closes, every later span on that thread parents under it, and the
trace silently reports a tree that never happened.  Exactly the class of
bug that passes every correctness test — the query still answers — while
making the observability data wrong.

The rule flags any call of an attribute named ``span`` or ``adopt`` that
is not the context expression of a ``with`` item.  The receiver is not
type-resolved on purpose: a handle that *looks* like a tracer must follow
the discipline, and the rare legitimate non-tracer ``.span()`` call (a
regex ``Match.span()``, say) can carry an inline
``# corra: ignore[span-discipline]`` marker with its reason.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import Finding, Project, Rule

__all__ = ["SpanDisciplineRule"]

_SPAN_METHODS = ("span", "adopt")


class SpanDisciplineRule(Rule):
    name = "span-discipline"
    description = (
        "tracer.span()/tracer.adopt() must be the context expression of a "
        "with statement (a span that never __exit__s corrupts the span stack)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            with_items: set[int] = set()
            for node in module.walk():
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        with_items.add(id(item.context_expr))
            for node in module.walk():
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SPAN_METHODS
                    and id(node) not in with_items
                ):
                    yield Finding(
                        rule=self.name,
                        path=module.rel,
                        line=node.lineno,
                        message=(
                            f"call to .{node.func.attr}() outside a with statement"
                        ),
                        hint=(
                            f"open it as `with ....{node.func.attr}(...):` so the span "
                            "closes on every path (or suppress a non-tracer call inline)"
                        ),
                    )
