"""kernel-purity: compressed-domain kernels must stay in the encoded domain.

The whole value proposition of ``query/kernels.py`` (and of the paper's
compressed-domain execution) is that predicate masks, aggregates and
group keys are computed on run-lengths, FOR/delta words and dictionary
codes — *never* by decoding a column or materialising the string heap.
One stray ``column.decode()`` inside a kernel silently turns the fast
path into the slow path while every test still passes; the perf
regression only shows up in benchmarks.  This rule makes the purity
contract structural: inside the configured kernel modules, calls to the
materialisation API (``decode``, ``gather``, ``gather_with_reference``,
``materialize_columns``, heap accessors) are findings.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import Finding, Project, Rule

__all__ = ["KernelPurityRule"]

#: Method calls that leave the encoded domain.
_IMPURE_ATTR_CALLS = {
    "decode",
    "decode_column",
    "gather",
    "gather_with_reference",
    "materialize",
    "to_table",
}

#: Module-level helpers that materialise heap values.
_IMPURE_NAME_CALLS = {"materialize_columns", "resolve_block"}

#: Modules whose code must stay encoded-domain pure.
DEFAULT_KERNEL_MODULES: tuple[str, ...] = ("query/kernels.py",)


class KernelPurityRule(Rule):
    name = "kernel-purity"
    description = (
        "query/kernels.py never calls decode/gather/heap materialisation — "
        "kernels operate on runs, words and codes only"
    )

    def __init__(self, modules: tuple[str, ...] = DEFAULT_KERNEL_MODULES):
        self._modules = modules

    def check(self, project: Project) -> Iterator[Finding]:
        for suffix in self._modules:
            module = project.find(suffix)
            if module is None:
                continue
            for node in module.walk():
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                impure = None
                if isinstance(func, ast.Attribute) and func.attr in _IMPURE_ATTR_CALLS:
                    impure = func.attr
                elif isinstance(func, ast.Name) and func.id in _IMPURE_NAME_CALLS:
                    impure = func.id
                if impure is not None:
                    yield Finding(
                        rule=self.name,
                        path=module.rel,
                        line=node.lineno,
                        message=f"kernel module calls materialising API {impure!r}",
                        hint=(
                            "kernels must work on encoded values (run_values, "
                            "compare_range, code spaces); decode in scan.py's "
                            "fallback path instead"
                        ),
                    )
