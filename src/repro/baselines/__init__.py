"""Baselines: best single-column configuration, uncompressed storage, and C3."""

from .c3 import C3SchemeEstimate, C3Selector, dfor_size, numerical_size, one_to_one_size
from .single_column import BaselineReport, SingleColumnBaseline
from .uncompressed import UncompressedBaseline

__all__ = [
    "SingleColumnBaseline",
    "BaselineReport",
    "UncompressedBaseline",
    "C3Selector",
    "C3SchemeEstimate",
    "dfor_size",
    "numerical_size",
    "one_to_one_size",
]
