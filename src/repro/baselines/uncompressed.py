"""The "uncompressed" configuration of the paper's latency experiments.

Figures 6 and 7 include a bar where "the query is directly executed over the
uncompressed column(s)": values are stored verbatim (plain encoding), so a
positional fetch needs no decoding work at all.  This module builds such a
relation so the latency benchmarks can include that third configuration.
"""

from __future__ import annotations

from ..core.plan import CompressionPlan, PlanBuilder, TableCompressor
from ..storage.block import DEFAULT_BLOCK_SIZE
from ..storage.relation import Relation
from ..storage.table import Table

__all__ = ["UncompressedBaseline"]


class UncompressedBaseline:
    """Store every column with the plain (verbatim) encoding."""

    def __init__(self, block_size: int = DEFAULT_BLOCK_SIZE):
        self._block_size = block_size

    def plan(self, table: Table) -> CompressionPlan:
        builder = PlanBuilder(table.schema)
        for name in table.schema.names:
            builder.vertical(name, "plain")
        return builder.build()

    def compress(self, table: Table) -> Relation:
        """Build a relation whose blocks hold plain-encoded columns."""
        compressor = TableCompressor(self.plan(table), block_size=self._block_size)
        return compressor.compress(table)

    def report_sizes(self, table: Table) -> dict[str, int]:
        """Uncompressed per-column sizes (what Table 2 calls the raw size)."""
        return {name: table.uncompressed_size(name) for name in table.schema.names}
