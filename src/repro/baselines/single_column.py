"""The paper's baseline: best single-column scheme per column.

"We compare Corra to a baseline that employs the best single-column encoding
scheme for each column.  We use FOR- or Dict-encoding schemes, followed by a
bit-packing."  This module wraps that policy into a convenient object that
compresses whole tables into relations and reports per-column sizes, so the
benchmarks can put baseline and Corra numbers side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.plan import CompressionPlan, TableCompressor
from ..encodings.selector import BestOfSelector, SelectionResult
from ..storage.block import DEFAULT_BLOCK_SIZE
from ..storage.relation import Relation
from ..storage.table import Table

__all__ = ["SingleColumnBaseline", "BaselineReport"]


@dataclass
class BaselineReport:
    """Per-column baseline sizes plus the chosen scheme names."""

    column_sizes: dict[str, int]
    scheme_names: dict[str, str]
    n_rows: int

    @property
    def total_size(self) -> int:
        return sum(self.column_sizes.values())

    def size_of(self, column: str) -> int:
        return self.column_sizes[column]

    def scheme_of(self, column: str) -> str:
        return self.scheme_names[column]


class SingleColumnBaseline:
    """Best-of FOR/Dict (+bit-packing) baseline over whole tables."""

    def __init__(
        self, selector: BestOfSelector | None = None, block_size: int = DEFAULT_BLOCK_SIZE
    ):
        self._selector = selector if selector is not None else BestOfSelector()
        self._block_size = block_size

    @property
    def selector(self) -> BestOfSelector:
        return self._selector

    def select_column(self, table: Table, column: str) -> SelectionResult:
        """Best vertical encoding of one column (whole-table granularity)."""
        return self._selector.select(table.column(column), table.dtype(column))

    def report(self, table: Table) -> BaselineReport:
        """Baseline sizes and scheme choices for every column of ``table``."""
        sizes = {}
        schemes = {}
        for spec in table.schema:
            result = self.select_column(table, spec.name)
            sizes[spec.name] = result.size_bytes
            schemes[spec.name] = result.scheme_name
        return BaselineReport(
            column_sizes=sizes, scheme_names=schemes, n_rows=table.n_rows
        )

    def compress(self, table: Table) -> Relation:
        """Compress ``table`` with the baseline policy, block by block."""
        plan = CompressionPlan.vertical_only(table.schema)
        compressor = TableCompressor(
            plan, selector=self._selector, block_size=self._block_size
        )
        return compressor.compress(table)
