"""C3 comparator (Glas et al.) — the independent correlation-aware system.

The paper's Table 3 compares Corra against C3, the independent work that also
exploits column correlations on top of BtrBlocks.  C3 is closed source, so
this module reimplements the three C3 encoding schemes the paper describes,
just well enough to regenerate the comparison's shape:

* **DFOR** — "a hierarchical encoding where the diff-encoded column is
  compressed via FOR": difference to the reference, then frame-of-reference
  + bit-packing applied per mini-block, which can shave a little extra when
  the differences cluster locally.
* **Numerical** — "generalizes the non-hierarchical encoding scheme as an
  affine function": fit ``target ≈ round(alpha * reference + beta)`` and
  store the bit-packed residuals.  This is what lets C3 beat plain
  diff-encoding on (pickup, dropoff) when the correlation is affine rather
  than purely additive.
* **1-to-1** — "specialized for the case where one could directly infer the
  diff-encoded column from the reference column": store one value per
  distinct reference value plus an exception list for rows deviating from
  that mode.

:class:`C3Selector` picks the smallest of the three per column pair, which is
how the paper lets "C3 choose the (correlation-aware) encoding scheme for a
given pair of columns".  C3 does not support multiple reference columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bitpack import packed_size_bytes, required_bits
from ..encodings.base import ensure_int_array
from ..errors import EncodingError
from ..storage.table import Table

__all__ = [
    "C3SchemeEstimate",
    "dfor_size",
    "numerical_size",
    "one_to_one_size",
    "c3_hierarchical_size",
    "C3Selector",
]

#: Mini-block length used by DFOR's per-block frames (BtrBlocks-style).
_DFOR_MINIBLOCK = 65_536

#: Metadata charged per column by every C3 scheme (header, widths).
_METADATA_BYTES = 16


@dataclass(frozen=True)
class C3SchemeEstimate:
    """Size estimate of one C3 scheme applied to one column pair."""

    scheme: str
    size_bytes: int
    detail: str = ""


def dfor_size(target, reference) -> int:
    """Size of C3's DFOR: per-mini-block FOR over the differences."""
    tgt = ensure_int_array(target)
    ref = ensure_int_array(reference)
    if tgt.shape != ref.shape:
        raise EncodingError("target and reference must have equal length")
    if tgt.size == 0:
        return _METADATA_BYTES
    diffs = tgt - ref
    total = _METADATA_BYTES
    for start in range(0, diffs.size, _DFOR_MINIBLOCK):
        block = diffs[start:start + _DFOR_MINIBLOCK]
        width = required_bits(int(block.max() - block.min()))
        total += packed_size_bytes(block.size, width)
        total += 8 + 1  # per-mini-block frame + width byte
    return total


def numerical_size(target, reference) -> int:
    """Size of C3's Numerical scheme: affine fit + bit-packed residuals."""
    tgt = ensure_int_array(target).astype(np.float64)
    ref = ensure_int_array(reference).astype(np.float64)
    if tgt.shape != ref.shape:
        raise EncodingError("target and reference must have equal length")
    if tgt.size == 0:
        return _METADATA_BYTES
    if np.all(ref == ref[0]):
        alpha, beta = 0.0, float(np.round(np.median(tgt)))
    else:
        alpha, beta = np.polyfit(ref, tgt, deg=1)
    predicted = np.round(alpha * ref + beta).astype(np.int64)
    residuals = ensure_int_array(target) - predicted
    width = required_bits(int(residuals.max() - residuals.min()))
    # Residual payload + the affine coefficients (two doubles) + frame.
    return packed_size_bytes(residuals.size, width) + 16 + 8 + _METADATA_BYTES


def one_to_one_size(target, reference) -> int:
    """Size of C3's 1-to-1 scheme: per-reference-value mode + exceptions.

    Every distinct reference value maps to its most frequent target value
    (stored once); rows deviating from that mode are stored as exceptions
    (4-byte row id + 8-byte value).
    """
    if len(target) != len(reference):
        raise EncodingError("target and reference must have equal length")
    n = len(target)
    if n == 0:
        return _METADATA_BYTES

    target_arr = np.asarray(target, dtype=object)
    ref_arr = np.asarray(reference, dtype=object)
    _, target_codes = np.unique(target_arr, return_inverse=True)
    ref_domain, ref_codes = np.unique(ref_arr, return_inverse=True)
    n_targets = int(target_codes.max()) + 1

    pair_key = ref_codes.astype(np.int64) * n_targets + target_codes
    pairs, counts = np.unique(pair_key, return_counts=True)
    pair_group = pairs // n_targets

    # Most frequent target per reference value ("the" inferred value).
    mode_count = np.zeros(len(ref_domain), dtype=np.int64)
    order = np.argsort(counts)[::-1]
    seen: set[int] = set()
    for idx in order:
        group = int(pair_group[idx])
        if group not in seen:
            mode_count[group] = int(counts[idx])
            seen.add(group)

    n_exceptions = n - int(mode_count.sum())
    mapping_bytes = 8 * len(ref_domain)
    exception_bytes = n_exceptions * (4 + 8)
    return mapping_bytes + exception_bytes + _METADATA_BYTES


def c3_hierarchical_size(target, reference) -> int:
    """Size of C3's hierarchical family on the pair.

    The paper notes that C3 "explores more implementations of hierarchical
    encoding schemes, e.g., using FOR for the diff-encoded column"; for size
    purposes those coincide with Corra's hierarchical layout (per-group value
    lists + group-local codes), so this reuses that estimator.
    """
    from ..core.hierarchical import HierarchicalEncoding

    return HierarchicalEncoding().estimate_size(target, reference)


class C3Selector:
    """Let C3 pick its best scheme for a column pair (as in Table 3)."""

    def estimates(self, table: Table, target: str, reference: str) -> list[C3SchemeEstimate]:
        """Size of every applicable C3 scheme on the pair (target, reference)."""
        target_values = table.column(target)
        reference_values = table.column(reference)
        target_dtype = table.dtype(target)
        reference_dtype = table.dtype(reference)

        estimates: list[C3SchemeEstimate] = []
        if target_dtype.is_integer_like and reference_dtype.is_integer_like:
            estimates.append(
                C3SchemeEstimate("DFOR", dfor_size(target_values, reference_values))
            )
            estimates.append(
                C3SchemeEstimate(
                    "Numerical", numerical_size(target_values, reference_values)
                )
            )
        estimates.append(
            C3SchemeEstimate(
                "1-to-1", one_to_one_size(target_values, reference_values)
            )
        )
        estimates.append(
            C3SchemeEstimate(
                "Hierarchical", c3_hierarchical_size(target_values, reference_values)
            )
        )
        return estimates

    def best(self, table: Table, target: str, reference: str) -> C3SchemeEstimate:
        """The smallest C3 scheme for the pair."""
        estimates = self.estimates(table, target, reference)
        return min(estimates, key=lambda e: e.size_bytes)
