"""Synthetic NYC Yellow-Taxi trips generator (timestamps + monetary columns).

Two correlations from the paper live in this dataset:

* (``pickup``, ``dropoff``) — trips are short, so ``dropoff − pickup`` spans
  far fewer bits than an absolute timestamp (Table 2's 30.6 % saving).
* ``total_amount`` vs the eight other monetary columns — most totals follow
  one of four arithmetic rules over the column groups A/B/C (§2.3, Table 1);
  a small residue (0.32 %) follows no rule and lands in the outlier region.

The generator reproduces the paper's exact rule mixture::

    A           31.19 %        (code 00)
    A + B       62.44 %        (code 01)
    A + C        2.69 %        (code 10)
    A + B + C    3.33 %        (code 11)
    none         0.32 %        (outlier)

Monetary values are fixed-point cents, cleaned the way the paper cleans the
real data: no negative amounts, totals below $100, and no drop-off before
pickup.
"""

from __future__ import annotations

import numpy as np

from ..core.multi_reference import ArithmeticRule, MultiReferenceConfig, ReferenceGroup
from ..dtypes import DECIMAL, INT64, TIMESTAMP
from ..storage.table import Table
from .base import DatasetGenerator

__all__ = [
    "TaxiGenerator",
    "taxi_multi_reference_config",
    "TAXI_GROUP_A_COLUMNS",
    "TAXI_GROUP_B_COLUMNS",
    "TAXI_GROUP_C_COLUMNS",
    "TAXI_RULE_MIXTURE",
]

#: Group A: the six base monetary components (paper §2.3).
TAXI_GROUP_A_COLUMNS = (
    "mta_tax",
    "fare_amount",
    "improvement_surcharge",
    "extra",
    "tip_amount",
    "tolls_amount",
)

#: Group B: the congestion surcharge.
TAXI_GROUP_B_COLUMNS = ("congestion_surcharge",)

#: Group C: the airport fee.
TAXI_GROUP_C_COLUMNS = ("airport_fee",)

#: The rule mixture of Table 1: (rule groups, probability).
TAXI_RULE_MIXTURE = (
    (("A",), 0.3119),
    (("A", "B"), 0.6244),
    (("A", "C"), 0.0269),
    (("A", "B", "C"), 0.0333),
)

#: Probability that a row follows none of the rules (outlier row in Table 1).
TAXI_OUTLIER_PROBABILITY = 0.0032

#: Start of the generated year (2019-01-01 UTC) in epoch seconds.
_YEAR_START = 1_546_300_800

#: Length of the generated year in seconds.
_YEAR_SECONDS = 365 * 24 * 3600


def taxi_multi_reference_config() -> MultiReferenceConfig:
    """The paper's multi-reference configuration for ``total_amount``."""
    groups = (
        ReferenceGroup("A", TAXI_GROUP_A_COLUMNS),
        ReferenceGroup("B", TAXI_GROUP_B_COLUMNS),
        ReferenceGroup("C", TAXI_GROUP_C_COLUMNS),
    )
    rules = tuple(ArithmeticRule(tuple(rule)) for rule, _ in TAXI_RULE_MIXTURE)
    return MultiReferenceConfig(groups=groups, rules=rules)


class TaxiGenerator(DatasetGenerator):
    """One year of yellow-taxi trips with the paper's monetary rule mixture."""

    name = "taxi"
    paper_rows = 37_891_377
    default_rows = 100_000

    def generate(self, n_rows: int | None = None, seed: int = 42) -> Table:
        rows = self._resolve_rows(n_rows)
        rng = self._rng(seed)

        pickup = _YEAR_START + rng.integers(0, _YEAR_SECONDS, size=rows, dtype=np.int64)
        # Ride durations: mostly minutes, plus the thin tail of multi-hour
        # "rides" (meter left running, data glitches) present in the real TLC
        # feed.  The tail is what keeps the difference column at ~17 bits while
        # the absolute timestamps need 25 — the ~30 % saving of Table 2.
        duration = 60 + rng.exponential(900.0, size=rows).astype(np.int64)
        long_ride = rng.random(rows) < 0.003
        duration[long_ride] = rng.integers(
            10_000, 120_001, size=int(long_ride.sum()), dtype=np.int64
        )
        duration = np.minimum(duration, 120_000)
        dropoff = pickup + duration

        # Monetary columns (cents).  Kept small enough that totals stay < $100,
        # matching the paper's cleaning step.
        fare_amount = rng.integers(250, 5_001, size=rows, dtype=np.int64)
        mta_tax = np.full(rows, 50, dtype=np.int64)
        improvement_surcharge = np.full(rows, 30, dtype=np.int64)
        extra = rng.choice(np.array([0, 50, 100], dtype=np.int64), size=rows, p=[0.5, 0.3, 0.2])
        tip_ratio = rng.choice(
            np.array([0, 10, 15, 20, 25], dtype=np.int64),
            size=rows,
            p=[0.35, 0.15, 0.25, 0.2, 0.05],
        )
        tip_amount = (fare_amount * tip_ratio) // 100
        tolls_amount = rng.choice(
            np.array([0, 612, 1_025], dtype=np.int64), size=rows, p=[0.92, 0.06, 0.02]
        )

        # Surcharges exist on (almost) every row so the four rules stay
        # distinguishable; whether they are *included* in the total is what the
        # rule assignment below decides.
        congestion_surcharge = np.full(rows, 250, dtype=np.int64)
        airport_fee = np.full(rows, 125, dtype=np.int64)

        group_a = mta_tax + fare_amount + improvement_surcharge + extra + tip_amount + tolls_amount
        group_b = congestion_surcharge
        group_c = airport_fee

        rule_values = np.stack(
            [
                group_a,
                group_a + group_b,
                group_a + group_c,
                group_a + group_b + group_c,
            ]
        )

        probabilities = np.asarray(
            [p for _, p in TAXI_RULE_MIXTURE] + [TAXI_OUTLIER_PROBABILITY],
            dtype=np.float64,
        )
        # The published percentages sum to 99.97 %; renormalise the residue away.
        probabilities /= probabilities.sum()
        assignment = rng.choice(len(probabilities), size=rows, p=probabilities)

        total_amount = np.empty(rows, dtype=np.int64)
        regular = assignment < len(TAXI_RULE_MIXTURE)
        total_amount[regular] = rule_values[assignment[regular], np.flatnonzero(regular)]
        # Outliers: a total that matches none of the four rules (manual
        # adjustments, disputes, rounding in the source data).
        outlier_positions = np.flatnonzero(~regular)
        total_amount[outlier_positions] = (
            rule_values[1, outlier_positions]
            + rng.integers(1, 40, size=outlier_positions.size, dtype=np.int64) * 3
            + 1
        )

        passenger_count = rng.integers(1, 7, size=rows, dtype=np.int64)
        trip_distance = np.maximum(1, (duration * 8) // 60)  # ~8 units per minute

        return Table.from_columns(
            [
                ("pickup", TIMESTAMP, pickup),
                ("dropoff", TIMESTAMP, dropoff),
                ("passenger_count", INT64, passenger_count),
                ("trip_distance", INT64, trip_distance),
                ("fare_amount", DECIMAL, fare_amount),
                ("extra", DECIMAL, extra),
                ("mta_tax", DECIMAL, mta_tax),
                ("tip_amount", DECIMAL, tip_amount),
                ("tolls_amount", DECIMAL, tolls_amount),
                ("improvement_surcharge", DECIMAL, improvement_surcharge),
                ("congestion_surcharge", DECIMAL, congestion_surcharge),
                ("airport_fee", DECIMAL, airport_fee),
                ("total_amount", DECIMAL, total_amount),
            ]
        )

    def generate_monetary_only(self, n_rows: int | None = None, seed: int = 42) -> Table:
        """Only the nine monetary columns used in §2.3 / Table 1 / Fig. 8."""
        table = self.generate(n_rows, seed)
        columns = list(TAXI_GROUP_A_COLUMNS + TAXI_GROUP_B_COLUMNS + TAXI_GROUP_C_COLUMNS)
        columns.append("total_amount")
        return table.select(columns)

    def generate_timestamps_only(self, n_rows: int | None = None, seed: int = 42) -> Table:
        """Only the (pickup, dropoff) pair used in Table 2."""
        return self.generate(n_rows, seed).select(["pickup", "dropoff"])
