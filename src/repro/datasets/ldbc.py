"""Synthetic LDBC SNB ``message`` generator (countryid, ip).

LDBC's social-network benchmark assigns every message a location country and
the IP address it was posted from; IPs are drawn from per-country address
pools, so the pair (``countryid``, ``ip``) is strongly hierarchical: the
global number of distinct IPs is large (≈1.5 M at SF 30), but each country
only ever uses its own pool.

The regime that matters for the paper's 17.1 % saving (Table 2) is the ratio
between the global distinct-IP count (sets the baseline dictionary code
width, ≈21 bits) and the largest per-country pool (sets the hierarchical
local-code width, ≈17 bits).  The generator reproduces that: message counts
follow a Zipf-like country popularity, per-country pool sizes are
proportional to popularity, and the global pool size scales with the row
count (1 distinct IP per ~50 messages, as in the SF 30 data).
"""

from __future__ import annotations

import numpy as np

from ..dtypes import INT64, STRING, TIMESTAMP
from ..storage.table import Table
from .base import DatasetGenerator

__all__ = ["LdbcMessageGenerator"]

#: Number of countries in the LDBC universe ("place" hierarchy).
_N_COUNTRIES = 111


def _format_ips(ip_integers: np.ndarray) -> list[str]:
    """Render 32-bit integers as dotted-quad IPv4 strings."""
    a = (ip_integers >> 24) & 0xFF
    b = (ip_integers >> 16) & 0xFF
    c = (ip_integers >> 8) & 0xFF
    d = ip_integers & 0xFF
    return [f"{w}.{x}.{y}.{z}" for w, x, y, z in zip(a, b, c, d)]


class LdbcMessageGenerator(DatasetGenerator):
    """LDBC ``message`` with a hierarchical (countryid, ip) pair."""

    name = "ldbc_message"
    paper_rows = 76_388_857  # SF 30, as used in the paper
    default_rows = 100_000

    def __init__(
        self,
        n_countries: int = _N_COUNTRIES,
        messages_per_distinct_ip: int = 50,
        popularity_skew: float = 1.0,
    ):
        self.n_countries = int(n_countries)
        self.messages_per_distinct_ip = int(messages_per_distinct_ip)
        self.popularity_skew = float(popularity_skew)

    def _country_popularity(self) -> np.ndarray:
        """Zipf-like share of messages per country (top country ≈ 10 %)."""
        ranks = np.arange(1, self.n_countries + 1, dtype=np.float64)
        weights = 1.0 / ranks**self.popularity_skew
        return weights / weights.sum()

    def generate(self, n_rows: int | None = None, seed: int = 42) -> Table:
        rows = self._resolve_rows(n_rows)
        rng = self._rng(seed)
        popularity = self._country_popularity()

        n_distinct_ips = max(self.n_countries, rows // self.messages_per_distinct_ip)
        # Per-country pool sizes proportional to popularity, at least one IP.
        pool_sizes = np.maximum(
            1, np.round(popularity * n_distinct_ips).astype(np.int64)
        )

        # Disjoint per-country pools carved out of the 32-bit address space:
        # country c owns a /16-style slice so its IPs never collide with
        # another country's.
        pool_bases = (np.arange(self.n_countries, dtype=np.int64) + 1) << 20
        country_ids = rng.choice(self.n_countries, size=rows, p=popularity).astype(np.int64)
        within_pool = (
            rng.random(rows) * pool_sizes[country_ids]
        ).astype(np.int64)
        ip_integers = pool_bases[country_ids] + within_pool

        # Message creation timestamps over roughly three years.
        creation = rng.integers(
            1_262_304_000, 1_356_998_400, size=rows, dtype=np.int64
        )
        message_ids = np.arange(rows, dtype=np.int64)
        lengths = rng.integers(1, 2001, size=rows, dtype=np.int64)

        return Table.from_columns(
            [
                ("messageid", INT64, message_ids),
                ("creationdate", TIMESTAMP, creation),
                ("countryid", INT64, country_ids),
                ("ip", STRING, _format_ips(ip_integers)),
                ("length", INT64, lengths),
            ]
        )

    def generate_pair_only(self, n_rows: int | None = None, seed: int = 42) -> Table:
        """Only the (countryid, ip) pair used in Table 2 and Figs. 5/7."""
        return self.generate(n_rows, seed).select(["countryid", "ip"])
