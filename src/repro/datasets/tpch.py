"""Synthetic TPC-H ``lineitem`` generator (date columns and friends).

The TPC-H specification fully determines how the three date columns relate
to each other (clause 4.2.3 of the spec, reproduced in dbgen):

* ``o_orderdate``  — uniform in [1992-01-01, 1998-12-01 − 151 days]
* ``l_shipdate``   — orderdate + uniform(1, 121) days
* ``l_commitdate`` — orderdate + uniform(30, 90) days
* ``l_receiptdate``— shipdate + uniform(1, 30) days

These bounded offsets are precisely the correlation Corra's non-hierarchical
encoding exploits (Fig. 1 / §2.1): ``receiptdate − shipdate`` needs 5 bits,
``commitdate − shipdate`` needs 8 bits, while each date on its own spans
roughly 2,500 days (12 bits).  Because the generator follows the spec's
distributions, the *saving rates* measured on it match the paper's Table 2
regardless of the row count used.

A few non-date columns (order key, quantity, extended price) are included so
examples and tests can exercise mixed-schema plans.
"""

from __future__ import annotations

import datetime as _dt

import numpy as np

from ..dtypes import DATE, DECIMAL, INT64, date_to_days
from ..storage.table import Table
from .base import DatasetGenerator

__all__ = ["TpchLineitemGenerator", "rows_for_scale_factor"]

#: Rows per TPC-H scale factor unit (SF 1 has 6,001,215 lineitem rows).
_ROWS_PER_SF = 6_001_215

#: First possible order date in TPC-H.
_START_DATE = _dt.date(1992, 1, 1)

#: Last possible order date (1998-12-01 minus 151 days, per the spec).
_END_DATE = _dt.date(1998, 12, 1) - _dt.timedelta(days=151)


def rows_for_scale_factor(scale_factor: float) -> int:
    """Approximate ``lineitem`` row count for a TPC-H scale factor."""
    return int(round(scale_factor * _ROWS_PER_SF))


class TpchLineitemGenerator(DatasetGenerator):
    """TPC-H ``lineitem`` with spec-faithful date correlations."""

    name = "tpch_lineitem"
    paper_rows = 59_986_052  # SF 10, as used in the paper
    default_rows = 100_000

    #: The columns relevant to the paper's experiments.
    DATE_COLUMNS = ("l_shipdate", "l_commitdate", "l_receiptdate")

    def generate(self, n_rows: int | None = None, seed: int = 42) -> Table:
        """Generate a lineitem sample of ``n_rows`` rows."""
        rows = self._resolve_rows(n_rows)
        rng = self._rng(seed)

        start_day = int(date_to_days([_START_DATE])[0])
        end_day = int(date_to_days([_END_DATE])[0])

        orderdate = rng.integers(start_day, end_day + 1, size=rows, dtype=np.int64)
        shipdate = orderdate + rng.integers(1, 122, size=rows, dtype=np.int64)
        commitdate = orderdate + rng.integers(30, 91, size=rows, dtype=np.int64)
        receiptdate = shipdate + rng.integers(1, 31, size=rows, dtype=np.int64)

        orderkey = np.sort(rng.integers(1, max(rows * 4, 2), size=rows, dtype=np.int64))
        linenumber = rng.integers(1, 8, size=rows, dtype=np.int64)
        quantity = rng.integers(1, 51, size=rows, dtype=np.int64)
        # Extended price in cents: quantity * part price (roughly 900..100k cents).
        part_price = rng.integers(90_000, 200_001, size=rows, dtype=np.int64) // 100
        extendedprice = quantity * part_price

        return Table.from_columns(
            [
                ("l_orderkey", INT64, orderkey),
                ("l_linenumber", INT64, linenumber),
                ("l_quantity", INT64, quantity),
                ("l_extendedprice", DECIMAL, extendedprice),
                ("l_orderdate", DATE, orderdate),
                ("l_shipdate", DATE, shipdate),
                ("l_commitdate", DATE, commitdate),
                ("l_receiptdate", DATE, receiptdate),
            ]
        )

    def generate_dates_only(self, n_rows: int | None = None, seed: int = 42) -> Table:
        """Only the three date columns used in Fig. 2 and Table 2."""
        table = self.generate(n_rows, seed)
        return table.select(self.DATE_COLUMNS)
