"""Synthetic DMV registrations generator (state, city, zip code).

The NYS "Vehicle, Snowmobile, and Boat Registrations" table records the
registrant's state, city and zip code.  Two hierarchical correlations matter
for the paper:

* (``city``, ``zip_code``): zip codes span the whole US range, so a vertical
  baseline needs ~16–17 bits per row, while one city only ever uses a few
  dozen zip codes, so the hierarchical local code fits in ~7–8 bits — the
  53.7 % saving of Table 2.  Most place names map to a single zip code
  (villages, hamlets); a handful of metropolises have up to ~200.
* (``state``, ``city``): most registrations are from New York, and New York
  alone contains the vast majority of the distinct city strings, so grouping
  cities by state barely narrows the code width — the paper's 1.8 % saving.
  The generator reproduces that skew (≈85 % of all distinct city names belong
  to NY).

Because the real table has 12.2 M rows, its value domains (tens of thousands
of distinct city strings and zip codes) would swamp a 100 k-row sample with
metadata that the full-size dataset amortises.  The generator therefore
scales the domain with the requested row count by default (keeping the
rows-per-distinct-value ratios of the real data) so that saving rates remain
representative at laptop-friendly sizes; pass explicit ``n_cities`` /
``n_zip_codes`` to pin the domain instead.
"""

from __future__ import annotations

import numpy as np

from ..dtypes import INT64, STRING
from ..storage.table import Table
from .base import DatasetGenerator

__all__ = ["DmvGenerator"]

#: Two-letter codes of the 50 US states plus DC; NY is listed first because
#: the registration table is overwhelmingly New-York-based.
_STATES = (
    "NY", "NJ", "CT", "PA", "MA", "FL", "VT", "CA", "TX", "OH", "VA", "NC",
    "MD", "IL", "MI", "GA", "NH", "RI", "SC", "AZ", "WA", "CO", "ME", "MN",
    "TN", "IN", "MO", "WI", "AL", "LA", "KY", "OR", "OK", "IA", "KS", "AR",
    "MS", "NM", "NE", "WV", "ID", "HI", "NV", "UT", "MT", "DE", "SD", "ND",
    "AK", "WY", "DC",
)

#: Rows per distinct city when scaling the domain with the row count.  The
#: real table has ~500 rows per distinct city string; using a smaller ratio at
#: laptop scale keeps the *code-width regime* of the full dataset (a city
#: dictionary of >= 2^12 entries) without needing millions of rows.
_ROWS_PER_CITY = 55

#: Rows per distinct zip code when scaling the domain.  Chosen so the vertical
#: baseline for ``zip_code`` stays at ~16-17 bits per row (as in the real
#: 45 k-zip domain) while hierarchical metadata stays amortised.
_ROWS_PER_ZIP = 22

#: Domain bounds so tiny/huge requests stay sensible.
_MIN_CITIES, _MAX_CITIES = 300, 28_000
_MIN_ZIPS, _MAX_ZIPS = 600, 46_000


class DmvGenerator(DatasetGenerator):
    """DMV registrations with hierarchical (state, city, zip) columns."""

    name = "dmv"
    paper_rows = 12_176_621
    default_rows = 100_000

    def __init__(
        self,
        n_cities: int | None = None,
        n_zip_codes: int | None = None,
        ny_city_share: float = 0.85,
        ny_row_share: float = 0.92,
        max_zips_per_city: int = 200,
    ):
        self.n_cities = n_cities
        self.n_zip_codes = n_zip_codes
        self.ny_city_share = float(ny_city_share)
        self.ny_row_share = float(ny_row_share)
        self.max_zips_per_city = int(max_zips_per_city)

    # -- domain sizing -------------------------------------------------------------

    def _domain_sizes(self, rows: int) -> tuple[int, int]:
        """Distinct city and zip counts for a given row count."""
        if self.n_cities is not None:
            n_cities = int(self.n_cities)
        else:
            n_cities = int(np.clip(rows // _ROWS_PER_CITY, _MIN_CITIES, _MAX_CITIES))
        if self.n_zip_codes is not None:
            n_zips = int(self.n_zip_codes)
        else:
            n_zips = int(np.clip(rows // _ROWS_PER_ZIP, _MIN_ZIPS, _MAX_ZIPS))
        return n_cities, max(n_zips, n_cities)

    # -- hierarchy construction --------------------------------------------------

    def _build_hierarchy(self, rng: np.random.Generator, n_cities: int, n_zips: int):
        """Assign cities to states and carve disjoint zip pools per city."""
        n_ny_cities = int(n_cities * self.ny_city_share)
        n_other_cities = n_cities - n_ny_cities

        city_state = np.zeros(n_cities, dtype=np.int64)
        city_state[n_ny_cities:] = 1 + rng.integers(
            0, len(_STATES) - 1, size=n_other_cities, dtype=np.int64
        )
        city_names = [
            f"{_STATES[int(state)]} CITY {index:05d}"
            for index, state in enumerate(city_state)
        ]

        # Zip fan-out: most cities have exactly one zip code; the extra zip
        # codes beyond one-per-city are concentrated in a few metropolises.
        fanout = np.ones(n_cities, dtype=np.int64)
        extra = n_zips - n_cities
        n_metros = max(1, n_cities // 50)
        metro_indices = np.arange(n_metros)
        metro_weights = 1.0 / np.arange(1, n_metros + 1, dtype=np.float64)
        metro_weights /= metro_weights.sum()
        extra_per_metro = np.minimum(
            np.round(metro_weights * extra).astype(np.int64),
            self.max_zips_per_city - 1,
        )
        fanout[metro_indices] += extra_per_metro

        zip_offsets = np.concatenate([[0], np.cumsum(fanout)])
        total_zips = int(zip_offsets[-1])
        # Disjoint zip values spread over the realistic 00501..99500 range.
        zip_values = 501 + (np.arange(total_zips, dtype=np.int64) * 99_000) // max(total_zips, 1)
        return city_state, city_names, fanout, zip_offsets, zip_values

    # -- generation ----------------------------------------------------------------

    def generate(self, n_rows: int | None = None, seed: int = 42) -> Table:
        rows = self._resolve_rows(n_rows)
        rng = self._rng(seed)
        n_cities, n_zips = self._domain_sizes(rows)
        city_state, city_names, fanout, zip_offsets, zip_values = self._build_hierarchy(
            rng, n_cities, n_zips
        )
        n_ny_cities = int(n_cities * self.ny_city_share)

        # Pick a city per row: NY rows choose among NY cities (Zipf-ish so the
        # metropolises dominate), out-of-state rows choose among the rest.
        is_ny = rng.random(rows) < self.ny_row_share
        ny_weights = 1.0 / np.arange(1, n_ny_cities + 1, dtype=np.float64) ** 0.7
        ny_weights /= ny_weights.sum()
        other_count = n_cities - n_ny_cities
        other_weights = 1.0 / np.arange(1, other_count + 1, dtype=np.float64) ** 0.7
        other_weights /= other_weights.sum()

        city_index = np.empty(rows, dtype=np.int64)
        n_ny_rows = int(is_ny.sum())
        city_index[is_ny] = rng.choice(n_ny_cities, size=n_ny_rows, p=ny_weights)
        city_index[~is_ny] = n_ny_cities + rng.choice(
            other_count, size=rows - n_ny_rows, p=other_weights
        )

        # Pick a zip within the chosen city's pool, skewed so the first zip of
        # each pool dominates (the "main" zip of the place).
        skew = rng.random(rows) ** 3
        within = (skew * fanout[city_index]).astype(np.int64)
        zip_codes = zip_values[zip_offsets[city_index] + within]

        states = [_STATES[int(s)] for s in city_state[city_index]]
        cities = [city_names[int(c)] for c in city_index]

        record_types = rng.choice(
            np.array([1, 2, 3], dtype=np.int64), size=rows, p=[0.93, 0.05, 0.02]
        )
        model_years = rng.integers(1960, 2021, size=rows, dtype=np.int64)

        return Table.from_columns(
            [
                ("record_type", INT64, record_types),
                ("state", STRING, states),
                ("city", STRING, cities),
                ("zip_code", INT64, zip_codes),
                ("model_year", INT64, model_years),
            ]
        )

    def generate_pair_only(self, n_rows: int | None = None, seed: int = 42) -> Table:
        """Only the (state, city, zip_code) columns used in Table 2."""
        return self.generate(n_rows, seed).select(["state", "city", "zip_code"])
