"""Registry of the synthetic dataset generators used by the experiments."""

from __future__ import annotations

from ..errors import ValidationError
from .base import DatasetGenerator
from .dmv import DmvGenerator
from .ldbc import LdbcMessageGenerator
from .taxi import TaxiGenerator
from .tpch import TpchLineitemGenerator

__all__ = ["available_datasets", "dataset_by_name"]


def available_datasets() -> dict[str, DatasetGenerator]:
    """Fresh generator instances for every dataset of the paper."""
    generators = (
        TpchLineitemGenerator(),
        LdbcMessageGenerator(),
        DmvGenerator(),
        TaxiGenerator(),
    )
    return {g.name: g for g in generators}


def dataset_by_name(name: str) -> DatasetGenerator:
    """Look up a dataset generator by its registry name."""
    datasets = available_datasets()
    if name not in datasets:
        raise ValidationError(
            f"unknown dataset {name!r}; available: {sorted(datasets)}"
        )
    return datasets[name]
