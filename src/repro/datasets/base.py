"""Common infrastructure for the synthetic dataset generators.

The paper evaluates on four datasets: TPC-H ``lineitem`` (SF 10), LDBC SNB
``message`` (SF 30), the NYS DMV registration table, and one year of NYC
Yellow-Taxi trips.  None of the real files are redistributable here, so each
generator synthesises data whose *correlation structure* matches the real
dataset's — the value ranges, per-group fan-outs and arithmetic-rule mixtures
that determine Corra's compressed sizes (see DESIGN.md, "Substitutions").

Generators are deterministic given a seed, scale linearly in ``n_rows``, and
report the row count of the paper's full-size dataset so results can be
rescaled for comparison.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from ..storage.table import Table

__all__ = ["DatasetGenerator", "DatasetInfo"]


@dataclass(frozen=True)
class DatasetInfo:
    """Descriptive metadata about a (synthetic stand-in for a) dataset."""

    name: str
    paper_rows: int
    description: str


class DatasetGenerator(abc.ABC):
    """Base class for deterministic synthetic dataset generators."""

    #: Registry name of the dataset (e.g. ``"tpch_lineitem"``).
    name: str = "abstract"

    #: Row count of the dataset as used in the paper's evaluation.
    paper_rows: int = 0

    #: Default row count for local runs (tests and examples).
    default_rows: int = 100_000

    @abc.abstractmethod
    def generate(self, n_rows: int | None = None, seed: int = 42) -> Table:
        """Generate ``n_rows`` rows (default :attr:`default_rows`)."""

    def info(self) -> DatasetInfo:
        return DatasetInfo(
            name=self.name,
            paper_rows=self.paper_rows,
            description=(self.__doc__ or "").strip().splitlines()[0] if self.__doc__ else "",
        )

    def _resolve_rows(self, n_rows: int | None) -> int:
        rows = self.default_rows if n_rows is None else int(n_rows)
        if rows < 0:
            raise ValidationError("n_rows must be non-negative")
        return rows

    @staticmethod
    def _rng(seed: int) -> np.random.Generator:
        return np.random.default_rng(seed)

    def scale_to_paper(self, size_bytes: int, n_rows: int) -> float:
        """Linearly extrapolate a measured size to the paper's row count.

        Valid because every per-row payload in this library scales linearly
        in the number of rows while metadata stays (near-)constant.
        """
        if n_rows <= 0:
            raise ValidationError("n_rows must be positive to rescale")
        return size_bytes * (self.paper_rows / n_rows)
