"""Synthetic stand-ins for the paper's four evaluation datasets.

Each generator reproduces the correlation structure that drives Corra's
results (see DESIGN.md for the substitution rationale): TPC-H ``lineitem``
date offsets, LDBC ``message`` country/IP hierarchy, DMV state/city/zip
hierarchy, and the Taxi monetary rule mixture of Table 1.
"""

from .base import DatasetGenerator, DatasetInfo
from .dmv import DmvGenerator
from .ldbc import LdbcMessageGenerator
from .registry import available_datasets, dataset_by_name
from .taxi import (
    TAXI_GROUP_A_COLUMNS,
    TAXI_GROUP_B_COLUMNS,
    TAXI_GROUP_C_COLUMNS,
    TAXI_RULE_MIXTURE,
    TaxiGenerator,
    taxi_multi_reference_config,
)
from .tpch import TpchLineitemGenerator, rows_for_scale_factor

__all__ = [
    "DatasetGenerator",
    "DatasetInfo",
    "TpchLineitemGenerator",
    "rows_for_scale_factor",
    "LdbcMessageGenerator",
    "DmvGenerator",
    "TaxiGenerator",
    "taxi_multi_reference_config",
    "TAXI_GROUP_A_COLUMNS",
    "TAXI_GROUP_B_COLUMNS",
    "TAXI_GROUP_C_COLUMNS",
    "TAXI_RULE_MIXTURE",
    "available_datasets",
    "dataset_by_name",
]
