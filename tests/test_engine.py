"""The shared Engine: config consolidation, memoized state, deprecations."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core import CompressionPlan, TableCompressor
from repro.dtypes import INT64, STRING
from repro.errors import ValidationError
from repro.query import Count, Engine, EngineConfig, Eq, QueryExecutor, Sum
from repro.storage import Catalog, Table


def _table(n: int = 2_000, seed: int = 5) -> Table:
    rng = np.random.default_rng(seed)
    return Table.from_columns(
        [
            ("ship", INT64, np.arange(n, dtype=np.int64) + 8_000),
            ("v", INT64, rng.integers(0, 500, n)),
            ("tag", STRING, [f"tag_{i}" for i in rng.integers(0, 7, n)]),
        ]
    )


def _relation(table: Table | None = None, block_size: int = 250):
    table = table if table is not None else _table()
    plan = CompressionPlan.vertical_only(table.schema)
    return TableCompressor(plan, block_size=block_size).compress(table)


class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.workers == 1
        assert config.use_statistics and config.use_dictionary and config.use_kernels

    def test_with_overrides(self):
        config = EngineConfig().with_overrides(workers=4, use_kernels=False)
        assert config.workers == 4
        assert not config.use_kernels
        # The original is immutable and unchanged.
        assert EngineConfig().use_kernels

    def test_with_overrides_rejects_unknown_fields(self):
        with pytest.raises(ValidationError, match="unknown EngineConfig field"):
            EngineConfig().with_overrides(worker_count=4)


class TestEngineSharedState:
    def test_compiler_memoized_per_relation(self):
        relation = _relation()
        with Engine() as engine:
            assert engine.compiler_for(relation) is engine.compiler_for(relation)
            # A different relation gets its own compiler.
            other = _relation()
            assert engine.compiler_for(other) is not engine.compiler_for(relation)

    def test_compiler_cache_is_bounded(self):
        table = _table(100)
        with Engine() as engine:
            first = _relation(table, block_size=50)
            engine.compiler_for(first)
            for _ in range(Engine.MAX_CACHED_COMPILERS):
                engine.compiler_for(_relation(table, block_size=50))
            # The first compiler fell off the LRU; a new one is built.
            assert engine.compiler_for(first) is not None
            assert len(engine._compilers) <= Engine.MAX_CACHED_COMPILERS

    def test_shared_worker_pool_across_relations(self):
        with Engine(EngineConfig(workers=2)) as engine:
            a = engine.compiler_for(_relation())
            b = engine.compiler_for(_relation())
            assert a.engine._shared_pool is b.engine._shared_pool is not None

    def test_serial_engine_has_no_pool(self):
        with Engine(EngineConfig(workers=1)) as engine:
            compiler = engine.compiler_for(_relation())
            assert compiler.engine._shared_pool is None

    def test_query_results_match_direct_path(self):
        relation = _relation()
        with Engine(EngineConfig(workers=2)) as engine:
            shared = (
                engine.query(relation)
                .where(Eq("tag", "tag_1"))
                .agg(n=Count(), total=Sum("v"))
                .execute()
            )
        direct = (
            relation.query().where(Eq("tag", "tag_1")).agg(n=Count(), total=Sum("v")).execute()
        )
        assert shared.columns == direct.columns

    def test_executor_adapter_shares_compiler(self):
        relation = _relation()
        with Engine() as engine:
            executor = engine.executor(relation)
            assert executor.compiler is engine.compiler_for(relation)
            assert executor.count(Eq("tag", "tag_2")) == relation.query().where(
                Eq("tag", "tag_2")
            ).count()

    def test_closed_engine_rejects_use(self):
        engine = Engine()
        engine.close()
        engine.close()  # idempotent
        with pytest.raises(ValidationError, match="closed"):
            engine.compiler_for(_relation())
        with pytest.raises(ValidationError, match="closed"):
            engine.query(_relation())


class TestEngineCatalog:
    def test_table_memoized_and_shared_cache(self, tmp_path):
        catalog = Catalog(tmp_path / "cat")
        catalog.save("t", _relation())
        with Engine(catalog=tmp_path / "cat") as engine:
            one = engine.table("t")
            assert engine.table("t") is one
            assert engine.tables() == {"t": one}
            assert one._cache is engine.cache

    def test_refresh_table_drops_stale_state(self, tmp_path):
        catalog = Catalog(tmp_path / "cat")
        catalog.save("t", _relation())
        with Engine(catalog=catalog) as engine:
            stale = engine.table("t")
            engine.compiler_for(stale)
            catalog.save("t", _relation(_table(500)), overwrite=True)
            fresh = engine.refresh_table("t")
            assert fresh is not stale
            assert fresh.n_rows == 500
            assert stale.cache_token not in engine._compilers

    def test_no_catalog_raises(self):
        with Engine() as engine:
            with pytest.raises(ValidationError, match="no catalog"):
                engine.table("t")


class TestDeprecatedKeywordPaths:
    def test_relation_query_legacy_kwargs_warn_but_work(self):
        relation = _relation()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no warning => this raises nothing
            modern = relation.query(config=EngineConfig(use_kernels=False))
        with pytest.warns(DeprecationWarning, match="Relation.query"):
            legacy = relation.query(use_kernels=False)
        assert legacy.where(Eq("v", 3)).count() == modern.where(Eq("v", 3)).count()

    def test_executor_legacy_kwargs_warn_but_work(self):
        relation = _relation()
        with pytest.warns(DeprecationWarning, match="QueryExecutor"):
            legacy = QueryExecutor(relation, workers=2)
        modern = QueryExecutor(relation, config=EngineConfig(workers=2))
        np.testing.assert_array_equal(
            legacy.filter(Eq("tag", "tag_3")), modern.filter(Eq("tag", "tag_3"))
        )
        legacy.close()
        modern.close()

    def test_legacy_and_modern_kwargs_are_mutually_exclusive(self):
        relation = _relation()
        with pytest.raises(ValidationError, match="not both"):
            relation.query(workers=2, config=EngineConfig())
        with pytest.raises(ValidationError, match="not both"):
            QueryExecutor(relation, workers=2, config=EngineConfig())
        with Engine() as engine:
            with pytest.raises(ValidationError, match="not both"):
                relation.query(use_kernels=False, engine=engine)

    def test_engine_bound_query_does_not_warn(self):
        relation = _relation()
        with Engine() as engine:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert relation.query(engine=engine).where(Eq("v", 1)).count() >= 0
