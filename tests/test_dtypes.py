"""Unit tests for the logical type system."""

import datetime

import numpy as np
import pytest

from repro.dtypes import (
    BOOLEAN,
    DATE,
    DECIMAL,
    INT32,
    INT64,
    STRING,
    TIMESTAMP,
    cents_to_decimal,
    date_to_days,
    days_to_date,
    decimal_to_cents,
    type_from_name,
)
from repro.errors import ValidationError


class TestDataTypes:
    def test_integer_like_flags(self):
        for dtype in (INT32, INT64, DATE, TIMESTAMP, DECIMAL, BOOLEAN):
            assert dtype.is_integer_like
            assert not dtype.is_string

    def test_string_flags(self):
        assert STRING.is_string
        assert not STRING.is_integer_like

    def test_uncompressed_size(self):
        assert DATE.uncompressed_size(1_000_000) == 4_000_000
        assert INT64.uncompressed_size(10) == 80
        assert BOOLEAN.uncompressed_size(8) == 8

    def test_uncompressed_size_negative(self):
        with pytest.raises(ValidationError):
            INT64.uncompressed_size(-1)

    def test_type_from_name(self):
        assert type_from_name("date") is DATE
        assert type_from_name("string") is STRING

    def test_type_from_name_unknown(self):
        with pytest.raises(ValidationError):
            type_from_name("uuid")

    def test_str(self):
        assert str(DATE) == "date"

    def test_validate_array_accepts_integers(self):
        DATE.validate_array(np.array([1, 2, 3]))

    def test_validate_array_rejects_floats(self):
        with pytest.raises(ValidationError):
            DECIMAL.validate_array(np.array([1.5, 2.5]))

    def test_validate_string_rejects_numeric(self):
        with pytest.raises(ValidationError):
            STRING.validate_array(np.array([1, 2, 3]))


class TestConversions:
    def test_date_roundtrip(self):
        dates = [datetime.date(1992, 1, 2), datetime.date(1998, 12, 1)]
        days = date_to_days(dates)
        assert days_to_date(days) == dates

    def test_epoch_is_day_zero(self):
        assert date_to_days([datetime.date(1970, 1, 1)])[0] == 0

    def test_decimal_roundtrip(self):
        values = [12.34, 0.0, 99.99]
        cents = decimal_to_cents(values)
        assert np.array_equal(cents, np.array([1234, 0, 9999]))
        assert np.allclose(cents_to_decimal(cents), values)

    def test_decimal_scale(self):
        assert decimal_to_cents([1.234], scale=3)[0] == 1234

    def test_decimal_rounding(self):
        assert decimal_to_cents([0.005])[0] in (0, 1)  # numpy round-half-even
        assert decimal_to_cents([1.005 + 1e-9])[0] == 101
