"""Property-based tests (hypothesis) for the core invariants.

The invariants exercised here are the load-bearing ones:

* every encoding is lossless (decode/gather reproduce the input exactly);
* positional access equals full decode + indexing;
* compressed sizes are what the accounting claims (non-negative, monotone in
  the number of rows for fixed-width streams);
* the optimizer never produces an invalid configuration and never loses to
  the all-vertical baseline.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.bitpack import BitPackedArray, pack, required_bits, unpack
from repro.core import (
    CompressionPlan,
    HierarchicalEncoding,
    NonHierarchicalEncoding,
    OutlierStore,
    TableCompressor,
)
from repro.core.optimizer import DiffEncodingOptimizer
from repro.dtypes import INT64, STRING
from repro.encodings import (
    DeltaEncoding,
    DictionaryEncoding,
    ForBitPackEncoding,
    FrequencyEncoding,
    RleEncoding,
)
from repro.query import And, Between, Eq, In, Or, QueryExecutor
from repro.storage import Table

# Bounded 64-bit signed integers that never overflow when differenced.
bounded_ints = st.integers(min_value=-(2**40), max_value=2**40)

int_arrays = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(min_value=1, max_value=300),
    elements=bounded_ints,
)

small_nonneg_arrays = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(min_value=1, max_value=300),
    elements=st.integers(min_value=0, max_value=2**20),
)


class TestBitpackProperties:
    @given(values=small_nonneg_arrays)
    @settings(max_examples=60, deadline=None)
    def test_pack_unpack_roundtrip(self, values):
        width = required_bits(int(values.max())) if values.size else 0
        words = pack(values, width)
        assert np.array_equal(unpack(words, width, values.size), values)

    @given(values=small_nonneg_arrays, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_gather_equals_decode_indexing(self, values, data):
        packed = BitPackedArray.from_values(values)
        positions = data.draw(
            hnp.arrays(
                dtype=np.int64,
                shape=st.integers(min_value=0, max_value=50),
                elements=st.integers(min_value=0, max_value=values.size - 1),
            )
        )
        assert np.array_equal(packed.gather(positions), packed.to_numpy()[positions])

    @given(values=small_nonneg_arrays)
    @settings(max_examples=30, deadline=None)
    def test_size_is_byte_rounded_bits(self, values):
        packed = BitPackedArray.from_values(values)
        assert packed.size_bytes == (values.size * packed.bit_width + 7) // 8


class TestVerticalEncodingProperties:
    @given(values=int_arrays)
    @settings(max_examples=50, deadline=None)
    def test_for_bitpack_lossless(self, values):
        column = ForBitPackEncoding().encode(values, INT64)
        assert np.array_equal(column.decode(), values)

    @given(values=int_arrays)
    @settings(max_examples=50, deadline=None)
    def test_dictionary_lossless(self, values):
        column = DictionaryEncoding().encode(values, INT64)
        assert np.array_equal(column.decode(), values)

    @given(values=int_arrays)
    @settings(max_examples=40, deadline=None)
    def test_rle_lossless(self, values):
        column = RleEncoding().encode(values, INT64)
        assert np.array_equal(column.decode(), values)

    @given(values=int_arrays)
    @settings(max_examples=40, deadline=None)
    def test_delta_lossless(self, values):
        column = DeltaEncoding(checkpoint_interval=64).encode(values, INT64)
        assert np.array_equal(column.decode(), values)

    @given(values=int_arrays)
    @settings(max_examples=40, deadline=None)
    def test_frequency_lossless(self, values):
        column = FrequencyEncoding(n_hot=4).encode(values, INT64)
        assert np.array_equal(column.decode(), values)

    @given(values=int_arrays, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_gather_consistency_across_schemes(self, values, data):
        positions = data.draw(
            hnp.arrays(
                dtype=np.int64,
                shape=st.integers(min_value=0, max_value=30),
                elements=st.integers(min_value=0, max_value=values.size - 1),
            )
        )
        for scheme in (ForBitPackEncoding(), DictionaryEncoding(), RleEncoding()):
            column = scheme.encode(values, INT64)
            assert np.array_equal(column.gather(positions), values[positions])

    @given(
        strings=st.lists(
            st.text(alphabet=st.characters(codec="utf-8"), max_size=20),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_string_dictionary_lossless(self, strings):
        column = DictionaryEncoding().encode(strings, STRING)
        assert column.decode() == strings


class TestHorizontalEncodingProperties:
    @given(reference=int_arrays, data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_diff_encoding_lossless(self, reference, data):
        offsets = data.draw(
            hnp.arrays(
                dtype=np.int64,
                shape=st.just(reference.shape),
                elements=st.integers(min_value=-1000, max_value=1000),
            )
        )
        target = reference + offsets
        column = NonHierarchicalEncoding().encode(target, reference, "ref")
        decoded = column.decode_with_reference({"ref": reference})
        assert np.array_equal(decoded, target)

    @given(reference=int_arrays, data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_diff_encoding_width_never_exceeds_naive(self, reference, data):
        offsets = data.draw(
            hnp.arrays(
                dtype=np.int64,
                shape=st.just(reference.shape),
                elements=st.integers(min_value=0, max_value=63),
            )
        )
        target = reference + offsets
        column = NonHierarchicalEncoding().encode(target, reference, "ref")
        assert column.bit_width <= 6

    @given(
        n_groups=st.integers(min_value=1, max_value=8),
        fanout=st.integers(min_value=1, max_value=6),
        n_rows=st.integers(min_value=1, max_value=300),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_hierarchical_lossless_and_width_bounded(self, n_groups, fanout, n_rows, seed):
        rng = np.random.default_rng(seed)
        reference = rng.integers(0, n_groups, size=n_rows, dtype=np.int64)
        target = reference * 1_000 + rng.integers(0, fanout, size=n_rows, dtype=np.int64)
        column = HierarchicalEncoding().encode(target, reference, "ref")
        assert np.array_equal(
            column.decode_with_reference({"ref": reference}), target
        )
        assert column.code_bit_width <= required_bits(fanout - 1)

    @given(
        positions=st.lists(
            st.integers(min_value=0, max_value=10_000), min_size=0, max_size=50, unique=True
        ),
        base=st.integers(min_value=-1000, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_outlier_store_apply_is_exact(self, positions, base):
        positions = np.asarray(sorted(positions), dtype=np.int64)
        values = positions * 7 + base
        store = OutlierStore(positions, values)
        queried = np.arange(0, 10_001, 97, dtype=np.int64)
        reconstructed = np.full(queried.size, -1, dtype=np.int64)
        out = store.apply(queried, reconstructed)
        lookup = dict(zip(positions.tolist(), values.tolist()))
        expected = np.array(
            [lookup.get(int(q), -1) for q in queried], dtype=np.int64
        )
        assert np.array_equal(out, expected)


class TestScanPruningProperties:
    """Zone-map pruning must be invisible: pruned scans == brute-force scans."""

    @given(
        reference=int_arrays,
        block_size=st.integers(min_value=1, max_value=64),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_pruned_filter_equals_decode_everything(self, reference, block_size, data):
        offsets = data.draw(
            hnp.arrays(
                dtype=np.int64,
                shape=st.just(reference.shape),
                elements=st.integers(min_value=-50, max_value=50),
            )
        )
        target = reference + offsets
        table = Table.from_columns([("a", INT64, reference), ("b", INT64, target)])
        plan = (
            CompressionPlan.builder(table.schema)
            .diff_encode("b", reference="a")
            .build()
        )
        relation = TableCompressor(plan, block_size=block_size).compress(table)

        lo_a, hi_a = int(reference.min()), int(reference.max())
        value = data.draw(st.integers(min_value=lo_a - 10, max_value=hi_a + 10))
        low = data.draw(st.integers(min_value=lo_a - 10, max_value=hi_a + 10))
        span = data.draw(st.integers(min_value=0, max_value=100))
        column = data.draw(st.sampled_from(["a", "b"]))
        predicate = data.draw(
            st.sampled_from(
                [
                    Eq(column, value),
                    Between(column, low, low + span),
                    In(column, [value, low]),
                    And(Between("a", low, low + span), Between("b", low, low + span)),
                    Or(Eq("a", value), Eq("b", value)),
                ]
            )
        )

        pruned = QueryExecutor(relation)
        brute = QueryExecutor(relation, use_statistics=False)
        raw = {"a": reference, "b": target}
        expected = np.flatnonzero(predicate.evaluate(raw))
        assert np.array_equal(pruned.filter(predicate), expected)
        assert np.array_equal(brute.filter(predicate), expected)
        assert pruned.count(predicate) == expected.size
        assert pruned.last_scan_metrics.rows_decoded <= brute.last_scan_metrics.rows_total


class TestOptimizerProperties:
    @given(
        n_rows=st.integers(min_value=10, max_value=200),
        spread_a=st.integers(min_value=1, max_value=1 << 20),
        spread_b=st.integers(min_value=1, max_value=1 << 20),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_configuration_never_worse_than_vertical(self, n_rows, spread_a, spread_b, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, spread_a, size=n_rows, dtype=np.int64)
        b = a + rng.integers(0, spread_b, size=n_rows, dtype=np.int64)
        table = Table.from_columns([("a", INT64, a), ("b", INT64, b)])
        graph, config = DiffEncodingOptimizer().optimize(table)
        assert config.total_size <= config.baseline_size
        # References must stay vertical (no chains).
        for reference in config.assignments.values():
            assert reference not in config.assignments
