"""Unit tests for the non-hierarchical (single-reference) diff-encoding."""

import numpy as np
import pytest

from repro.core import DiffEncodedColumn, NonHierarchicalEncoding, estimate_diff_encoded_size
from repro.errors import DecodingError, EncodingError


@pytest.fixture
def ship_receipt(rng):
    ship = rng.integers(8_000, 10_500, size=5_000, dtype=np.int64)
    receipt = ship + rng.integers(1, 31, size=5_000, dtype=np.int64)
    return ship, receipt


class TestEncoding:
    def test_roundtrip(self, ship_receipt):
        ship, receipt = ship_receipt
        column = NonHierarchicalEncoding().encode(receipt, ship, "ship")
        decoded = column.decode_with_reference({"ship": ship})
        assert np.array_equal(decoded, receipt)

    def test_gather_with_reference(self, ship_receipt, rng):
        ship, receipt = ship_receipt
        column = NonHierarchicalEncoding().encode(receipt, ship, "ship")
        pos = rng.integers(0, 5_000, size=200, dtype=np.int64)
        out = column.gather_with_reference(pos, {"ship": ship[pos]})
        assert np.array_equal(out, receipt[pos])

    def test_bit_width_is_diff_width(self, ship_receipt):
        ship, receipt = ship_receipt
        column = NonHierarchicalEncoding().encode(receipt, ship, "ship")
        # Differences are 1..30 -> 5 bits, far below the 12+ bits of the raw column.
        assert column.bit_width == 5
        assert not column.uses_zigzag

    def test_negative_differences_use_zigzag(self, ship_receipt):
        ship, receipt = ship_receipt
        # Encode ship w.r.t. receipt: differences are -30..-1.
        column = NonHierarchicalEncoding().encode(ship, receipt, "receipt")
        assert column.uses_zigzag
        assert column.bit_width == 6  # one extra sign bit
        assert np.array_equal(
            column.decode_with_reference({"receipt": receipt}), ship
        )

    def test_frame_mode_ablation(self, ship_receipt):
        ship, receipt = ship_receipt
        framed = NonHierarchicalEncoding(use_frame=True).encode(ship, receipt, "receipt")
        unframed = NonHierarchicalEncoding().encode(ship, receipt, "receipt")
        # FOR over the differences removes the sign bit again.
        assert framed.bit_width == 5
        assert framed.size_bytes <= unframed.size_bytes
        assert np.array_equal(
            framed.decode_with_reference({"receipt": receipt}), ship
        )

    def test_size_beats_vertical_when_correlated(self, ship_receipt):
        ship, receipt = ship_receipt
        column = NonHierarchicalEncoding().encode(receipt, ship, "ship")
        vertical_bits = 12  # receipt spans ~2500 values
        assert column.size_bytes < vertical_bits * len(receipt) / 8

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(EncodingError):
            NonHierarchicalEncoding().encode(
                np.arange(10, dtype=np.int64), np.arange(9, dtype=np.int64), "r"
            )

    def test_decode_without_reference_raises(self, ship_receipt):
        ship, receipt = ship_receipt
        column = NonHierarchicalEncoding().encode(receipt, ship, "ship")
        with pytest.raises(DecodingError):
            column.decode()
        with pytest.raises(DecodingError):
            column.gather(np.array([0]))

    def test_missing_reference_values_raises(self, ship_receipt):
        ship, receipt = ship_receipt
        column = NonHierarchicalEncoding().encode(receipt, ship, "ship")
        with pytest.raises(DecodingError):
            column.gather_with_reference(np.array([0]), {"other": ship[:1]})

    def test_wrong_length_reference_values_raises(self, ship_receipt):
        ship, receipt = ship_receipt
        column = NonHierarchicalEncoding().encode(receipt, ship, "ship")
        with pytest.raises(DecodingError):
            column.gather_with_reference(np.array([0, 1]), {"ship": ship[:1]})

    def test_stats(self, ship_receipt):
        ship, receipt = ship_receipt
        column = NonHierarchicalEncoding().encode(receipt, ship, "ship")
        stats = column.stats()
        assert stats.min_difference >= 1
        assert stats.max_difference <= 30
        assert stats.n_outliers == 0
        assert stats.size_bytes == column.size_bytes

    def test_empty_columns(self):
        column = NonHierarchicalEncoding().encode(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), "r"
        )
        assert column.n_values == 0
        assert column.size_bytes > 0  # metadata only


class TestOutlierHandling:
    def test_outliers_diverted_and_reconstructed(self, rng):
        reference = rng.integers(0, 100, size=2_000, dtype=np.int64)
        target = reference + rng.integers(0, 16, size=2_000, dtype=np.int64)
        # Inject 1% wild rows whose difference cannot fit the usual width.
        wild = rng.choice(2_000, size=20, replace=False)
        target[wild] += 1_000_000
        column = DiffEncodedColumn(target, reference, "ref", outlier_bit_budget=4)
        assert column.outliers.n_outliers == 20
        assert column.bit_width <= 4
        decoded = column.decode_with_reference({"ref": reference})
        assert np.array_equal(decoded, target)

    def test_no_outliers_when_budget_suffices(self, rng):
        reference = rng.integers(0, 100, size=500, dtype=np.int64)
        target = reference + rng.integers(0, 8, size=500, dtype=np.int64)
        column = DiffEncodedColumn(target, reference, "ref", outlier_bit_budget=8)
        assert column.outliers.n_outliers == 0

    def test_outliers_increase_size_accounting(self, rng):
        reference = np.zeros(1_000, dtype=np.int64)
        target = np.zeros(1_000, dtype=np.int64)
        target[::100] = 10**9
        with_outliers = DiffEncodedColumn(target, reference, "ref", outlier_bit_budget=0)
        assert with_outliers.outliers.n_outliers == 10
        assert with_outliers.size_bytes > DiffEncodedColumn(
            np.zeros(1_000, dtype=np.int64), reference, "ref"
        ).size_bytes

    def test_negative_budget_rejected(self):
        with pytest.raises(EncodingError):
            DiffEncodedColumn(
                np.array([0, 10], dtype=np.int64),
                np.array([0, 0], dtype=np.int64),
                "ref",
                outlier_bit_budget=-1,
            )


class TestSizeEstimate:
    def test_estimate_matches_encoding(self, ship_receipt):
        ship, receipt = ship_receipt
        estimated = estimate_diff_encoded_size(receipt, ship)
        actual = NonHierarchicalEncoding().encode(receipt, ship, "ship").size_bytes
        assert estimated == actual

    def test_estimate_asymmetry_matches_figure2(self, ship_receipt):
        """Fig. 2: a -> b and b -> a can differ by the sign bit."""
        ship, receipt = ship_receipt
        forward = estimate_diff_encoded_size(receipt, ship)   # diffs in [1, 30]
        backward = estimate_diff_encoded_size(ship, receipt)  # diffs in [-30, -1]
        assert backward > forward

    def test_estimate_length_mismatch(self):
        with pytest.raises(EncodingError):
            estimate_diff_encoded_size(np.arange(3), np.arange(4))
