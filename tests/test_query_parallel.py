"""Tests for the morsel-driven parallel engine, dictionary-domain predicate
evaluation, planner memoization, and parallel block compression."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TableCompressor
from repro.dtypes import INT64, STRING
from repro.errors import ValidationError
from repro.query import (
    And,
    Between,
    ColumnPredicate,
    Eq,
    In,
    Or,
    ParallelEngine,
    QueryExecutor,
    ScanPlanner,
    parallel_map,
    resolve_workers,
)
from repro.storage.table import Table

TAGS = [f"tag_{i:02d}" for i in range(12)]
WORKER_COUNTS = (1, 2, 4)


def _make_relation(n_rows: int = 3000, block_size: int = 256, seed: int = 11):
    rng = np.random.default_rng(seed)
    table = Table.from_columns([
        ("v", INT64, rng.integers(0, 500, n_rows)),
        ("tag", STRING, [TAGS[i] for i in rng.integers(0, len(TAGS), n_rows)]),
    ])
    return TableCompressor(block_size=block_size).compress(table)


@pytest.fixture(scope="module")
def relation():
    return _make_relation()


# -- random predicate strategy -------------------------------------------------

_int_leaves = st.one_of(
    st.builds(Eq, st.just("v"), st.integers(-10, 510)),
    st.builds(
        lambda lo, hi: Between("v", min(lo, hi), max(lo, hi)),
        st.integers(-10, 510), st.integers(-10, 510),
    ),
    st.builds(In, st.just("v"), st.lists(st.integers(-10, 510), min_size=1, max_size=5)),
)
_string_leaves = st.one_of(
    st.builds(Eq, st.just("tag"), st.sampled_from(TAGS + ["absent"])),
    st.builds(
        In, st.just("tag"), st.lists(st.sampled_from(TAGS + ["absent"]), min_size=1, max_size=4)
    ),
)
_leaves = st.one_of(_int_leaves, _string_leaves)
_predicates = st.recursive(
    _leaves,
    lambda children: st.one_of(
        st.builds(lambda a, b: And(a, b), children, children),
        st.builds(lambda a, b: Or(a, b), children, children),
    ),
    max_leaves=4,
)


class TestParallelMatchesSerial:
    """Property: parallel execution is indistinguishable from serial."""

    @settings(max_examples=40, deadline=None)
    @given(predicate=_predicates)
    def test_scan_identical_across_worker_counts(self, relation, predicate):
        serial = QueryExecutor(relation, workers=1)
        expected_ids, expected_metrics = serial.scan(predicate)
        for workers in WORKER_COUNTS:
            with QueryExecutor(relation, workers=workers) as executor:
                row_ids, metrics = executor.scan(predicate)
                assert np.array_equal(row_ids, expected_ids)
                assert executor.count(predicate) == expected_ids.size
                # Metrics totals must agree: planning is shared and every
                # block is evaluated exactly once regardless of scheduling.
                for field in (
                    "n_blocks", "blocks_scanned", "blocks_pruned",
                    "blocks_full", "rows_total", "rows_decoded",
                    "rows_matched", "rows_dict_evaluated",
                    "string_heap_decodes",
                ):
                    assert getattr(metrics, field) == getattr(
                        expected_metrics, field
                    )

    @settings(max_examples=20, deadline=None)
    @given(predicate=_predicates)
    def test_dictionary_domain_matches_decode_path(self, relation, predicate):
        with_dict = QueryExecutor(relation).filter(predicate)
        without = QueryExecutor(relation, use_dictionary=False).filter(predicate)
        assert np.array_equal(with_dict, without)

    def test_engine_results_are_sorted_and_complete(self, relation):
        with ParallelEngine(relation, workers=4) as engine:
            row_ids, metrics = engine.scan(Between("v", 0, 499))
        assert np.array_equal(row_ids, np.arange(relation.n_rows))
        assert metrics.rows_matched == relation.n_rows

    def test_opaque_predicates_run_in_parallel(self, relation):
        predicate = ColumnPredicate(
            "tag", lambda values: np.asarray([s.endswith("7") for s in values])
        )
        serial = QueryExecutor(relation, workers=1).filter(predicate)
        with QueryExecutor(relation, workers=4) as executor:
            assert np.array_equal(serial, executor.filter(predicate))


class TestDictionaryDomain:
    def test_eq_decodes_zero_string_heaps(self, relation):
        executor = QueryExecutor(relation)
        executor.count(Eq("tag", "tag_07"))
        metrics = executor.last_scan_metrics
        assert metrics.string_heap_decodes == 0
        assert metrics.rows_dict_evaluated == relation.n_rows
        # Code-space-only blocks materialise nothing at all.
        assert metrics.rows_decoded == 0

    def test_decode_path_pays_heap_decodes(self, relation):
        executor = QueryExecutor(relation, use_dictionary=False)
        executor.count(Eq("tag", "tag_07"))
        metrics = executor.last_scan_metrics
        assert metrics.rows_dict_evaluated == 0
        assert metrics.string_heap_decodes == relation.n_rows
        assert metrics.rows_decoded == relation.n_rows

    def test_absent_and_mistyped_values_match_nothing(self, relation):
        executor = QueryExecutor(relation)
        assert executor.count(Eq("tag", "no_such_tag")) == 0
        assert executor.count(Eq("tag", 123)) == 0
        assert executor.count(In("tag", ["nope", "also_nope"])) == 0
        assert executor.last_scan_metrics.string_heap_decodes == 0

    def test_lookup_codes_string_column(self, relation):
        column = relation.block(0).column("tag")
        codes = column.lookup_codes(["tag_00", "absent", 42])
        decoded = column.decode()
        if codes.size:
            assert column.dictionary[int(codes[0])] == "tag_00"
            assert "tag_00" in decoded
        else:
            assert "tag_00" not in decoded

    def test_lookup_codes_int_column(self):
        from repro.encodings.dictionary import DictEncodedIntColumn

        column = DictEncodedIntColumn(np.asarray([5, 5, 9, 1, 9, 5]))
        codes = column.lookup_codes([9, 4, "x", 1])
        values = column.dictionary[codes]
        assert sorted(values.tolist()) == [1, 9]
        mask = np.isin(column.codes(), codes)
        assert mask.sum() == 3  # one 1 plus two 9s; 4 and "x" match nothing

    def test_numeric_candidates_compare_numerically(self):
        from repro.encodings.dictionary import DictEncodedIntColumn

        column = DictEncodedIntColumn(np.asarray([1, 5, 5, 7]))
        # 5.0 and True find 5 and 1, exactly like the decoded NumPy kernels.
        assert column.dictionary[column.lookup_codes([5.0])].tolist() == [5]
        assert column.dictionary[column.lookup_codes([True])].tolist() == [1]
        assert column.dictionary[column.lookup_codes([np.bool_(True)])].tolist() == [1]
        assert column.lookup_codes([5.5, "5", None, 2 ** 70]).size == 0

    def test_float_predicate_consistent_across_paths_and_zone_maps(self):
        from repro.core import CompressionPlan

        # First block is constant 5 (answered FULL from its exact zone map),
        # the rest are mixed (answered in code space) — both paths must agree
        # with the decoded kernel for the float constant 5.0.
        values = np.asarray([5] * 64 + [5, 9] * 96)
        table = Table.from_columns([("c", INT64, values)])
        plan = CompressionPlan.builder(table.schema).vertical(
            "c", "dictionary"
        ).build()
        rel = TableCompressor(plan, block_size=64).compress(table)
        expected = int(np.count_nonzero(values == 5.0))
        for kwargs in ({}, {"use_dictionary": False}, {"workers": 2}):
            executor = QueryExecutor(rel, **kwargs)
            assert executor.count(Eq("c", 5.0)) == expected
            assert executor.count(Eq("c", True)) == 0
            assert executor.count(In("c", [5.0, 5.5])) == expected

    def test_leaf_statistics_shortcut_inside_compound(self, relation):
        # "absent" sorts outside every block's [min, max], so the tag leaf of
        # the Or is answered all-false from statistics without any code
        # unpack — and the result must still match the decode path.
        predicate = Or(Eq("v", 5), Eq("tag", "absent"))
        with_dict = QueryExecutor(relation).filter(predicate)
        without = QueryExecutor(relation, use_dictionary=False).filter(predicate)
        assert np.array_equal(with_dict, without)

    def test_code_space_column_excludes_horizontal(self, relation):
        block = relation.block(0)
        assert block.code_space_column("tag") is not None
        # FOR/bit-packed column has no code-space API.
        assert block.code_space_column("v") is None


class TestPlannerMemoization:
    def test_decisions_are_cached_per_block_and_fingerprint(self, relation):
        planner = ScanPlanner(relation)
        predicate = Between("v", 0, 10)
        first = planner.plan(predicate)
        assert planner.cached_decisions == relation.n_blocks
        calls = {"n": 0}
        original = predicate.might_match

        def counting(statistics):
            calls["n"] += 1
            return original(statistics)

        predicate.might_match = counting  # type: ignore[method-assign]
        second = planner.plan(Between("v", 0, 10))
        assert calls["n"] == 0  # zone maps never re-tested
        assert second.decisions == first.decisions

    def test_opaque_predicates_are_never_cached(self, relation):
        planner = ScanPlanner(relation)
        predicate = ColumnPredicate("v", lambda values: values > 0)
        assert predicate.fingerprint() is None
        planner.plan(predicate)
        assert planner.cached_decisions == 0

    def test_cache_invalidated_on_relation_change(self, relation):
        planner = ScanPlanner(relation)
        planner.plan(Between("v", 0, 10))
        assert planner.cached_decisions > 0
        other = _make_relation(n_rows=500, block_size=100, seed=3)
        planner.relation = other
        plan = planner.plan(Between("v", 0, 10))
        assert plan.n_blocks == other.n_blocks
        assert planner.cached_decisions == other.n_blocks

    def test_distinct_predicates_do_not_collide(self, relation):
        planner = ScanPlanner(relation)
        a = planner.plan(Between("v", 0, 10))
        b = planner.plan(Between("v", 0, 499))
        assert a.decisions != b.decisions
        # Eq on int 5 and string "5" must have distinct fingerprints.
        assert Eq("v", 5).fingerprint() != Eq("v", "5").fingerprint()


class TestParallelCompression:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_compression_is_deterministic_across_workers(self, workers):
        rng = np.random.default_rng(5)
        table = Table.from_columns([
            ("a", INT64, rng.integers(0, 100, 1200)),
            ("s", STRING, [TAGS[i] for i in rng.integers(0, len(TAGS), 1200)]),
        ])
        serial = TableCompressor(block_size=128).compress(table)
        threaded = TableCompressor(block_size=128, workers=workers).compress(table)
        assert threaded.n_blocks == serial.n_blocks
        assert threaded.size_bytes == serial.size_bytes
        for index in range(serial.n_blocks):
            a, b = serial.block(index), threaded.block(index)
            assert a.n_rows == b.n_rows
            assert a.statistics == b.statistics
            for name in ("a", "s"):
                assert a.encoding_of(name) == b.encoding_of(name)
                assert list(a.decode_column(name)) == list(b.decode_column(name))


class TestParallelHelpers:
    def test_parallel_map_preserves_order(self):
        items = list(range(57))
        assert parallel_map(lambda x: x * x, items, workers=4) == [
            x * x for x in items
        ]

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1
        with pytest.raises(ValidationError):
            resolve_workers(-2)

    def test_morsel_grouping(self, relation):
        engine = ParallelEngine(relation, workers=2, morsel_blocks=3)
        items = [(i, i * relation.block_size) for i in range(7)]
        morsels = engine.morsels(items)
        assert [m.n_blocks for m in morsels] == [3, 3, 1]
        assert [i for m in morsels for i in m.block_indices] == list(range(7))

    def test_engine_context_manager_closes_pool(self, relation):
        with ParallelEngine(relation, workers=2) as engine:
            engine.scan(Between("v", 0, 100))
        assert engine._pool is None

    def test_executor_context_manager_closes_pool(self, relation):
        with QueryExecutor(relation, workers=2) as executor:
            executor.count(Between("v", 0, 100))
        assert executor._engine._pool is None
        QueryExecutor(relation, workers=1).close()  # serial: no-op
