"""Unit tests for the experiment harness and the per-figure experiments."""

import pytest

from repro.bench import (
    ExperimentResult,
    all_experiments,
    c3_comparison_table3,
    compression_table2,
    format_saving_rate,
    format_table,
    latency_figure5,
    latency_figure8,
    latency_zoom_figure6,
    latency_zoom_figure7,
    optimizer_figure2,
    rule_mixture_table1,
    run_experiments,
    scan_pruning_experiment,
)

# Small row counts: these tests check wiring and result shape, not final numbers.
ROWS = 20_000
LATENCY_KWARGS = dict(n_rows=10_000, n_vectors=1, block_size=10_000)


class TestHarness:
    def test_format_table_aligns_columns(self):
        text = format_table(("a", "bb"), [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}

    def test_format_saving_rate(self):
        assert format_saving_rate(0.583) == "58.3%"
        assert format_saving_rate(-0.02) == "-2.0%"

    def test_experiment_result_render(self):
        result = ExperimentResult("t", "Title", ("x",))
        result.add_row(1)
        result.add_note("a note")
        text = result.render()
        assert "Title" in text and "a note" in text


class TestCompressionExperiments:
    def test_table2_has_all_seven_rows(self):
        result = compression_table2(n_rows=ROWS)
        assert len(result.rows) == 7
        datasets = {row[0] for row in result.rows}
        assert datasets == {"lineitem", "taxi", "dmv", "message"}

    def test_table2_headline_savings(self):
        result = compression_table2(n_rows=ROWS)
        metrics = result.metrics
        assert metrics["lineitem.l_receiptdate.saving_rate"] == pytest.approx(0.583, abs=0.01)
        assert metrics["lineitem.l_commitdate.saving_rate"] == pytest.approx(0.333, abs=0.01)
        assert metrics["taxi.total_amount.saving_rate"] > 0.7
        assert metrics["taxi.dropoff.saving_rate"] > 0.2

    def test_table1_mixture(self):
        result = rule_mixture_table1(n_rows=ROWS)
        assert [row[0] for row in result.rows] == ["A", "A + B", "A + C", "A + B + C", "None"]
        assert result.metrics["outlier_fraction"] == pytest.approx(0.0032, abs=0.003)

    def test_table3_has_four_pairs(self):
        result = c3_comparison_table3(n_rows=ROWS)
        assert len(result.rows) == 4
        for pair in ("l_commitdate", "l_receiptdate", "dropoff", "zip_code"):
            assert f"corra.{pair}" in result.metrics

    def test_figure2_reproduces_configuration(self):
        result = optimizer_figure2(n_rows=ROWS)
        notes = " ".join(result.notes)
        assert "diff-encode l_receiptdate w.r.t. l_shipdate" in notes
        assert "diff-encode l_commitdate w.r.t. l_shipdate" in notes
        assert result.metrics["total_saving_scaled_mb"] == pytest.approx(82.5, rel=0.05)


class TestLatencyExperiments:
    def test_figure5_shape(self):
        result = latency_figure5(selectivities=[0.01, 0.1], **LATENCY_KWARGS)
        assert len(result.rows) == 2 * 2 * 2  # encodings x query types x selectivities
        assert all(ratio > 0 for ratio in result.metrics.values())

    def test_figure6_shape(self):
        result = latency_zoom_figure6(selectivities=[0.01], **LATENCY_KWARGS)
        configurations = {row[2] for row in result.rows}
        assert configurations == {
            "Uncompressed", "Single-column compression", "Corra"
        }

    def test_figure7_shape(self):
        result = latency_zoom_figure7(selectivities=[0.01], **LATENCY_KWARGS)
        assert len(result.rows) == 6  # 1 selectivity x 2 queries x 3 configurations

    def test_figure8_shape(self):
        result = latency_figure8(selectivities=[0.01, 0.1], **LATENCY_KWARGS)
        assert len(result.rows) == 2
        assert all(ratio > 0 for ratio in result.metrics.values())

    def test_scan_pruning_shape(self):
        result = scan_pruning_experiment(
            n_rows=10_000, selectivities=[0.01, 0.1], n_blocks=8, repeats=1
        )
        assert len(result.rows) == 2
        # On a sorted column a selective predicate must prune most blocks.
        assert result.metrics["blocks_pruned.0.01"] >= 6


class TestRunner:
    def test_registry_lists_all_experiments(self):
        assert set(all_experiments()) == {
            "table1", "table2", "table3", "figure2",
            "figure5", "figure6", "figure7", "figure8",
            "scan",
        }

    def test_run_selected_experiments(self):
        results = run_experiments(["table1", "figure2"], n_rows=ROWS)
        assert [r.experiment_id for r in results] == ["table1", "figure2"]
