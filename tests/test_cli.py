"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for command in ("datasets", "compress", "detect", "query", "experiments"):
            args = parser.parse_args(
                [command] + (["taxi"] if command in ("compress", "detect", "query") else [])
            )
            assert args.command == command


class TestDatasetsCommand:
    def test_list_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("tpch_lineitem", "ldbc_message", "dmv", "taxi"):
            assert name in out

    def test_export_to_stdout(self, capsys):
        assert main(["datasets", "taxi", "--rows", "50", "--limit", "5"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out[0].startswith("pickup,")
        assert len(out) == 6  # header + 5 rows

    def test_export_to_file(self, tmp_path, capsys):
        path = tmp_path / "dmv.csv"
        assert main(["datasets", "dmv", "--rows", "100", "--output", str(path)]) == 0
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 101
        assert "zip_code" in lines[0]

    def test_unknown_dataset(self, capsys):
        assert main(["datasets", "imdb"]) == 1
        assert "error" in capsys.readouterr().err


class TestCompressCommand:
    def test_baseline_plan(self, capsys):
        assert main(["compress", "tpch_lineitem", "--rows", "5000", "--plan", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "l_shipdate" in out
        assert "total:" in out

    def test_explicit_diff_encoding(self, capsys):
        assert main([
            "compress", "tpch_lineitem", "--rows", "5000",
            "--diff-encode", "l_receiptdate:l_shipdate",
        ]) == 0
        out = capsys.readouterr().out
        assert "non_hierarchical (l_shipdate)" in out

    def test_explicit_hierarchical_encoding(self, capsys):
        assert main([
            "compress", "dmv", "--rows", "5000",
            "--hierarchical", "zip_code:city",
        ]) == 0
        out = capsys.readouterr().out
        assert "hierarchical (city)" in out

    def test_mined_multi_reference(self, capsys):
        assert main([
            "compress", "taxi", "--rows", "5000",
            "--mine-rules-for", "total_amount",
        ]) == 0
        out = capsys.readouterr().out
        assert "mined multi-reference configuration" in out
        assert "multi_reference" in out

    def test_auto_plan(self, capsys):
        assert main(["compress", "tpch_lineitem", "--rows", "5000"]) == 0
        out = capsys.readouterr().out
        assert "saving" in out

    def test_bad_pair_spec(self, capsys):
        assert main([
            "compress", "tpch_lineitem", "--rows", "2000",
            "--diff-encode", "no-colon-here",
        ]) == 1
        assert "TARGET:REFERENCE" in capsys.readouterr().err

    def test_unknown_reference_column(self, capsys):
        assert main([
            "compress", "tpch_lineitem", "--rows", "2000",
            "--diff-encode", "l_receiptdate:nope",
        ]) == 1
        assert "error" in capsys.readouterr().err


class TestDetectCommand:
    def test_detect_taxi(self, capsys):
        assert main(["detect", "taxi", "--rows", "5000", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "dropoff" in out

    def test_detect_nothing_found(self, capsys):
        assert main(["detect", "taxi", "--rows", "500", "--min-saving-rate", "0.99"]) == 0
        assert "no exploitable correlations" in capsys.readouterr().out


class TestQueryCommand:
    def test_between_reports_count_and_metrics(self, capsys):
        assert main([
            "query", "tpch_lineitem", "--rows", "5000", "--block-size", "500",
            "--plan", "baseline", "--between", "l_shipdate:9100:9130",
        ]) == 0
        out = capsys.readouterr().out
        assert "9100 <= l_shipdate <= 9130" in out
        assert "count:" in out
        assert "blocks pruned" in out
        assert "rows decoded" in out

    def test_conjunction_of_terms(self, capsys):
        assert main([
            "query", "taxi", "--rows", "2000", "--block-size", "500",
            "--plan", "baseline",
            "--between", "fare_amount:0:5000", "--equals", "airport_fee:0",
        ]) == 0
        out = capsys.readouterr().out
        assert "AND" in out

    def test_in_predicate(self, capsys):
        assert main([
            "query", "taxi", "--rows", "2000", "--block-size", "500",
            "--plan", "baseline", "--in", "airport_fee:0,125",
        ]) == 0
        assert "IN" in capsys.readouterr().out

    def test_no_pruning_scans_every_block(self, capsys):
        assert main([
            "query", "tpch_lineitem", "--rows", "2000", "--block-size", "500",
            "--plan", "baseline", "--no-pruning",
            "--between", "l_shipdate:9100:9130",
        ]) == 0
        out = capsys.readouterr().out
        pruned_row = next(line for line in out.splitlines() if "blocks pruned" in line)
        assert pruned_row.split()[-1] == "0"

    def test_missing_predicate_is_an_error(self, capsys):
        assert main(["query", "taxi", "--rows", "1000"]) == 1
        assert "no predicate" in capsys.readouterr().err

    def test_malformed_between(self, capsys):
        assert main([
            "query", "taxi", "--rows", "1000", "--between", "fare_amount:1",
        ]) == 1
        assert "COLUMN:LOW:HIGH" in capsys.readouterr().err

    def test_aggregates_without_predicate_cover_the_relation(self, capsys):
        assert main([
            "query", "taxi", "--rows", "2000", "--block-size", "500",
            "--plan", "baseline", "--agg", "n:count", "--agg", "hi:max:fare_amount",
        ]) == 0
        out = capsys.readouterr().out
        assert "n" in out and "hi" in out
        assert "2000" in out  # count(*) over the whole relation
        covered_row = next(line for line in out.splitlines() if "blocks fully covered" in line)
        assert covered_row.split()[-1] == "4"

    def test_group_by_prints_one_row_per_group(self, capsys):
        assert main([
            "query", "taxi", "--rows", "2000", "--block-size", "500",
            "--plan", "baseline", "--between", "fare_amount:0:5000",
            "--agg", "n:count", "--agg", "total:sum:tip_amount",
            "--group-by", "passenger_count", "--limit", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "passenger_count" in out
        assert "total" in out

    def test_explain_renders_plan_and_decisions(self, capsys):
        assert main([
            "query", "tpch_lineitem", "--rows", "2000", "--block-size", "500",
            "--plan", "baseline", "--between", "l_shipdate:9100:9130",
            "--explain",
        ]) == 0
        out = capsys.readouterr().out
        assert "== logical plan ==" in out
        assert "Filter [9100 <= l_shipdate <= 9130]" in out
        assert "== physical scan ==" in out
        assert "count:" in out  # the query still executes after explaining

    def test_select_with_limit_prints_rows(self, capsys):
        assert main([
            "query", "tpch_lineitem", "--rows", "2000", "--block-size", "500",
            "--plan", "baseline", "--between", "l_shipdate:9100:9400",
            "--select", "l_shipdate,l_receiptdate", "--limit", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "l_receiptdate" in out
        assert out.count("\n91") <= 3  # at most the two limited rows (+ header)

    def test_malformed_aggregate_specs(self, capsys):
        assert main(["query", "taxi", "--rows", "1000", "--agg", "n:median"]) == 1
        assert "unknown aggregate function" in capsys.readouterr().err
        assert main(["query", "taxi", "--rows", "1000", "--agg", "n:sum"]) == 1
        assert "needs an input column" in capsys.readouterr().err
        assert main(["query", "taxi", "--rows", "1000", "--agg", "n:count:x"]) == 1
        assert "count takes no input column" in capsys.readouterr().err

    def test_group_by_without_agg_is_an_error(self, capsys):
        assert main([
            "query", "taxi", "--rows", "1000", "--group-by", "passenger_count",
        ]) == 1
        assert "--group-by needs at least one --agg" in capsys.readouterr().err

    def test_select_combined_with_agg_is_an_error(self, capsys):
        assert main([
            "query", "taxi", "--rows", "1000", "--agg", "n:count",
            "--select", "fare_amount",
        ]) == 1
        assert "--select cannot be combined" in capsys.readouterr().err

    def test_duplicate_agg_names_are_an_error(self, capsys):
        assert main([
            "query", "taxi", "--rows", "1000",
            "--agg", "n:count", "--agg", "n:sum:fare_amount",
        ]) == 1
        assert "duplicate aggregate output name" in capsys.readouterr().err

    def test_avg_aggregate(self, capsys):
        assert main([
            "query", "taxi", "--rows", "2000", "--block-size", "500",
            "--plan", "baseline", "--agg", "mean:avg:fare_amount",
        ]) == 0
        out = capsys.readouterr().out
        assert "mean" in out


class TestOutOfCoreCli:
    def test_compress_output_then_query_corra_file(self, tmp_path, capsys):
        path = tmp_path / "lineitem.corra"
        assert main([
            "compress", "tpch_lineitem", "--rows", "2000", "--block-size", "500",
            "--plan", "baseline", "--output", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "wrote 4 block(s)" in out
        assert path.is_file()

        assert main([
            "query", str(path), "--between", "l_shipdate:9100:9130",
            "--cache-bytes", "100000",
        ]) == 0
        out = capsys.readouterr().out
        assert "count:" in out
        assert "blocks read" in out
        assert "cache hits" in out

    def test_catalog_round_trip(self, tmp_path, capsys):
        catalog_dir = str(tmp_path / "catalog")
        assert main([
            "compress", "taxi", "--rows", "2000", "--block-size", "500",
            "--plan", "baseline", "--catalog", catalog_dir,
        ]) == 0
        assert "catalogued 'taxi'" in capsys.readouterr().out
        assert main([
            "query", "taxi", "--catalog", catalog_dir, "--agg", "n:count",
        ]) == 0
        out = capsys.readouterr().out
        assert "2000" in out
        assert "io metric" in out

    def test_missing_corra_file_is_an_error(self, tmp_path, capsys):
        assert main(["query", str(tmp_path / "nope.corra"), "--agg", "n:count"]) == 1
        assert "cannot open table" in capsys.readouterr().err

    def test_unknown_catalog_table_is_an_error(self, tmp_path, capsys):
        catalog_dir = tmp_path / "catalog"
        assert main([
            "query", "ghost", "--catalog", str(catalog_dir), "--agg", "n:count",
        ]) == 1
        # A mistyped catalog path is diagnosed, not silently created.
        assert "does not exist" in capsys.readouterr().err
        assert not catalog_dir.exists()
        catalog_dir.mkdir()
        assert main([
            "query", "ghost", "--catalog", str(catalog_dir), "--agg", "n:count",
        ]) == 1
        assert "no table named" in capsys.readouterr().err

    def test_generation_flags_rejected_for_disk_tables(self, tmp_path, capsys):
        path = tmp_path / "t.corra"
        assert main([
            "compress", "taxi", "--rows", "1000", "--block-size", "500",
            "--plan", "baseline", "--output", str(path),
        ]) == 0
        capsys.readouterr()
        assert main([
            "query", str(path), "--rows", "100", "--agg", "n:count",
        ]) == 1
        assert "--rows" in capsys.readouterr().err
        assert main(["query", str(path), "--agg", "n:count"]) == 0


class TestExperimentsCommand:
    def test_single_experiment(self, capsys):
        assert main(["experiments", "table1", "--rows", "20000"]) == 0
        out = capsys.readouterr().out
        assert "Binary encoding" in out
