"""Tests for ``corra check``: each rule on fixture trees, plus LockWitness.

Every rule is exercised twice — once on a minimal tree that violates its
invariant (the rule must fire, at the right path and with the right rule
name) and once on the compliant twin (the rule must stay silent).  The
fixture trees reuse the rules' *default* module configuration
(``query/scan.py``, ``query/kernels.py``, ``storage/format.py``, ...) by
building the same relative layout under ``tmp_path``, which is exactly
how the suffix-matching ``Project.find`` is meant to be used.
"""

from __future__ import annotations

import threading
from pathlib import Path

import pytest

from repro.analysis import LockWitness, all_rules, main, run_check
from repro.analysis.framework import load_project, run_rules
from repro.analysis.locks import LockDisciplineRule, LockOrderRule
from repro.analysis.metrics import MetricsCompletenessRule
from repro.analysis.purity import KernelPurityRule
from repro.analysis.roundtrip import FormatRoundtripRule


def _project(tmp_path, files):
    """Write ``files`` (rel path -> source) under ``tmp_path`` and parse."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return load_project([tmp_path])


def _findings(rule, project):
    return run_rules(project, [rule])


# ---------------------------------------------------------------------------
# metrics-completeness


_SCAN_METRICS_TEMPLATE = """
from dataclasses import dataclass, field


@dataclass
class ScanMetrics:
    blocks_scanned: int = 0
    rows_total: int = 0
    epoch: int = field(default=0, compare=False)

    def merge(self, other):
        self.blocks_scanned += other.blocks_scanned
        {merge_extra}

    def reset(self):
        self.blocks_scanned = 0
        self.rows_total = 0
"""

_CLI_TEMPLATE = """
def _print_metrics(metrics):
    print("blocks", metrics.blocks_scanned)
    {report_extra}
"""


class TestMetricsCompleteness:
    def test_counter_missing_from_merge_and_surface(self, tmp_path):
        project = _project(
            tmp_path,
            {
                "query/scan.py": _SCAN_METRICS_TEMPLATE.format(merge_extra="pass"),
                "cli.py": _CLI_TEMPLATE.format(report_extra="pass"),
            },
        )
        findings = _findings(MetricsCompletenessRule(), project)
        messages = [f.message for f in findings]
        assert any("merge() does not touch counter 'rows_total'" in m for m in messages)
        assert any("does not report ScanMetrics counter 'rows_total'" in m for m in messages)
        # blocks_scanned is threaded everywhere; epoch is compare=False bookkeeping.
        assert not any("blocks_scanned" in m or "epoch" in m for m in messages)
        assert all(f.rule == "metrics-completeness" for f in findings)

    def test_fully_threaded_counters_are_clean(self, tmp_path):
        project = _project(
            tmp_path,
            {
                "query/scan.py": _SCAN_METRICS_TEMPLATE.format(
                    merge_extra="self.rows_total += other.rows_total"
                ),
                "cli.py": _CLI_TEMPLATE.format(
                    report_extra='print("rows", metrics.rows_total)'
                ),
            },
        )
        assert _findings(MetricsCompletenessRule(), project) == []

    def test_missing_surface_function_is_a_finding(self, tmp_path):
        project = _project(
            tmp_path,
            {
                "query/scan.py": _SCAN_METRICS_TEMPLATE.format(merge_extra="pass"),
                "cli.py": "def other():\n    pass\n",
            },
        )
        findings = _findings(MetricsCompletenessRule(), project)
        assert any("reporting surface" in f.message for f in findings)

    def test_docstring_mention_does_not_satisfy(self, tmp_path):
        # A counter named only in merge()'s (or the reporter's) docstring
        # is documentation, not threading — the rule must still fire.
        scan = (
            "from dataclasses import dataclass\n"
            "\n\n"
            "@dataclass\n"
            "class ScanMetrics:\n"
            "    blocks_scanned: int = 0\n"
            "    rows_total: int = 0\n"
            "\n"
            "    def merge(self, other):\n"
            '        """Sums blocks_scanned and rows_total."""\n'
            "        self.blocks_scanned += other.blocks_scanned\n"
            "\n"
            "    def reset(self):\n"
            "        self.blocks_scanned = 0\n"
            "        self.rows_total = 0\n"
        )
        cli = (
            "def _print_metrics(metrics):\n"
            '    """Reports blocks_scanned and rows_total."""\n'
            '    print("blocks", metrics.blocks_scanned)\n'
        )
        project = _project(tmp_path, {"query/scan.py": scan, "cli.py": cli})
        messages = [f.message for f in _findings(MetricsCompletenessRule(), project)]
        assert any("merge() does not touch counter 'rows_total'" in m for m in messages)
        assert any("does not report ScanMetrics counter 'rows_total'" in m for m in messages)


# ---------------------------------------------------------------------------
# lock-discipline


class TestLockDiscipline:
    def test_bare_acquire_is_flagged(self, tmp_path):
        project = _project(
            tmp_path,
            {
                "cache.py": (
                    "import threading\n"
                    "class Cache:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "    def get(self):\n"
                    "        self._lock.acquire()\n"
                    "        self._lock.release()\n"
                ),
            },
        )
        findings = _findings(LockDisciplineRule(), project)
        assert any("acquire" in f.message for f in findings)
        assert all(f.rule == "lock-discipline" for f in findings)

    def test_blocking_call_under_lock_is_flagged(self, tmp_path):
        project = _project(
            tmp_path,
            {
                "cache.py": (
                    "import threading, time\n"
                    "class Cache:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "    def slow(self):\n"
                    "        with self._lock:\n"
                    "            time.sleep(0.1)\n"
                ),
            },
        )
        findings = _findings(LockDisciplineRule(), project)
        assert len(findings) == 1
        assert "sleep" in findings[0].message

    def test_clean_critical_section_passes(self, tmp_path):
        project = _project(
            tmp_path,
            {
                "cache.py": (
                    "import threading\n"
                    "class Cache:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "        self.entries = {}\n"
                    "    def get(self, key):\n"
                    "        with self._lock:\n"
                    "            return self.entries.get(key)\n"
                ),
            },
        )
        assert _findings(LockDisciplineRule(), project) == []

    def test_nested_function_bodies_are_exempt(self, tmp_path):
        # A closure submitted to a pool runs on another thread: calls inside
        # it do not execute under the enclosing critical section.
        project = _project(
            tmp_path,
            {
                "cache.py": (
                    "import threading, time\n"
                    "class Cache:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "    def schedule(self):\n"
                    "        with self._lock:\n"
                    "            def task():\n"
                    "                time.sleep(0.1)\n"
                    "            self.pending = task\n"
                ),
            },
        )
        assert _findings(LockDisciplineRule(), project) == []

    def test_inline_suppression_marker(self, tmp_path):
        project = _project(
            tmp_path,
            {
                "cache.py": (
                    "import threading, time\n"
                    "class Cache:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "    def slow(self):\n"
                    "        with self._lock:\n"
                    "            time.sleep(0.1)"
                    "  # corra: ignore[lock-discipline] -- test fixture\n"
                ),
            },
        )
        assert _findings(LockDisciplineRule(), project) == []

    def test_bare_suppression_marker_suppresses_all_rules(self, tmp_path):
        project = _project(
            tmp_path,
            {
                "cache.py": (
                    "import threading, time\n"
                    "class Cache:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "    def slow(self):\n"
                    "        with self._lock:\n"
                    "            time.sleep(0.1)  # corra: ignore\n"
                ),
            },
        )
        assert _findings(LockDisciplineRule(), project) == []


# ---------------------------------------------------------------------------
# lock-order


class TestLockOrder:
    def test_two_lock_inversion_is_a_cycle(self, tmp_path):
        project = _project(
            tmp_path,
            {
                "engine.py": (
                    "import threading\n"
                    "class Engine:\n"
                    "    def __init__(self):\n"
                    "        self._a = threading.Lock()\n"
                    "        self._b = threading.Lock()\n"
                    "    def forward(self):\n"
                    "        with self._a:\n"
                    "            with self._b:\n"
                    "                pass\n"
                    "    def backward(self):\n"
                    "        with self._b:\n"
                    "            with self._a:\n"
                    "                pass\n"
                ),
            },
        )
        findings = _findings(LockOrderRule(), project)
        assert len(findings) >= 1
        assert all(f.rule == "lock-order" for f in findings)
        assert any("cycle" in f.message or "order" in f.message for f in findings)

    def test_consistent_order_is_clean(self, tmp_path):
        project = _project(
            tmp_path,
            {
                "engine.py": (
                    "import threading\n"
                    "class Engine:\n"
                    "    def __init__(self):\n"
                    "        self._a = threading.Lock()\n"
                    "        self._b = threading.Lock()\n"
                    "    def forward(self):\n"
                    "        with self._a:\n"
                    "            with self._b:\n"
                    "                pass\n"
                    "    def also_forward(self):\n"
                    "        with self._a:\n"
                    "            with self._b:\n"
                    "                pass\n"
                ),
            },
        )
        assert _findings(LockOrderRule(), project) == []

    def test_nonreentrant_self_reacquire_via_call(self, tmp_path):
        project = _project(
            tmp_path,
            {
                "engine.py": (
                    "import threading\n"
                    "class Engine:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "    def outer(self):\n"
                    "        with self._lock:\n"
                    "            self.inner()\n"
                    "    def inner(self):\n"
                    "        with self._lock:\n"
                    "            pass\n"
                ),
            },
        )
        findings = _findings(LockOrderRule(), project)
        assert len(findings) >= 1

    def test_rlock_self_reacquire_is_legal(self, tmp_path):
        project = _project(
            tmp_path,
            {
                "engine.py": (
                    "import threading\n"
                    "class Engine:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.RLock()\n"
                    "    def outer(self):\n"
                    "        with self._lock:\n"
                    "            self.inner()\n"
                    "    def inner(self):\n"
                    "        with self._lock:\n"
                    "            pass\n"
                ),
            },
        )
        assert _findings(LockOrderRule(), project) == []

    def test_cross_class_cycle_through_members(self, tmp_path):
        project = _project(
            tmp_path,
            {
                "engine.py": (
                    "import threading\n"
                    "class Cache:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "        self.engine = None\n"
                    "    def evict(self):\n"
                    "        with self._lock:\n"
                    "            pass\n"
                    "class Engine:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "        self.cache = Cache()\n"
                    "    def run(self):\n"
                    "        with self._lock:\n"
                    "            self.cache.evict()\n"
                ),
            },
        )
        # Engine._lock -> Cache._lock only: acyclic, clean.
        assert _findings(LockOrderRule(), project) == []


# ---------------------------------------------------------------------------
# kernel-purity


class TestKernelPurity:
    def test_decode_in_kernel_module_is_flagged(self, tmp_path):
        project = _project(
            tmp_path,
            {
                "query/kernels.py": (
                    "def rle_count(column, predicate):\n"
                    "    values = column.decode()\n"
                    "    return sum(1 for v in values if predicate(v))\n"
                ),
            },
        )
        findings = _findings(KernelPurityRule(), project)
        assert len(findings) == 1
        assert findings[0].rule == "kernel-purity"
        assert "'decode'" in findings[0].message
        assert findings[0].path.endswith("query/kernels.py")

    def test_encoded_domain_kernel_is_clean(self, tmp_path):
        project = _project(
            tmp_path,
            {
                "query/kernels.py": (
                    "def rle_count(run_values, run_lengths, predicate):\n"
                    "    return sum(\n"
                    "        length\n"
                    "        for value, length in zip(run_values, run_lengths)\n"
                    "        if predicate(value)\n"
                    "    )\n"
                ),
            },
        )
        assert _findings(KernelPurityRule(), project) == []

    def test_other_modules_may_decode(self, tmp_path):
        project = _project(
            tmp_path,
            {"query/scan.py": "def fallback(column):\n    return column.decode()\n"},
        )
        assert _findings(KernelPurityRule(), project) == []


# ---------------------------------------------------------------------------
# format-roundtrip


_FORMAT_TEMPLATE = """
from dataclasses import dataclass


@dataclass(frozen=True)
class ColumnSegment:
    name: str
    offset: int
    length: int

    def to_dict(self):
        return {{"name": self.name, "offset": self.offset{serialize_extra}}}

    @classmethod
    def from_dict(cls, data):
        return cls(
            name=data["name"],
            offset=data["offset"],
            {deserialize_extra}
        )
"""


class TestFormatRoundtrip:
    def test_dropped_field_is_flagged_on_both_sides(self, tmp_path):
        project = _project(
            tmp_path,
            {
                "storage/format.py": _FORMAT_TEMPLATE.format(
                    serialize_extra="", deserialize_extra=""
                ),
            },
        )
        findings = _findings(FormatRoundtripRule(), project)
        assert len(findings) == 2  # to_dict drops it; from_dict never mentions it
        assert all("'length'" in f.message for f in findings)
        assert all(f.rule == "format-roundtrip" for f in findings)

    def test_complete_roundtrip_is_clean(self, tmp_path):
        project = _project(
            tmp_path,
            {
                "storage/format.py": _FORMAT_TEMPLATE.format(
                    serialize_extra=', "length": self.length',
                    deserialize_extra='length=data["length"],',
                ),
            },
        )
        assert _findings(FormatRoundtripRule(), project) == []

    def test_class_without_serializer_pair_is_ignored(self, tmp_path):
        project = _project(
            tmp_path,
            {
                "storage/format.py": (
                    "from dataclasses import dataclass\n"
                    "@dataclass\n"
                    "class Stats:\n"
                    "    lo: int\n"
                    "    hi: int\n"
                ),
            },
        )
        assert _findings(FormatRoundtripRule(), project) == []

    def test_docstring_mention_does_not_satisfy(self, tmp_path):
        # A field named only in the method docstring is still dropped
        # from the round trip.
        project = _project(
            tmp_path,
            {
                "storage/format.py": _FORMAT_TEMPLATE.format(
                    serialize_extra="",
                    deserialize_extra='length=data.get("size", 0),',
                ).replace(
                    "    def to_dict(self):\n",
                    "    def to_dict(self):\n"
                    '        """Serialises name, offset and length."""\n',
                ),
            },
        )
        findings = _findings(FormatRoundtripRule(), project)
        assert any("to_dict() drops field 'length'" in f.message for f in findings)


# ---------------------------------------------------------------------------
# runner API and CLI


class TestRunner:
    def test_select_and_ignore(self, tmp_path):
        files = {
            "query/kernels.py": "def k(column):\n    return column.decode()\n",
        }
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source)
        assert run_check([tmp_path], select=["kernel-purity"])
        assert run_check([tmp_path], ignore=["kernel-purity"]) == []

    def test_unknown_rule_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown rule"):
            run_check([tmp_path], select=["no-such-rule"])

    def test_main_exit_codes(self, tmp_path, capsys):
        dirty = tmp_path / "dirty"
        (dirty / "query").mkdir(parents=True)
        (dirty / "query" / "kernels.py").write_text(
            "def k(column):\n    return column.decode()\n"
        )
        assert main([str(dirty)]) == 1
        assert "kernel-purity" in capsys.readouterr().out

        clean = tmp_path / "clean"
        clean.mkdir()
        (clean / "mod.py").write_text("x = 1\n")
        assert main([str(clean)]) == 0
        assert "clean" in capsys.readouterr().out

        assert main([str(clean), "--select", "bogus"]) == 2
        capsys.readouterr()

        # A typo'd target is a usage error, never a vacuously clean run.
        assert main([str(tmp_path / "typo")]) == 2
        assert "no such file or directory" in capsys.readouterr().out

    def test_bad_paths_raise(self, tmp_path):
        with pytest.raises(ValueError, match="no such file or directory"):
            run_check([tmp_path / "nope"])
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ValueError, match="no .py files under directory"):
            run_check([empty])
        not_py = tmp_path / "notes.txt"
        not_py.write_text("hello\n")
        with pytest.raises(ValueError, match="not a directory or a .py file"):
            run_check([not_py])

    def test_list_rules_names_every_rule(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in all_rules():
            assert name in out

    def test_real_tree_is_clean(self):
        # The repository's own source must stay free of findings; new
        # violations belong fixed (or explicitly suppressed), not shipped.
        # Anchored to the repo root so the check cannot pass vacuously
        # when pytest runs from another cwd (load_project now raises on
        # a missing path, but the anchor keeps the test runnable at all).
        repo_root = Path(__file__).resolve().parent.parent
        assert run_check([repo_root / "src" / "repro"]) == []


# ---------------------------------------------------------------------------
# LockWitness (the dynamic twin)


class TestLockWitness:
    def test_two_lock_inversion_is_detected(self):
        witness = LockWitness()
        a = witness.wrap(threading.Lock(), "A")
        b = witness.wrap(threading.Lock(), "B")

        with a:
            with b:
                pass
        # The reverse order on any later schedule is an inversion, even
        # though this single-threaded run can never deadlock.
        with b:
            with a:
                pass

        assert witness.violations
        assert "inversion" in witness.violations[0]
        assert ("A", "B") in witness.edges()
        with pytest.raises(AssertionError, match="inversion"):
            witness.assert_clean()

    def test_consistent_order_is_clean(self):
        witness = LockWitness()
        a = witness.wrap(threading.Lock(), "A")
        b = witness.wrap(threading.Lock(), "B")
        for _ in range(3):
            with a:
                with b:
                    pass
        witness.assert_clean()
        assert witness.edges() == {("A", "B")}

    def test_reentrant_acquire_records_no_edges(self):
        witness = LockWitness()
        lock = witness.wrap(threading.RLock(), "R")
        with lock:
            with lock:
                pass
        witness.assert_clean()
        assert witness.edges() == set()

    def test_failed_nonblocking_acquire_records_nothing(self):
        witness = LockWitness()
        inner = threading.Lock()
        lock = witness.wrap(inner, "L")
        other = witness.wrap(threading.Lock(), "M")
        inner.acquire()
        try:
            with other:
                assert lock.acquire(blocking=False) is False
        finally:
            inner.release()
        assert witness.edges() == set()

    def test_wrap_attr_replaces_in_place(self):
        class Holder:
            def __init__(self):
                self._lock = threading.Lock()

        witness = LockWitness()
        holder = Holder()
        wrapped = witness.wrap_attr(holder, "_lock")
        assert holder._lock is wrapped
        assert wrapped.name == "Holder._lock"
        with holder._lock:
            pass
        assert not holder._lock.locked()

    def test_cross_thread_inversion(self):
        witness = LockWitness()
        a = witness.wrap(threading.Lock(), "A")
        b = witness.wrap(threading.Lock(), "B")

        def forward():
            with a:
                with b:
                    pass

        def backward():
            with b:
                with a:
                    pass

        t1 = threading.Thread(target=forward)
        t1.start()
        t1.join()
        t2 = threading.Thread(target=backward)
        t2.start()
        t2.join()
        assert witness.violations
