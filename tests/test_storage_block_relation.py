"""Unit tests for compressed blocks and relations."""

import numpy as np
import pytest

from repro.core import CompressionPlan, TableCompressor
from repro.dtypes import INT64, STRING
from repro.encodings import DictionaryEncoding, ForBitPackEncoding
from repro.errors import SchemaError, UnknownColumnError, ValidationError
from repro.storage import (
    ColumnDependency,
    CompressedBlock,
    Relation,
    Schema,
    Table,
    split_into_blocks,
)


def _simple_block(n=100):
    values = np.arange(n, dtype=np.int64)
    strings = [f"s{i % 5}" for i in range(n)]
    schema = Schema.from_pairs([("x", INT64), ("s", STRING)])
    columns = {
        "x": ForBitPackEncoding().encode(values, INT64),
        "s": DictionaryEncoding().encode(strings, STRING),
    }
    return CompressedBlock(schema=schema, n_rows=n, columns=columns), values, strings


class TestCompressedBlock:
    def test_decode_and_gather(self):
        block, values, strings = _simple_block()
        assert np.array_equal(block.decode_column("x"), values)
        pos = np.array([3, 97, 3])
        assert np.array_equal(block.gather_column("x", pos), values[pos])
        assert block.gather_column("s", pos) == [strings[3], strings[97], strings[3]]

    def test_size_includes_all_columns(self):
        block, _, _ = _simple_block()
        assert block.size_bytes > block.column_size("x")
        assert block.size_bytes > block.column_size("s")

    def test_encoding_of(self):
        block, _, _ = _simple_block()
        assert block.encoding_of("x") == "for_bitpack"
        assert block.encoding_of("s") == "dictionary"

    def test_unknown_column(self):
        block, _, _ = _simple_block()
        with pytest.raises(UnknownColumnError):
            block.column("nope")

    def test_row_count_mismatch_rejected(self):
        schema = Schema.from_pairs([("x", INT64)])
        column = ForBitPackEncoding().encode(np.arange(5, dtype=np.int64), INT64)
        with pytest.raises(SchemaError):
            CompressedBlock(schema=schema, n_rows=6, columns={"x": column})

    def test_dependency_on_missing_reference_rejected(self):
        schema = Schema.from_pairs([("x", INT64)])
        column = ForBitPackEncoding().encode(np.arange(5, dtype=np.int64), INT64)
        with pytest.raises(SchemaError):
            CompressedBlock(
                schema=schema,
                n_rows=5,
                columns={"x": column},
                dependencies={"x": ColumnDependency(("missing",), "non_hierarchical")},
            )

    def test_column_not_in_schema_rejected(self):
        schema = Schema.from_pairs([("x", INT64)])
        column = ForBitPackEncoding().encode(np.arange(5, dtype=np.int64), INT64)
        with pytest.raises(SchemaError):
            CompressedBlock(schema=schema, n_rows=5, columns={"y": column})


class TestSplitIntoBlocks:
    def test_even_split(self):
        table = Table.from_columns([("x", INT64, np.arange(10))])
        chunks = list(split_into_blocks(table, block_size=5))
        assert [c.n_rows for c in chunks] == [5, 5]

    def test_ragged_tail(self):
        table = Table.from_columns([("x", INT64, np.arange(12))])
        chunks = list(split_into_blocks(table, block_size=5))
        assert [c.n_rows for c in chunks] == [5, 5, 2]

    def test_invalid_block_size(self):
        table = Table.from_columns([("x", INT64, np.arange(3))])
        with pytest.raises(ValidationError):
            list(split_into_blocks(table, block_size=0))


class TestRelation:
    def _relation(self, n=2_500, block_size=1_000):
        table = Table.from_columns(
            [
                ("x", INT64, np.arange(n, dtype=np.int64)),
                ("y", INT64, np.arange(n, dtype=np.int64) * 2),
            ]
        )
        compressor = TableCompressor(
            CompressionPlan.vertical_only(table.schema), block_size=block_size
        )
        return table, compressor.compress(table)

    def test_block_structure(self):
        table, relation = self._relation()
        assert relation.n_blocks == 3
        assert relation.n_rows == table.n_rows
        assert relation.block(0).n_rows == 1_000
        assert relation.block(2).n_rows == 500

    def test_column_size_sums_blocks(self):
        _, relation = self._relation()
        assert relation.column_size("x") == sum(
            b.column_size("x") for b in relation
        )

    def test_locate_groups_by_block(self):
        _, relation = self._relation()
        rows = np.array([0, 999, 1_000, 2_400, 1_500], dtype=np.int64)
        groups = relation.locate(rows)
        block_ids = [g[0] for g in groups]
        assert block_ids == [0, 1, 2]
        # Output positions must cover every requested row exactly once.
        covered = np.concatenate([g[2] for g in groups])
        assert sorted(covered.tolist()) == list(range(len(rows)))

    def test_locate_out_of_range(self):
        _, relation = self._relation()
        with pytest.raises(ValidationError):
            relation.locate(np.array([10_000]))

    def test_locate_scatter_reconstructs_unsorted_selection(self):
        table, relation = self._relation()
        rows = np.array([2_400, 3, 1_999, 0, 1_000, 7, 2_499], dtype=np.int64)
        x = table.column("x")
        gathered = np.full(rows.size, -1, dtype=np.int64)
        for block_index, local, output_positions in relation.locate(rows):
            block = relation.block(block_index)
            gathered[output_positions] = np.asarray(block.decode_column("x"))[local]
        assert np.array_equal(gathered, x[rows])

    def test_blocks_property_is_an_immutable_view(self):
        _, relation = self._relation()
        blocks = relation.blocks
        assert isinstance(blocks, tuple)
        assert blocks is relation.blocks  # no copy per access
        assert len(blocks) == relation.n_blocks

    def test_blocks_carry_statistics(self):
        table, relation = self._relation()
        for i, block in enumerate(relation):
            stats = block.column_statistics("x")
            assert stats.min_value == int(np.asarray(block.decode_column("x")).min())
            assert stats.row_count == block.n_rows

    def test_inconsistent_block_sizes_rejected(self):
        table = Table.from_columns([("x", INT64, np.arange(10))])
        compressor = TableCompressor(block_size=4)
        blocks = [compressor.compress_block(chunk) for chunk in split_into_blocks(table, 4)]
        with pytest.raises(ValidationError):
            Relation(table.schema, blocks, block_size=5)

    def test_empty_table(self):
        table = Table.from_columns([("x", INT64, np.zeros(0, dtype=np.int64))])
        relation = TableCompressor(block_size=10).compress(table)
        assert relation.n_rows == 0
        assert relation.size_bytes >= 0
