"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    DmvGenerator,
    LdbcMessageGenerator,
    TaxiGenerator,
    TpchLineitemGenerator,
    available_datasets,
    dataset_by_name,
    rows_for_scale_factor,
    taxi_multi_reference_config,
)
from repro.errors import ValidationError


class TestRegistry:
    def test_all_four_datasets_registered(self):
        assert set(available_datasets()) == {
            "tpch_lineitem", "ldbc_message", "dmv", "taxi"
        }

    def test_lookup_by_name(self):
        assert dataset_by_name("dmv").name == "dmv"

    def test_unknown_name(self):
        with pytest.raises(ValidationError):
            dataset_by_name("imdb")

    def test_info(self):
        info = dataset_by_name("taxi").info()
        assert info.paper_rows == 37_891_377


class TestDeterminism:
    @pytest.mark.parametrize("generator_cls", [
        TpchLineitemGenerator, LdbcMessageGenerator, DmvGenerator, TaxiGenerator
    ])
    def test_same_seed_same_data(self, generator_cls):
        a = generator_cls().generate(2_000, seed=5)
        b = generator_cls().generate(2_000, seed=5)
        assert a.equals(b)

    def test_different_seed_different_data(self):
        a = TpchLineitemGenerator().generate(2_000, seed=5)
        b = TpchLineitemGenerator().generate(2_000, seed=6)
        assert not a.equals(b)

    def test_negative_rows_rejected(self):
        with pytest.raises(ValidationError):
            TaxiGenerator().generate(-1)


class TestTpchLineitem:
    def test_row_count_and_columns(self, tpch_dates):
        assert tpch_dates.n_rows == 20_000
        assert set(TpchLineitemGenerator.DATE_COLUMNS) <= set(tpch_dates.column_names)

    def test_date_offsets_follow_the_spec(self):
        table = TpchLineitemGenerator().generate(30_000, seed=2)
        ship = table.column("l_shipdate")
        order = table.column("l_orderdate")
        commit = table.column("l_commitdate")
        receipt = table.column("l_receiptdate")
        assert np.all((ship - order >= 1) & (ship - order <= 121))
        assert np.all((commit - order >= 30) & (commit - order <= 90))
        assert np.all((receipt - ship >= 1) & (receipt - ship <= 30))

    def test_scale_factor_rows(self):
        assert rows_for_scale_factor(1) == 6_001_215
        assert rows_for_scale_factor(10) == 60_012_150

    def test_scale_to_paper(self):
        generator = TpchLineitemGenerator()
        assert generator.scale_to_paper(100, 1_000) == pytest.approx(
            100 * generator.paper_rows / 1_000
        )


class TestLdbcMessage:
    def test_hierarchy_holds(self, ldbc_table):
        """Each IP string must map to exactly one country."""
        pairs = {}
        for country, ip in zip(ldbc_table.column("countryid"), ldbc_table.column("ip")):
            assert pairs.setdefault(ip, country) == country

    def test_per_country_pools_are_much_smaller_than_global(self, ldbc_table):
        countries = np.asarray(ldbc_table.column("countryid"))
        ips = np.asarray(ldbc_table.column("ip"), dtype=object)
        global_distinct = len(set(ips.tolist()))
        top_country = np.bincount(countries).argmax()
        in_top = set(ips[countries == top_country].tolist())
        assert len(in_top) < global_distinct / 3

    def test_ip_format(self, ldbc_table):
        ip = ldbc_table.column("ip")[0]
        parts = ip.split(".")
        assert len(parts) == 4
        assert all(0 <= int(p) <= 255 for p in parts)


class TestDmv:
    def test_city_determines_state(self, dmv_table):
        mapping = {}
        for state, city in zip(dmv_table.column("state"), dmv_table.column("city")):
            assert mapping.setdefault(city, state) == state

    def test_zip_determines_city(self, dmv_table):
        mapping = {}
        for city, zip_code in zip(dmv_table.column("city"), dmv_table.column("zip_code")):
            assert mapping.setdefault(int(zip_code), city) == city

    def test_ny_dominates(self, dmv_table):
        states = dmv_table.column("state")
        assert states.count("NY") / len(states) > 0.85

    def test_zip_range_is_us_wide(self, dmv_table):
        zips = np.asarray(dmv_table.column("zip_code"))
        assert zips.min() >= 501
        assert zips.max() <= 99_999
        assert zips.max() - zips.min() > 50_000

    def test_per_city_fanout_bounded(self, dmv_table):
        cities = np.asarray(dmv_table.column("city"), dtype=object)
        zips = np.asarray(dmv_table.column("zip_code"))
        fanout = {}
        for city, zip_code in zip(cities, zips):
            fanout.setdefault(city, set()).add(int(zip_code))
        assert max(len(v) for v in fanout.values()) <= 200

    def test_explicit_domain_override(self):
        table = DmvGenerator(n_cities=50, n_zip_codes=100).generate(5_000, seed=1)
        assert len(set(table.column("city"))) <= 50


class TestTaxi:
    def test_dropoff_after_pickup(self, taxi_table):
        assert np.all(taxi_table.column("dropoff") > taxi_table.column("pickup"))

    def test_totals_cleaned_below_100_dollars(self, taxi_table):
        assert taxi_table.column("total_amount").max() < 10_000
        assert taxi_table.column("total_amount").min() >= 0

    def test_rule_mixture_close_to_table1(self):
        table = TaxiGenerator().generate_monetary_only(80_000, seed=13)
        config = taxi_multi_reference_config()
        group_a = sum(table.column(c) for c in config.groups[0].columns)
        group_b = table.column("congestion_surcharge")
        total = table.column("total_amount")
        share_a = np.mean(total == group_a)
        share_ab = np.mean(total == group_a + group_b)
        assert share_a == pytest.approx(0.3119, abs=0.02)
        assert share_ab == pytest.approx(0.6244, abs=0.02)

    def test_outliers_match_no_rule(self):
        table = TaxiGenerator().generate_monetary_only(80_000, seed=13)
        config = taxi_multi_reference_config()
        references = {name: table.column(name) for name in config.reference_columns}
        predictions = config.rule_predictions(references)
        total = table.column("total_amount")
        matched = np.zeros(len(total), dtype=bool)
        for prediction in predictions:
            matched |= prediction == total
        assert 0.0005 < np.mean(~matched) < 0.01

    def test_monetary_only_projection(self):
        table = TaxiGenerator().generate_monetary_only(1_000)
        assert "pickup" not in table.column_names
        assert "total_amount" in table.column_names

    def test_timestamps_only_projection(self):
        table = TaxiGenerator().generate_timestamps_only(1_000)
        assert table.column_names == ("pickup", "dropoff")
