"""Canonical predicate and plan fingerprints (result-cache keys).

The query service keys its result cache on ``(table, plan fingerprint)``,
so fingerprints must be *canonical*: semantically equal predicates —
regardless of construction order — must produce identical strings, and
opaque predicates (no stable fingerprint) must poison the whole plan's
fingerprint so such plans are never cached.
"""

from __future__ import annotations

import numpy as np

from repro.dtypes import INT64
from repro.query import (
    And,
    Between,
    ColumnPredicate,
    Count,
    Eq,
    In,
    LazyQuery,
    Not,
    Or,
    Sum,
)
from repro.query.plan import Aggregate, Filter, QueryCompiler, Scan
from repro.storage import Relation, Table


def _relation() -> Relation:
    from repro.core import CompressionPlan, TableCompressor

    table = Table.from_columns(
        [
            ("a", INT64, np.arange(100, dtype=np.int64)),
            ("b", INT64, np.arange(100, dtype=np.int64) % 5),
        ]
    )
    plan = CompressionPlan.vertical_only(table.schema)
    return TableCompressor(plan, block_size=50).compress(table)


class TestPredicateFingerprints:
    def test_and_is_commutative(self):
        left = And(Eq("a", 1), Between("b", 2, 3))
        right = And(Between("b", 2, 3), Eq("a", 1))
        assert left.fingerprint() == right.fingerprint()

    def test_or_is_commutative(self):
        left = Or(Eq("a", 1), Eq("b", 2), Eq("a", 3))
        right = Or(Eq("a", 3), Eq("a", 1), Eq("b", 2))
        assert left.fingerprint() == right.fingerprint()

    def test_nested_compounds_canonicalise(self):
        left = And(Or(Eq("a", 1), Eq("a", 2)), Eq("b", 0))
        right = And(Eq("b", 0), Or(Eq("a", 2), Eq("a", 1)))
        assert left.fingerprint() == right.fingerprint()

    def test_different_predicates_differ(self):
        assert And(Eq("a", 1), Eq("b", 2)).fingerprint() != Or(
            Eq("a", 1), Eq("b", 2)
        ).fingerprint()
        assert Eq("a", 1).fingerprint() != Eq("a", 2).fingerprint()
        assert Eq("a", 1).fingerprint() != Eq("b", 1).fingerprint()

    def test_in_values_are_order_insensitive(self):
        assert In("a", [3, 1, 2]).fingerprint() == In("a", [2, 3, 1]).fingerprint()

    def test_not_wraps_inner(self):
        fp = Not(Eq("a", 1)).fingerprint()
        assert fp is not None and Eq("a", 1).fingerprint() in fp
        assert fp != Eq("a", 1).fingerprint()

    def test_opaque_predicate_has_no_fingerprint(self):
        opaque = ColumnPredicate("a", lambda v: v > 0)
        assert opaque.fingerprint() is None
        assert And(Eq("b", 1), opaque).fingerprint() is None
        assert Not(opaque).fingerprint() is None


class TestPlanFingerprints:
    def test_same_plan_same_fingerprint(self):
        relation = _relation()
        compiler = QueryCompiler(relation)
        base = LazyQuery(relation)
        one = compiler.compile(base.where(Eq("a", 1) & Eq("b", 2)).logical_plan())
        two = compiler.compile(base.where(Eq("b", 2) & Eq("a", 1)).logical_plan())
        assert one.fingerprint() == two.fingerprint()

    def test_plan_shape_distinguishes(self):
        relation = _relation()
        compiler = QueryCompiler(relation)
        base = LazyQuery(relation)
        filter_only = compiler.compile(base.where(Eq("a", 1)).logical_plan())
        projected = compiler.compile(base.where(Eq("a", 1)).select("b").logical_plan())
        limited = compiler.compile(base.where(Eq("a", 1)).limit(5).logical_plan())
        grouped = compiler.compile(
            base.where(Eq("a", 1)).group_by("b").agg(n=Count()).logical_plan()
        )
        summed = compiler.compile(
            base.where(Eq("a", 1)).group_by("b").agg(n=Sum("a")).logical_plan()
        )
        fingerprints = [
            plan.fingerprint() for plan in (filter_only, projected, limited, grouped, summed)
        ]
        assert all(fp is not None for fp in fingerprints)
        assert len(set(fingerprints)) == len(fingerprints)

    def test_opaque_predicate_poisons_plan_fingerprint(self):
        relation = _relation()
        compiler = QueryCompiler(relation)
        plan = Aggregate(
            Filter(Scan(relation), ColumnPredicate("a", lambda v: v > 0)),
            aggregates=(("n", Count()),),
        )
        assert compiler.compile(plan).fingerprint() is None

    def test_no_predicate_still_fingerprints(self):
        relation = _relation()
        compiler = QueryCompiler(relation)
        compiled = compiler.compile(LazyQuery(relation).select("a").logical_plan())
        assert compiled.fingerprint() is not None
