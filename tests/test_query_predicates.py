"""Unit tests for the predicate IR, block statistics, and the scan planner."""

import numpy as np
import pytest

from repro.core import CompressionPlan, TableCompressor
from repro.dtypes import DATE, INT64, STRING
from repro.errors import UnknownColumnError, ValidationError
from repro.query import (
    And,
    Between,
    BlockDecision,
    ColumnPredicate,
    Eq,
    In,
    Or,
    Predicate,
    QueryExecutor,
    ScanPlanner,
)
from repro.storage import BlockStatistics, ColumnStatistics, Table


def _stats(**columns):
    return BlockStatistics({name: stats for name, stats in columns.items()})


def _int_stats(lo, hi, n=100, exact=True, distinct=None):
    return ColumnStatistics(
        row_count=n, min_value=lo, max_value=hi,
        distinct_count=distinct, exact_bounds=exact,
    )


class TestColumnStatistics:
    def test_from_values_int(self):
        stats = ColumnStatistics.from_values(np.array([5, 1, 9, 1], dtype=np.int64))
        assert (stats.min_value, stats.max_value) == (1, 9)
        assert stats.row_count == 4
        assert stats.distinct_count == 3
        assert stats.exact_bounds

    def test_from_values_strings(self):
        stats = ColumnStatistics.from_values(["b", "a", "c", "a"])
        assert (stats.min_value, stats.max_value) == ("a", "c")
        assert stats.distinct_count == 3

    def test_from_values_empty(self):
        stats = ColumnStatistics.from_values(np.zeros(0, dtype=np.int64))
        assert stats.row_count == 0
        assert not stats.may_contain(1)
        assert not stats.overlaps(0, 10)

    def test_derived_bounds_are_conservative_and_inexact(self):
        reference = _int_stats(100, 200)
        derived = ColumnStatistics.from_reference_and_deltas(reference, 1, 30, 100)
        assert (derived.min_value, derived.max_value) == (101, 230)
        assert (derived.delta_min, derived.delta_max) == (1, 30)
        assert not derived.exact_bounds
        # Inexact bounds can veto but never affirm.
        assert not derived.contained_in(0, 1_000)
        assert not derived.is_constant(150)

    def test_derived_bounds_widened_by_outliers(self):
        reference = _int_stats(100, 200)
        derived = ColumnStatistics.from_reference_and_deltas(
            reference, 0, 5, 100, outlier_values=np.array([7, 9_000])
        )
        assert derived.min_value == 7
        assert derived.max_value == 9_000

    def test_mixed_type_comparison_does_not_prune(self):
        stats = ColumnStatistics.from_values(["a", "z"])
        assert stats.may_contain(42)
        assert stats.overlaps(0, 100)
        assert not stats.contained_in(0, 100)


class TestPredicateEvaluation:
    VALUES = {"x": np.array([1, 5, 9, 5], dtype=np.int64), "s": ["a", "b", "c", "b"]}

    def test_eq(self):
        assert Eq("x", 5).evaluate(self.VALUES).tolist() == [False, True, False, True]

    def test_eq_incomparable_types_matches_nothing(self):
        assert Eq("s", 5).evaluate(self.VALUES).tolist() == [False] * 4

    def test_between_inclusive_and_open_ended(self):
        assert Between("x", 5, 9).evaluate(self.VALUES).tolist() == [False, True, True, True]
        assert Between("x", low=6).evaluate(self.VALUES).tolist() == [False, False, True, False]
        assert Between("x", high=5).evaluate(self.VALUES).tolist() == [True, True, False, True]

    def test_between_needs_a_bound(self):
        with pytest.raises(ValidationError):
            Between("x")

    def test_in_numeric_uses_isin(self):
        assert In("x", [9, 1]).evaluate(self.VALUES).tolist() == [True, False, True, False]

    def test_in_strings(self):
        assert In("s", ["a", "c"]).evaluate(self.VALUES).tolist() == [True, False, True, False]

    def test_in_rejects_mixed_type_candidates(self):
        with pytest.raises(ValidationError):
            In("x", [1, "NY"])

    def test_between_type_mismatched_bounds_match_nothing(self):
        assert Between("x", "a", "z").evaluate(self.VALUES).tolist() == [False] * 4
        assert Between("s", 0, 5).evaluate(self.VALUES).tolist() == [False] * 4
        assert Between("x", 1, "z").evaluate(self.VALUES).tolist() == [False] * 4

    def test_compound_operators(self):
        pred = Between("x", 2, 9) & In("s", ["b"])
        assert isinstance(pred, And)
        assert pred.evaluate(self.VALUES).tolist() == [False, True, False, True]
        pred = Eq("x", 1) | Eq("s", "c")
        assert isinstance(pred, Or)
        assert pred.evaluate(self.VALUES).tolist() == [True, False, True, False]

    def test_compound_columns_deduplicated(self):
        pred = (Eq("x", 1) & Between("x", 0, 9)) & Eq("s", "a")
        assert pred.columns() == ("x", "s")

    def test_legacy_factories_return_ir_nodes(self):
        assert isinstance(Predicate.equals("x", 1), Eq)
        assert isinstance(Predicate.between("x", 0, 1), Between)
        assert isinstance(Predicate.is_in("x", [1]), In)

    def test_column_predicate_escape_hatch(self):
        pred = Predicate.custom("x", lambda v: np.asarray(v) % 2 == 1, "x is odd")
        assert isinstance(pred, ColumnPredicate)
        assert pred.evaluate(self.VALUES).tolist() == [True, True, True, True]
        assert pred.describe() == "x is odd"
        # Opaque conditions can never prune or short-circuit.
        stats = _stats(x=_int_stats(100, 200))
        assert pred.might_match(stats)
        assert not pred.matches_all(stats)

    def test_describe(self):
        assert Between("x", 1, 2).describe() == "1 <= x <= 2"
        assert "AND" in (Eq("x", 1) & Eq("x", 2)).describe()


class TestPredicatePruning:
    def test_eq_pruning(self):
        stats = _stats(x=_int_stats(10, 20))
        assert Eq("x", 15).might_match(stats)
        assert not Eq("x", 9).might_match(stats)
        assert not Eq("x", 21).might_match(stats)

    def test_eq_constant_block_matches_all(self):
        stats = _stats(x=_int_stats(7, 7))
        assert Eq("x", 7).matches_all(stats)
        assert not Eq("x", 8).matches_all(stats)

    def test_between_pruning_and_coverage(self):
        stats = _stats(x=_int_stats(10, 20))
        assert Between("x", 15, 30).might_match(stats)
        assert not Between("x", 21, 30).might_match(stats)
        assert not Between("x", 0, 9).might_match(stats)
        assert Between("x", 10, 20).matches_all(stats)
        assert Between("x", 0, 100).matches_all(stats)
        assert not Between("x", 11, 20).matches_all(stats)

    def test_in_pruning(self):
        stats = _stats(x=_int_stats(10, 20))
        assert In("x", [1, 2, 15]).might_match(stats)
        assert not In("x", [1, 2, 30]).might_match(stats)

    def test_and_prunes_if_any_child_prunes(self):
        stats = _stats(x=_int_stats(10, 20), y=_int_stats(0, 5))
        pred = Between("x", 10, 20) & Eq("y", 99)
        assert not pred.might_match(stats)

    def test_or_prunes_only_if_all_children_prune(self):
        stats = _stats(x=_int_stats(10, 20))
        assert (Eq("x", 0) | Eq("x", 15)).might_match(stats)
        assert not (Eq("x", 0) | Eq("x", 99)).might_match(stats)

    def test_missing_statistics_never_prune(self):
        assert Eq("x", 0).might_match(None)
        assert Eq("unknown", 0).might_match(_stats(x=_int_stats(1, 2)))

    def test_inexact_bounds_prune_but_never_affirm(self):
        stats = _stats(x=_int_stats(10, 20, exact=False))
        assert not Between("x", 30, 40).might_match(stats)
        assert not Between("x", 0, 100).matches_all(stats)


@pytest.fixture
def sorted_relation():
    """A sorted two-column relation in 10 blocks of 100 rows."""
    ship = np.sort(np.repeat(np.arange(100, dtype=np.int64) + 8_000, 10))
    table = Table.from_columns(
        [("ship", DATE, ship), ("receipt", DATE, ship + 7)]
    )
    plan = (
        CompressionPlan.builder(table.schema)
        .diff_encode("receipt", reference="ship")
        .build()
    )
    return table, TableCompressor(plan, block_size=100).compress(table)


class TestScanPlanner:
    def test_no_predicate_plans_full_blocks(self, sorted_relation):
        _, relation = sorted_relation
        plan = ScanPlanner(relation).plan(None)
        assert plan.decisions == (BlockDecision.FULL,) * relation.n_blocks

    def test_selective_between_prunes_non_overlapping_blocks(self, sorted_relation):
        _, relation = sorted_relation
        plan = ScanPlanner(relation).plan(Between("ship", 8_031, 8_038))
        assert plan.count_of(BlockDecision.SCAN) == 1
        assert plan.count_of(BlockDecision.PRUNE) == relation.n_blocks - 1

    def test_covering_between_marks_blocks_full(self, sorted_relation):
        _, relation = sorted_relation
        plan = ScanPlanner(relation).plan(Between("ship", 8_000, 8_099))
        assert plan.count_of(BlockDecision.FULL) == relation.n_blocks

    def test_use_statistics_false_scans_everything(self, sorted_relation):
        _, relation = sorted_relation
        plan = ScanPlanner(relation, use_statistics=False).plan(Eq("ship", 8_000))
        assert plan.decisions == (BlockDecision.SCAN,) * relation.n_blocks

    def test_derived_diff_bounds_prune(self, sorted_relation):
        _, relation = sorted_relation
        plan = ScanPlanner(relation).plan(Between("receipt", 8_031 + 7, 8_038 + 7))
        assert plan.count_of(BlockDecision.PRUNE) >= relation.n_blocks - 2


class TestExecutorPruning:
    def test_filter_matches_brute_force(self, sorted_relation):
        table, relation = sorted_relation
        ship = table.column("ship")
        executor = QueryExecutor(relation)
        brute = QueryExecutor(relation, use_statistics=False)
        for predicate, expected_mask in (
            (Between("ship", 8_031, 8_038), (ship >= 8_031) & (ship <= 8_038)),
            (Eq("ship", 8_050), ship == 8_050),
            (In("ship", [8_001, 8_099]), np.isin(ship, [8_001, 8_099])),
        ):
            expected = np.flatnonzero(expected_mask)
            assert np.array_equal(executor.filter(predicate), expected)
            assert np.array_equal(brute.filter(predicate), expected)

    def test_metrics_report_pruning(self, sorted_relation):
        _, relation = sorted_relation
        executor = QueryExecutor(relation)
        executor.filter(Between("ship", 8_031, 8_038))
        metrics = executor.last_scan_metrics
        assert metrics.n_blocks == relation.n_blocks
        assert metrics.blocks_scanned == 1
        assert metrics.blocks_pruned == relation.n_blocks - 1
        # The surviving block is answered by the FOR word-space kernel;
        # disabling kernels restores the decode accounting.
        assert metrics.rows_decoded == 0
        assert metrics.rows_for_evaluated == 100
        assert metrics.pruned_fraction == pytest.approx(0.9)
        assert "pruned" in metrics.describe()

        baseline = QueryExecutor(relation, use_kernels=False)
        baseline.filter(Between("ship", 8_031, 8_038))
        assert baseline.last_scan_metrics.rows_decoded == 100
        assert baseline.last_scan_metrics.rows_for_evaluated == 0

    def test_count_equals_filter_size_without_decoding_covered_blocks(self, sorted_relation):
        table, relation = sorted_relation
        executor = QueryExecutor(relation)
        predicate = Between("ship", 8_005, 8_060)
        count = executor.count(predicate)
        assert count == int(np.count_nonzero(
            (table.column("ship") >= 8_005) & (table.column("ship") <= 8_060)
        ))
        metrics = executor.last_scan_metrics
        # Interior blocks are answered from statistics alone.
        assert metrics.blocks_full >= 4
        assert metrics.rows_decoded <= 200

    def test_select_attaches_metrics(self, sorted_relation):
        table, relation = sorted_relation
        executor = QueryExecutor(relation)
        result = executor.select(["receipt"], Between("ship", 8_031, 8_038))
        assert result.metrics is not None
        assert result.metrics.blocks_scanned == 1
        expected = np.flatnonzero(
            (table.column("ship") >= 8_031) & (table.column("ship") <= 8_038)
        )
        assert np.array_equal(result.row_ids, expected)
        assert np.array_equal(result.column("receipt"), table.column("receipt")[expected])

    def test_unknown_column_raises(self, sorted_relation):
        _, relation = sorted_relation
        with pytest.raises(UnknownColumnError):
            QueryExecutor(relation).filter(Eq("nope", 1))

    def test_predicate_less_select_clears_metrics(self, sorted_relation):
        _, relation = sorted_relation
        executor = QueryExecutor(relation)
        executor.count(Between("ship", 8_031, 8_038))
        assert executor.last_scan_metrics is not None
        result = executor.select(["ship"])
        assert result.metrics is None
        assert executor.last_scan_metrics is None

    def test_string_zone_maps_prune_eq(self):
        names = sorted(f"name-{i:03d}" for i in range(500))
        table = Table.from_columns([("s", STRING, names)])
        relation = TableCompressor(block_size=100).compress(table)
        executor = QueryExecutor(relation)
        rows = executor.filter(Eq("s", "name-250"))
        assert rows.tolist() == [250]
        assert executor.last_scan_metrics.blocks_scanned == 1

    def test_relation_without_statistics_still_correct(self):
        table = Table.from_columns([("x", INT64, np.arange(1_000, dtype=np.int64))])
        relation = TableCompressor(block_size=100, collect_statistics=False).compress(table)
        assert all(block.statistics is None for block in relation)
        executor = QueryExecutor(relation)
        assert np.array_equal(executor.filter(Between("x", 10, 19)), np.arange(10, 20))
        assert executor.last_scan_metrics.blocks_pruned == 0


class TestAcceptanceSortedMillionRows:
    """ISSUE acceptance: sorted 1M-row TPC-H dates, 16 blocks, <= 2 decoded."""

    def test_between_one_block_range_decodes_at_most_two_blocks(self):
        rng = np.random.default_rng(42)
        ship = np.sort(rng.integers(8_766, 11_322, size=1_000_000)).astype(np.int64)
        table = Table.from_columns([("l_shipdate", DATE, ship)])
        plan = (
            CompressionPlan.builder(table.schema)
            .vertical("l_shipdate", "for_bitpack")
            .build()
        )
        relation = TableCompressor(plan, block_size=62_500).compress(table)
        assert relation.n_blocks == 16

        stats = relation.block(5).column_statistics("l_shipdate")
        predicate = Between("l_shipdate", stats.min_value + 1, stats.max_value - 1)
        executor = QueryExecutor(relation)
        row_ids = executor.filter(predicate)
        metrics = executor.last_scan_metrics

        assert metrics.blocks_scanned + metrics.blocks_full <= 2
        assert metrics.blocks_pruned >= 14
        assert metrics.rows_decoded <= 2 * 62_500
        expected = np.flatnonzero(
            (ship >= stats.min_value + 1) & (ship <= stats.max_value - 1)
        )
        assert np.array_equal(row_ids, expected)
