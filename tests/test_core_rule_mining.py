"""Unit tests for automatic multi-reference rule mining (future-work extension)."""

import numpy as np
import pytest

from repro.core import (
    MultiReferenceEncoding,
    discover_groups,
    mine_multi_reference_config,
    mine_rules,
)
from repro.datasets import TaxiGenerator, taxi_multi_reference_config
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def taxi_monetary():
    return TaxiGenerator().generate_monetary_only(20_000, seed=19)


@pytest.fixture
def synthetic_rule_data(rng):
    """Target = a + b (+ c on 40 % of rows), with d as an irrelevant column."""
    n = 5_000
    a = rng.integers(0, 500, size=n, dtype=np.int64)
    b = rng.integers(0, 500, size=n, dtype=np.int64)
    c = rng.integers(1, 100, size=n, dtype=np.int64)
    d = rng.integers(0, 1_000, size=n, dtype=np.int64)
    include_c = rng.random(n) < 0.4
    target = a + b + np.where(include_c, c, 0)
    return target, {"a": a, "b": b, "c": c, "d": d}


class TestDiscoverGroups:
    def test_base_group_found(self, synthetic_rule_data):
        target, candidates = synthetic_rule_data
        groups = discover_groups(target, {k: candidates[k] for k in ("a", "b", "c")})
        assert set(groups["A"]) == {"a", "b"}
        optional = {cols[0] for name, cols in groups.items() if name != "A"}
        assert optional == {"c"}

    def test_taxi_groups_match_paper(self, taxi_monetary):
        config = taxi_multi_reference_config()
        candidates = {
            name: taxi_monetary.column(name) for name in config.reference_columns
        }
        groups = discover_groups(taxi_monetary.column("total_amount"), candidates)
        assert set(groups["A"]) == set(config.groups[0].columns)
        optional_columns = {
            cols[0] for name, cols in groups.items() if name != "A"
        }
        assert optional_columns == {"congestion_surcharge", "airport_fee"}

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            discover_groups(np.arange(5), {"a": np.arange(4)})

    def test_no_candidates_rejected(self):
        with pytest.raises(ValidationError):
            discover_groups(np.arange(5), {})


class TestMineRules:
    def test_recovers_planted_rules(self, synthetic_rule_data):
        target, candidates = synthetic_rule_data
        result = mine_rules(target, {k: candidates[k] for k in ("a", "b", "c")})
        labels = {rule.label for rule in result.rules}
        assert labels == {"A", "A + B"}
        assert result.outlier_fraction == pytest.approx(0.0, abs=1e-9)

    def test_irrelevant_column_does_not_break_mining(self, synthetic_rule_data):
        target, candidates = synthetic_rule_data
        result = mine_rules(target, candidates)
        assert result.outlier_fraction < 0.01

    def test_rule_budget_respected(self, taxi_monetary):
        candidates = {
            name: taxi_monetary.column(name)
            for name in taxi_multi_reference_config().reference_columns
        }
        result = mine_rules(
            taxi_monetary.column("total_amount"), candidates, max_rules=2
        )
        assert len(result.rules) <= 2

    def test_invalid_parameters(self, synthetic_rule_data):
        target, candidates = synthetic_rule_data
        with pytest.raises(ValidationError):
            mine_rules(target, candidates, max_rules=0)
        with pytest.raises(ValidationError):
            mine_rules(target, candidates, outlier_budget=1.5)

    def test_describe_mentions_rules(self, synthetic_rule_data):
        target, candidates = synthetic_rule_data
        result = mine_rules(target, {k: candidates[k] for k in ("a", "b", "c")})
        text = result.describe()
        assert "group A" in text
        assert "outliers" in text


class TestMinedConfigEndToEnd:
    def test_taxi_mined_config_matches_paper_rules(self, taxi_monetary):
        config, result = mine_multi_reference_config(
            taxi_monetary, "total_amount",
            candidates=list(taxi_multi_reference_config().reference_columns),
        )
        labels = {rule.label for rule in config.rules}
        assert labels == {"A", "A + B", "A + C", "A + B + C"}
        assert result.outlier_fraction == pytest.approx(0.0032, abs=0.003)

    def test_mined_config_compresses_like_hand_written(self, taxi_monetary):
        hand_written = taxi_multi_reference_config()
        mined, _ = mine_multi_reference_config(
            taxi_monetary, "total_amount",
            candidates=list(hand_written.reference_columns),
        )
        references = {
            name: taxi_monetary.column(name) for name in hand_written.reference_columns
        }
        target = taxi_monetary.column("total_amount")
        hand_size = MultiReferenceEncoding(hand_written).encode(target, references).size_bytes
        mined_references = {
            name: taxi_monetary.column(name) for name in mined.reference_columns
        }
        mined_size = MultiReferenceEncoding(mined).encode(target, mined_references).size_bytes
        assert mined_size == pytest.approx(hand_size, rel=0.02)

    def test_mined_config_roundtrips(self, taxi_monetary):
        mined, _ = mine_multi_reference_config(taxi_monetary, "total_amount")
        references = {
            name: taxi_monetary.column(name) for name in mined.reference_columns
        }
        target = taxi_monetary.column("total_amount")
        column = MultiReferenceEncoding(mined).encode(target, references)
        assert np.array_equal(column.decode_with_reference(references), target)

    def test_unknown_target_rejected(self, taxi_monetary):
        with pytest.raises(ValidationError):
            mine_multi_reference_config(taxi_monetary, "nope")

    def test_unexplainable_target_rejected(self, rng):
        from repro.dtypes import INT64
        from repro.storage import Table

        table = Table.from_columns(
            [
                ("x", INT64, rng.integers(0, 10**9, size=500, dtype=np.int64)),
                ("y", INT64, rng.integers(0, 10, size=500, dtype=np.int64)),
            ]
        )
        with pytest.raises(ValidationError):
            mine_multi_reference_config(table, "x", candidates=["y"])
