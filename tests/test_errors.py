"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    ConfigurationError,
    CorraError,
    DecodingError,
    EncodingError,
    SchemaError,
    SerializationError,
    UnknownColumnError,
    UnknownEncodingError,
    ValidationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            EncodingError,
            DecodingError,
            SchemaError,
            UnknownColumnError,
            UnknownEncodingError,
            ValidationError,
            ConfigurationError,
            SerializationError,
        ],
    )
    def test_all_derive_from_corra_error(self, exc):
        assert issubclass(exc, CorraError)

    def test_decoding_is_encoding_error(self):
        assert issubclass(DecodingError, EncodingError)

    def test_validation_is_value_error(self):
        assert issubclass(ValidationError, ValueError)

    def test_unknown_column_is_key_error(self):
        assert issubclass(UnknownColumnError, KeyError)


class TestMessages:
    def test_unknown_column_lists_available(self):
        error = UnknownColumnError("foo", ("a", "b"))
        assert "foo" in str(error)
        assert "a" in str(error)
        assert "b" in str(error)

    def test_unknown_column_without_alternatives(self):
        error = UnknownColumnError("foo")
        assert str(error) == "unknown column 'foo'"

    def test_unknown_encoding_lists_available(self):
        error = UnknownEncodingError("zstd", ("plain", "rle"))
        assert "zstd" in str(error)
        assert "rle" in str(error)

    def test_catching_base_class(self):
        with pytest.raises(CorraError):
            raise UnknownColumnError("x")
